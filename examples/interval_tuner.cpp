// Interval tuner (paper Section VI-D operationalized): given per-path
// stability requirements, choose each path's reporting interval Is —
// the smallest value whose reachability satisfies the control engineer's
// constraints — and report the resulting energy and latency trade-off.
#include <iostream>

#include "whart/hart/control_loop.hpp"
#include "whart/hart/fast_control.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/stability.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"

int main() {
  using namespace whart;
  using report::Table;

  const net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));
  const double pi =
      link::LinkModel::from_ber(2e-4).steady_state_availability();

  // Different loops tolerate different sample-loss rates: a flow loop
  // needs 99.9%, a temperature monitor is content with 97%.
  struct Requirement {
    std::size_t path;
    const char* role;
    double target_r;
  };
  const Requirement requirements[] = {
      {0, "flow control loop", 0.999},
      {3, "pressure loop", 0.995},
      {6, "level loop", 0.99},
      {9, "temperature monitor", 0.97},
  };

  Table table({"path", "role", "hops", "target R", "chosen Is",
               "achieved R", "loop R", "E[N] to violation (k=2)"});
  for (const Requirement& req : requirements) {
    const auto hops =
        static_cast<std::uint32_t>(plant.paths[req.path].hop_count());
    const auto is = hart::minimum_reporting_interval(hops, pi, req.target_r);
    if (!is) {
      table.add_row({std::to_string(req.path + 1), req.role,
                     std::to_string(hops), Table::percent(req.target_r, 1),
                     "unreachable", "-", "-", "-"});
      continue;
    }

    hart::PathModelConfig config = hart::PathModelConfig::from_schedule(
        plant.eta_a, req.path, plant.superframe, *is);
    const hart::PathModel model(config);
    const hart::SteadyStateLinks links(hops,
                                       link::LinkModel::from_ber(2e-4));
    const hart::PathMeasures m = compute_path_measures(model, links);
    const hart::ControlLoopMeasures loop =
        hart::analyze_symmetric_control_loop(m);
    const hart::StabilityAssessment stability = hart::assess_stability(
        m.reachability, hart::StabilityRequirement{2, req.target_r});

    table.add_row({std::to_string(req.path + 1), req.role,
                   std::to_string(hops), Table::percent(req.target_r, 1),
                   std::to_string(*is), Table::percent(m.reachability, 2),
                   Table::percent(loop.loop_reachability, 2),
                   Table::fixed(stability.expected_intervals_to_violation,
                                0)});
  }
  table.print(std::cout);

  std::cout
      << "\nreading the table: a larger Is buys per-message reliability "
         "(more retry cycles) at the cost of staler data — the paper's "
         "Section VI-D trade-off, automated.\nloop R is the probability "
         "the full sensor -> controller -> actuator loop closes within "
         "the interval (symmetric downlink, Section V-A).\n";
  return 0;
}
