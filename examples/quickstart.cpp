// Quickstart: model one multi-hop WirelessHART uplink path and compute
// the paper's three quality-of-service measures — reachability, delay
// and utilization — in ~40 lines.
//
//   sensor n1 --> relay n2 --> relay n3 --> gateway
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/link/link_model.hpp"
#include "whart/phy/snr.hpp"

int main() {
  using namespace whart;

  // 1. Describe the physical layer.  A link's failure probability comes
  //    from the measured SNR via the paper's Eqs. 1-2 (OQPSK over AWGN,
  //    1016-bit messages), or directly from a target availability.
  const link::LinkModel radio_link =
      link::LinkModel::from_snr(phy::EbN0::from_linear(7.0));
  std::cout << "link from Eb/N0 = 7: pfl = "
            << radio_link.failure_probability()
            << ", steady-state availability = "
            << radio_link.steady_state_availability() << "\n";

  // 2. Describe the path's TDMA schedule: three hops owning slots 3, 6
  //    and 7 of a 7-slot uplink frame; sensors report every Is = 4
  //    superframe cycles.
  hart::PathModelConfig config;
  config.hop_slots = {3, 6, 7};
  config.superframe = net::SuperframeConfig::symmetric(7);
  config.reporting_interval = 4;

  // 3. Build the hierarchical DTMC (the paper's Algorithm 1) and analyze
  //    it with all links in steady state.
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(3, radio_link);
  const hart::PathMeasures m = hart::compute_path_measures(model, links);

  std::cout << "\npath n1 -> n2 -> n3 -> G, Is = 4:\n"
            << "  reachability R          = " << m.reachability << "\n"
            << "  expected delay          = " << m.expected_delay_ms
            << " ms\n"
            << "  slot utilization        = " << m.utilization << "\n"
            << "  intervals to first loss = "
            << m.expected_intervals_to_first_loss << "\n";

  std::cout << "  delay pmf (over received messages):\n";
  for (std::size_t i = 0; i < m.delays_ms.size(); ++i)
    std::cout << "    " << m.delays_ms[i] << " ms : "
              << m.delay_distribution[i] << "\n";

  // 4. The underlying DTMC is a first-class object, too.
  const markov::Dtmc dtmc = model.to_dtmc(links);
  std::cout << "\nunderlying DTMC: " << dtmc.num_states()
            << " states, initial state "
            << dtmc.state_name(model.initial_state())
            << ", goals R7/R14/R21/R28 + Discard\n";
  return 0;
}
