// Site survey: lay out a plant on the floor plan, derive every link from
// radio physics (path loss -> Eb/N0 -> BER -> pfl), let the mesh
// self-organize, and tell the commissioning engineer where the weak
// spots are — ending with a repeater recommendation.
#include <cmath>
#include <iostream>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/spatial_plant.hpp"
#include "whart/phy/modulation.hpp"
#include "whart/report/table.hpp"

namespace {

/// 21x21 character map of the plant floor.
void print_map(const whart::net::SpatialPlant& plant, double radius) {
  constexpr int kSize = 21;
  char grid[kSize][kSize];
  for (auto& row : grid)
    for (char& cell : row) cell = '.';
  for (std::size_t i = 0; i < plant.positions.size(); ++i) {
    const auto& p = plant.positions[i];
    const int col = static_cast<int>((p.x + radius) / (2 * radius) *
                                     (kSize - 1));
    const int row = static_cast<int>((p.y + radius) / (2 * radius) *
                                     (kSize - 1));
    grid[row][col] = i == 0 ? 'G' : (i < 10 ? static_cast<char>('0' + i)
                                            : '*');
  }
  for (const auto& row : grid) {
    for (char cell : row) std::cout << cell << ' ';
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whart;
  using report::Table;

  net::SpatialPlantProfile profile;
  profile.device_count = 14;
  profile.plant_radius_m = 110.0;
  profile.propagation.exponent = 3.0;
  profile.seed = argc > 1 ? std::stoull(argv[1]) : 7;

  const net::SpatialPlant plant = generate_spatial_plant(profile);

  const double usable_range = phy::range_for_ebn0(
      profile.budget, profile.propagation,
      phy::oqpsk_required_ebn0(1e-4));
  std::cout << "radio: usable range (BER <= 1e-4) = "
            << Table::fixed(usable_range, 1) << " m; plant radius "
            << profile.plant_radius_m << " m\n\nfloor plan ("
            << 2 * profile.plant_radius_m << " m square, G = gateway):\n";
  print_map(plant, profile.plant_radius_m);

  const hart::NetworkMeasures measures = hart::analyze_network(
      plant.network, plant.paths, plant.schedule, plant.superframe, 4);

  std::cout << "\nself-organized routes:\n";
  Table table({"path", "distance to G (m)", "hops", "R", "E[tau] ms"});
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const auto source = plant.paths[p].source();
    table.add_row(
        {plant.paths[p].to_string(plant.network),
         Table::fixed(net::distance_m(plant.positions[source.value],
                                      plant.positions[0]),
                      1),
         std::to_string(plant.paths[p].hop_count()),
         Table::percent(measures.per_path[p].reachability, 2),
         Table::fixed(measures.per_path[p].expected_delay_ms, 1)});
  }
  table.print(std::cout);

  const std::size_t worst = measures.bottleneck_by_reachability;
  const auto worst_source = plant.paths[worst].source();
  const auto& ws = plant.positions[worst_source.value];
  const auto& relay =
      plant.positions[plant.paths[worst].nodes()[1].value];
  std::cout << "\nweakest device: "
            << plant.network.node_name(worst_source) << " (R = "
            << Table::percent(measures.per_path[worst].reachability, 2)
            << ").\nrecommendation: install a repeater near ("
            << Table::fixed((ws.x + relay.x) / 2, 0) << ", "
            << Table::fixed((ws.y + relay.y) / 2, 0)
            << ") m to split its longest hop.\n";
  return 0;
}
