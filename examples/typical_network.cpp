// Evaluate the paper's typical industrial network (Fig. 12): ten field
// devices with the HART-Foundation hop mix, schedule eta_a, and a
// Monte-Carlo cross-check of the analytic measures.
//
// Optional flags: --metrics=<file> dumps the metrics-registry snapshot
// as JSON; --trace=<file> records spans and dumps Chrome trace_event
// JSON; --obs-dir=<dir> writes the full five-artifact observability
// bundle.  Without flags the behaviour is unchanged.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "whart/common/obs.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/metrics_export.hpp"
#include "whart/report/obs_dir.hpp"
#include "whart/report/table.hpp"
#include "whart/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace whart;
  using report::Table;

  std::string metrics_path;
  std::string trace_path;
  std::string obs_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics=", 0) == 0)
      metrics_path = arg.substr(10);
    else if (arg.rfind("--trace=", 0) == 0)
      trace_path = arg.substr(8);
    else if (arg.rfind("--obs-dir=", 0) == 0)
      obs_dir = arg.substr(10);
    else {
      std::cerr << "usage: typical_network [--metrics=<file>] "
                   "[--trace=<file>] [--obs-dir=<dir>]\n";
      return 2;
    }
  }
  if (!trace_path.empty()) {
    common::obs::set_trace_enabled(true);
    common::obs::TraceCollector::instance().clear();
  }
  std::unique_ptr<report::ObsDirSession> obs_session;
  if (!obs_dir.empty())
    obs_session = std::make_unique<report::ObsDirSession>(obs_dir);

  const net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));

  std::cout << "topology (Fig. 12):\n";
  for (const net::Path& path : plant.paths)
    std::cout << "  " << path.to_string(plant.network) << "\n";
  std::cout << "\nschedule eta_a = " << plant.eta_a.to_string(plant.network)
            << "\n\n";

  const hart::NetworkMeasures measures =
      hart::analyze_network(plant.network, plant.paths, plant.eta_a,
                            plant.superframe, 4);

  Table table({"path", "R", "E[tau] ms", "U", "E[N] to 1st loss"});
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const auto& m = measures.per_path[p];
    table.add_row({plant.paths[p].to_string(plant.network),
                   Table::percent(m.reachability, 2),
                   Table::fixed(m.expected_delay_ms, 1),
                   Table::fixed(m.utilization, 4),
                   Table::fixed(m.expected_intervals_to_first_loss, 0)});
  }
  table.print(std::cout);

  std::cout << "\nnetwork mean delay E[Gamma] = "
            << Table::fixed(measures.mean_delay_ms, 1)
            << " ms, utilization U = "
            << Table::fixed(measures.network_utilization, 3)
            << "\nbottleneck by delay: path "
            << measures.bottleneck_by_delay + 1 << " ("
            << plant.paths[measures.bottleneck_by_delay].to_string(
                   plant.network)
            << ")\n";

  // Cross-check against the slot-level simulator.
  sim::SimulatorConfig config;
  config.superframe = plant.superframe;
  config.reporting_interval = 4;
  config.intervals = 20000;
  sim::NetworkSimulator simulator(plant.network, plant.paths, plant.eta_a,
                                  config);
  const sim::SimulationReport report = simulator.run();
  std::cout << "\nMonte-Carlo cross-check (20000 intervals):\n";
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const auto ci = report.per_path[p].reachability_interval();
    std::cout << "  path " << p + 1 << ": model "
              << Table::percent(measures.per_path[p].reachability, 2)
              << ", simulated "
              << Table::percent(report.per_path[p].reachability(), 2)
              << (ci.contains(measures.per_path[p].reachability)
                      ? "  (within 95% CI)"
                      : "  (OUTSIDE 95% CI)")
              << "\n";
  }

  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path);
    if (!file) {
      std::cerr << "cannot write '" << metrics_path << "'\n";
      return 1;
    }
    report::write_metrics_json(
        file, common::obs::Registry::instance().snapshot(),
        trace_path.empty()
            ? std::vector<common::obs::SpanAggregate>{}
            : common::obs::TraceCollector::instance().aggregate());
    std::cout << "\nwrote metrics snapshot to " << metrics_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    if (!file) {
      std::cerr << "cannot write '" << trace_path << "'\n";
      return 1;
    }
    report::write_chrome_trace_json(
        file, common::obs::TraceCollector::instance().events());
    std::cout << "wrote Chrome trace to " << trace_path << "\n";
  }
  if (obs_session) obs_session->finish();
  return 0;
}
