// Evaluate the paper's typical industrial network (Fig. 12): ten field
// devices with the HART-Foundation hop mix, schedule eta_a, and a
// Monte-Carlo cross-check of the analytic measures.
#include <iostream>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"
#include "whart/sim/simulator.hpp"

int main() {
  using namespace whart;
  using report::Table;

  const net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));

  std::cout << "topology (Fig. 12):\n";
  for (const net::Path& path : plant.paths)
    std::cout << "  " << path.to_string(plant.network) << "\n";
  std::cout << "\nschedule eta_a = " << plant.eta_a.to_string(plant.network)
            << "\n\n";

  const hart::NetworkMeasures measures =
      hart::analyze_network(plant.network, plant.paths, plant.eta_a,
                            plant.superframe, 4);

  Table table({"path", "R", "E[tau] ms", "U", "E[N] to 1st loss"});
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const auto& m = measures.per_path[p];
    table.add_row({plant.paths[p].to_string(plant.network),
                   Table::percent(m.reachability, 2),
                   Table::fixed(m.expected_delay_ms, 1),
                   Table::fixed(m.utilization, 4),
                   Table::fixed(m.expected_intervals_to_first_loss, 0)});
  }
  table.print(std::cout);

  std::cout << "\nnetwork mean delay E[Gamma] = "
            << Table::fixed(measures.mean_delay_ms, 1)
            << " ms, utilization U = "
            << Table::fixed(measures.network_utilization, 3)
            << "\nbottleneck by delay: path "
            << measures.bottleneck_by_delay + 1 << " ("
            << plant.paths[measures.bottleneck_by_delay].to_string(
                   plant.network)
            << ")\n";

  // Cross-check against the slot-level simulator.
  sim::SimulatorConfig config;
  config.superframe = plant.superframe;
  config.reporting_interval = 4;
  config.intervals = 20000;
  sim::NetworkSimulator simulator(plant.network, plant.paths, plant.eta_a,
                                  config);
  const sim::SimulationReport report = simulator.run();
  std::cout << "\nMonte-Carlo cross-check (20000 intervals):\n";
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    const auto ci = report.per_path[p].reachability_interval();
    std::cout << "  path " << p + 1 << ": model "
              << Table::percent(measures.per_path[p].reachability, 2)
              << ", simulated "
              << Table::percent(report.per_path[p].reachability(), 2)
              << (ci.contains(measures.per_path[p].reachability)
                      ? "  (within 95% CI)"
                      : "  (OUTSIDE 95% CI)")
              << "\n";
  }
  return 0;
}
