// Schedule designer: generate a random plant with the HART hop-count mix
// (30/50/20), build both scheduling policies for it, and report which one
// a network manager should deploy — the paper's Section VI-B trade-off
// (mean delay vs delay balance) on a fresh topology.
#include <algorithm>
#include <iostream>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/report/table.hpp"

int main(int argc, char** argv) {
  using namespace whart;
  using report::Table;

  net::PlantProfile profile;
  profile.device_count = 16;
  profile.seed = argc > 1 ? std::stoull(argv[1]) : 42;

  const net::GeneratedPlant plant = net::generate_plant(profile);
  std::cout << "generated plant (seed " << profile.seed << "): "
            << plant.paths.size() << " devices, Fup = "
            << plant.superframe.uplink_slots << " slots\n";
  for (const net::Path& path : plant.paths)
    std::cout << "  " << path.to_string(plant.network) << "\n";

  const auto evaluate = [&](net::SchedulingPolicy policy) {
    const net::Schedule schedule = net::build_schedule(
        plant.paths, plant.superframe.uplink_slots, policy);
    return hart::analyze_network(plant.network, plant.paths, schedule,
                                 plant.superframe, 4);
  };
  const hart::NetworkMeasures short_first =
      evaluate(net::SchedulingPolicy::kShortestPathsFirst);
  const hart::NetworkMeasures long_first =
      evaluate(net::SchedulingPolicy::kLongestPathsFirst);

  const auto worst = [](const hart::NetworkMeasures& m) {
    return m.per_path[m.bottleneck_by_delay].expected_delay_ms;
  };

  Table table({"policy", "E[Gamma] ms", "worst E[tau] ms",
               "worst path", "U"});
  table.add_row({"shortest paths first (eta_a style)",
                 Table::fixed(short_first.mean_delay_ms, 1),
                 Table::fixed(worst(short_first), 1),
                 std::to_string(short_first.bottleneck_by_delay + 1),
                 Table::fixed(short_first.network_utilization, 3)});
  table.add_row({"longest paths first (eta_b style)",
                 Table::fixed(long_first.mean_delay_ms, 1),
                 Table::fixed(worst(long_first), 1),
                 std::to_string(long_first.bottleneck_by_delay + 1),
                 Table::fixed(long_first.network_utilization, 3)});
  table.print(std::cout);

  std::cout << "\nrecommendation: ";
  if (worst(long_first) < worst(short_first)) {
    std::cout << "schedule long paths first — it cuts the worst-case "
                 "expected delay from "
              << Table::fixed(worst(short_first), 0) << " to "
              << Table::fixed(worst(long_first), 0)
              << " ms for a mean-delay cost of "
              << Table::fixed(
                     long_first.mean_delay_ms - short_first.mean_delay_ms, 0)
              << " ms (the paper's conclusion for eta_b).\n";
  } else {
    std::cout << "schedule short paths first — on this topology it wins "
                 "both the mean and the worst case.\n";
  }
  return 0;
}
