// Failure drill (paper Section VI-C): walk the three failure classes on
// the typical network — transient errors (channel hopping absorbs them),
// a temporary physical obstruction on the busiest link (reachability hit
// per affected path), and a permanent failure (reroute around it).
#include <iostream>

#include "whart/hart/failure.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"

int main() {
  using namespace whart;
  using report::Table;

  const net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));
  const link::LinkModel link_model = link::LinkModel::from_ber(2e-4);

  // --- 1. Transient errors -------------------------------------------
  std::cout << "1) transient error: link forced DOWN for one slot\n";
  for (std::uint64_t t = 0; t <= 3; ++t)
    std::cout << "   " << t << " slot(s) later: p_up = "
              << Table::fixed(
                     link_model.up_probability_after(link::LinkState::kDown,
                                                     t),
                     4)
              << "\n";
  std::cout << "   => back at steady state ("
            << Table::fixed(link_model.steady_state_availability(), 4)
            << ") within ~" << link_model.slots_to_steady_state(1e-3)
            << " slots; per-message impact negligible.\n\n";

  // --- 2. Random-duration obstruction on the busiest link -------------
  const auto e3 =
      plant.network.link_between(*plant.network.find_node("n3"),
                                 net::kGateway);
  std::cout << "2) obstruction on e3 = <n3,G> (serves paths 3, 7, 8, 10) "
               "lasting one 400 ms cycle:\n";
  const auto impacts = hart::one_cycle_link_failure(
      plant.network, plant.paths, plant.eta_a, plant.superframe, 4, *e3);
  Table table({"path", "R nominal", "R one-cycle failure",
               "extra losses per 1000 intervals"});
  for (const auto& impact : impacts) {
    if (!impact.affected) continue;
    const double extra = (impact.reachability_nominal -
                          impact.reachability_cycle_shift) *
                         1000.0;
    table.add_row({std::to_string(impact.path_index + 1),
                   Table::percent(impact.reachability_nominal, 2),
                   Table::percent(impact.reachability_cycle_shift, 2),
                   Table::fixed(extra, 1)});
  }
  table.print(std::cout);

  std::cout << "\n   if the obstruction duration is geometric (expected 2 "
               "cycles), a 3-hop path's mixed reachability is "
            << Table::percent(
                   hart::random_duration_failure_reachability(
                       3, link_model.steady_state_availability(), 4, 0.5,
                       4),
                   2)
            << "\n\n";

  // --- 3. Permanent failure: reroute ----------------------------------
  std::cout << "3) permanent failure of e3: remove it from the routing "
               "graph and reroute\n";
  const auto rerouted = hart::reroute_after_permanent_failure(
      plant.network, plant.paths, *e3);
  for (std::size_t p = 0; p < plant.paths.size(); ++p) {
    if (rerouted[p].has_value() && *rerouted[p] == plant.paths[p]) continue;
    std::cout << "   path " << p + 1 << " ("
              << plant.paths[p].to_string(plant.network) << "): ";
    if (rerouted[p].has_value())
      std::cout << "rerouted to " << rerouted[p]->to_string(plant.network)
                << "\n";
    else
      std::cout << "NO alternative route — field maintenance required\n";
  }
  std::cout << "   (the Fig. 12 topology is a tree, so devices behind n3 "
               "have no alternative: the paper's countermeasure is to "
               "repair the link or add redundancy)\n";
  return 0;
}
