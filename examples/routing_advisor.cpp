// Routing advisor (paper Section VI-E): a new device joins the mesh and
// must pick a relay.  For every in-range neighbor we measure the peer
// link's SNR (here: synthetic pilot-package measurements), predict the
// composed path's performance by Eq. 12 — without rebuilding any DTMC —
// and recommend a route.
#include <iostream>

#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"

int main() {
  using namespace whart;
  using report::Table;

  const net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));
  const double pi = link::LinkModel::from_ber(2e-4)
                        .steady_state_availability();

  std::cout << "A new device n11 joins; pilot packages measured these "
               "candidate relays:\n\n";

  // Candidate relays with their synthetic Eb/N0 measurements and the
  // existing uplink path they extend (index into plant.paths).
  struct Candidate {
    const char* relay;
    double ebn0;
    std::size_t existing_path;
  };
  const Candidate candidates[] = {
      {"n3", 7.0, 2},   // 1-hop existing path  -> composed 2 hops
      {"n4", 6.0, 3},   // 2-hop existing path  -> composed 3 hops
      {"n9", 9.0, 8},   // 3-hop existing path  -> composed 4 hops
      {"n10", 4.5, 9},  // noisy link to a 3-hop path
  };

  std::vector<hart::RoutePrediction> predictions;
  Table table({"relay", "Eb/N0", "peer pfl", "existing hops",
               "composed hops", "predicted R"});
  for (const Candidate& c : candidates) {
    const std::size_t hops = plant.paths[c.existing_path].hop_count();
    const auto existing = hart::analytic_cycle_probabilities(
        static_cast<std::uint32_t>(hops), pi, 4);
    predictions.push_back(hart::predict_route(
        phy::EbN0::from_linear(c.ebn0), existing, hops, 4));
    table.add_row(
        {c.relay, Table::fixed(c.ebn0, 1),
         Table::fixed(link::LinkModel::from_snr(
                          phy::EbN0::from_linear(c.ebn0))
                          .failure_probability(),
                      3),
         std::to_string(hops),
         std::to_string(predictions.back().total_hops),
         Table::percent(predictions.back().reachability, 2)});
  }
  table.print(std::cout);

  const std::size_t best = hart::best_route(predictions);
  std::cout << "\nrecommended relay: " << candidates[best].relay
            << " — highest reachability, ties broken by fewer hops "
               "(each extra hop costs one schedule slot, ~10 ms of "
               "expected delay)\n";

  std::cout << "\npredicted cycle distribution via "
            << candidates[best].relay << ": [";
  for (std::size_t i = 0; i < 4; ++i)
    std::cout << (i ? ", " : "")
              << Table::fixed(predictions[best].composed_cycles[i], 4);
  std::cout << "]\n";
  return 0;
}
