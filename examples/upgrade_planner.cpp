// Upgrade planner: where should the maintenance budget go?  Ranks every
// link of the plant by the total reachability gained per unit of
// availability improvement (adjoint sensitivity over all paths using the
// link), verifies the top suggestion by actually applying the upgrade,
// and dumps the worst path's DTMC as Graphviz for the report appendix.
#include <fstream>
#include <iostream>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/sensitivity.hpp"
#include "whart/markov/export.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/table.hpp"

int main() {
  using namespace whart;
  using report::Table;

  net::TypicalNetwork plant =
      net::make_typical_network(link::LinkModel::from_ber(2e-4));

  const auto total_reach = [&](const net::Network& network) {
    const hart::NetworkMeasures m = hart::analyze_network(
        network, plant.paths, plant.eta_a, plant.superframe, 4);
    double sum = 0.0;
    for (const auto& path : m.per_path) sum += path.reachability;
    return sum;  // expected delivered messages per interval
  };

  const auto ranking = hart::rank_link_upgrades(
      plant.network, plant.paths, plant.eta_a, plant.superframe, 4);

  std::cout << "Link upgrade ranking (dR summed over paths, per unit of "
               "availability):\n\n";
  Table table({"rank", "link", "paths using it", "sum dR/dpi"});
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const net::Link& l = plant.network.link(ranking[i].link);
    table.add_row({std::to_string(i + 1),
                   plant.network.node_name(l.a) + " -- " +
                       plant.network.node_name(l.b),
                   std::to_string(ranking[i].paths_using),
                   Table::fixed(ranking[i].total_dR_dpi, 4)});
  }
  table.print(std::cout);

  // Verify the prediction: upgrade the top link by +0.05 availability.
  const double before = total_reach(plant.network);
  const net::Link& top = plant.network.link(ranking.front().link);
  const double old_pi = top.model.steady_state_availability();
  plant.network.set_link_model(
      ranking.front().link,
      link::LinkModel::from_availability(old_pi + 0.05,
                                         top.model.recovery_probability()));
  const double after = total_reach(plant.network);
  std::cout << "\nupgrading " << plant.network.node_name(top.a) << " -- "
            << plant.network.node_name(top.b) << " by +0.05 availability: "
            << "expected delivered messages/interval " << Table::fixed(before, 4)
            << " -> " << Table::fixed(after, 4) << " (predicted gain ~ "
            << Table::fixed(0.05 * ranking.front().total_dR_dpi, 4)
            << ", realized " << Table::fixed(after - before, 4) << ")\n";

  // Appendix artifact: the worst path's DTMC as Graphviz.
  const hart::PathModelConfig config = hart::PathModelConfig::from_schedule(
      plant.eta_a, 9, plant.superframe, 4);
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links(plant.paths[9].hop_models(plant.network));
  std::ofstream dot("/tmp/whart_path10.dot");
  markov::write_dot(dot, model.to_dtmc(links));
  std::cout << "\nwrote the path-10 DTMC ("
            << model.state_count()
            << " states) to /tmp/whart_path10.dot — render with: dot -Tsvg\n";
  return 0;
}
