file(REMOVE_RECURSE
  "CMakeFiles/whart_cli.dir/whart/cli/main.cpp.o"
  "CMakeFiles/whart_cli.dir/whart/cli/main.cpp.o.d"
  "whart_cli"
  "whart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
