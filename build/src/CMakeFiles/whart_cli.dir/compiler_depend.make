# Empty compiler generated dependencies file for whart_cli.
# This may be replaced when dependencies are built.
