
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/whart/cli/spec_parser.cpp" "src/CMakeFiles/whart.dir/whart/cli/spec_parser.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/cli/spec_parser.cpp.o.d"
  "/root/repo/src/whart/hart/analytic.cpp" "src/CMakeFiles/whart.dir/whart/hart/analytic.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/analytic.cpp.o.d"
  "/root/repo/src/whart/hart/composition.cpp" "src/CMakeFiles/whart.dir/whart/hart/composition.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/composition.cpp.o.d"
  "/root/repo/src/whart/hart/control_loop.cpp" "src/CMakeFiles/whart.dir/whart/hart/control_loop.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/control_loop.cpp.o.d"
  "/root/repo/src/whart/hart/energy.cpp" "src/CMakeFiles/whart.dir/whart/hart/energy.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/energy.cpp.o.d"
  "/root/repo/src/whart/hart/failure.cpp" "src/CMakeFiles/whart.dir/whart/hart/failure.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/failure.cpp.o.d"
  "/root/repo/src/whart/hart/fast_control.cpp" "src/CMakeFiles/whart.dir/whart/hart/fast_control.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/fast_control.cpp.o.d"
  "/root/repo/src/whart/hart/link_probability.cpp" "src/CMakeFiles/whart.dir/whart/hart/link_probability.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/link_probability.cpp.o.d"
  "/root/repo/src/whart/hart/network_analysis.cpp" "src/CMakeFiles/whart.dir/whart/hart/network_analysis.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/network_analysis.cpp.o.d"
  "/root/repo/src/whart/hart/path_analysis.cpp" "src/CMakeFiles/whart.dir/whart/hart/path_analysis.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/path_analysis.cpp.o.d"
  "/root/repo/src/whart/hart/path_model.cpp" "src/CMakeFiles/whart.dir/whart/hart/path_model.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/path_model.cpp.o.d"
  "/root/repo/src/whart/hart/schedule_optimizer.cpp" "src/CMakeFiles/whart.dir/whart/hart/schedule_optimizer.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/schedule_optimizer.cpp.o.d"
  "/root/repo/src/whart/hart/sensitivity.cpp" "src/CMakeFiles/whart.dir/whart/hart/sensitivity.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/sensitivity.cpp.o.d"
  "/root/repo/src/whart/hart/stability.cpp" "src/CMakeFiles/whart.dir/whart/hart/stability.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/stability.cpp.o.d"
  "/root/repo/src/whart/hart/sweep.cpp" "src/CMakeFiles/whart.dir/whart/hart/sweep.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/sweep.cpp.o.d"
  "/root/repo/src/whart/hart/validation.cpp" "src/CMakeFiles/whart.dir/whart/hart/validation.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/hart/validation.cpp.o.d"
  "/root/repo/src/whart/linalg/convolution.cpp" "src/CMakeFiles/whart.dir/whart/linalg/convolution.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/linalg/convolution.cpp.o.d"
  "/root/repo/src/whart/linalg/lu.cpp" "src/CMakeFiles/whart.dir/whart/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/linalg/lu.cpp.o.d"
  "/root/repo/src/whart/linalg/matrix.cpp" "src/CMakeFiles/whart.dir/whart/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/linalg/matrix.cpp.o.d"
  "/root/repo/src/whart/linalg/sparse.cpp" "src/CMakeFiles/whart.dir/whart/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/linalg/sparse.cpp.o.d"
  "/root/repo/src/whart/linalg/vector.cpp" "src/CMakeFiles/whart.dir/whart/linalg/vector.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/linalg/vector.cpp.o.d"
  "/root/repo/src/whart/link/blacklist.cpp" "src/CMakeFiles/whart.dir/whart/link/blacklist.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/link/blacklist.cpp.o.d"
  "/root/repo/src/whart/link/failure_script.cpp" "src/CMakeFiles/whart.dir/whart/link/failure_script.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/link/failure_script.cpp.o.d"
  "/root/repo/src/whart/link/fitting.cpp" "src/CMakeFiles/whart.dir/whart/link/fitting.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/link/fitting.cpp.o.d"
  "/root/repo/src/whart/link/link_model.cpp" "src/CMakeFiles/whart.dir/whart/link/link_model.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/link/link_model.cpp.o.d"
  "/root/repo/src/whart/markov/absorbing.cpp" "src/CMakeFiles/whart.dir/whart/markov/absorbing.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/absorbing.cpp.o.d"
  "/root/repo/src/whart/markov/dtmc.cpp" "src/CMakeFiles/whart.dir/whart/markov/dtmc.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/dtmc.cpp.o.d"
  "/root/repo/src/whart/markov/export.cpp" "src/CMakeFiles/whart.dir/whart/markov/export.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/export.cpp.o.d"
  "/root/repo/src/whart/markov/hitting.cpp" "src/CMakeFiles/whart.dir/whart/markov/hitting.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/hitting.cpp.o.d"
  "/root/repo/src/whart/markov/limiting.cpp" "src/CMakeFiles/whart.dir/whart/markov/limiting.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/limiting.cpp.o.d"
  "/root/repo/src/whart/markov/simulate.cpp" "src/CMakeFiles/whart.dir/whart/markov/simulate.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/simulate.cpp.o.d"
  "/root/repo/src/whart/markov/steady_state.cpp" "src/CMakeFiles/whart.dir/whart/markov/steady_state.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/steady_state.cpp.o.d"
  "/root/repo/src/whart/markov/structure.cpp" "src/CMakeFiles/whart.dir/whart/markov/structure.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/structure.cpp.o.d"
  "/root/repo/src/whart/markov/transient.cpp" "src/CMakeFiles/whart.dir/whart/markov/transient.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/markov/transient.cpp.o.d"
  "/root/repo/src/whart/net/downlink.cpp" "src/CMakeFiles/whart.dir/whart/net/downlink.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/downlink.cpp.o.d"
  "/root/repo/src/whart/net/export.cpp" "src/CMakeFiles/whart.dir/whart/net/export.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/export.cpp.o.d"
  "/root/repo/src/whart/net/path.cpp" "src/CMakeFiles/whart.dir/whart/net/path.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/path.cpp.o.d"
  "/root/repo/src/whart/net/plant_generator.cpp" "src/CMakeFiles/whart.dir/whart/net/plant_generator.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/plant_generator.cpp.o.d"
  "/root/repo/src/whart/net/routing.cpp" "src/CMakeFiles/whart.dir/whart/net/routing.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/routing.cpp.o.d"
  "/root/repo/src/whart/net/schedule.cpp" "src/CMakeFiles/whart.dir/whart/net/schedule.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/schedule.cpp.o.d"
  "/root/repo/src/whart/net/schedule_builder.cpp" "src/CMakeFiles/whart.dir/whart/net/schedule_builder.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/schedule_builder.cpp.o.d"
  "/root/repo/src/whart/net/spatial_plant.cpp" "src/CMakeFiles/whart.dir/whart/net/spatial_plant.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/spatial_plant.cpp.o.d"
  "/root/repo/src/whart/net/topology.cpp" "src/CMakeFiles/whart.dir/whart/net/topology.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/topology.cpp.o.d"
  "/root/repo/src/whart/net/typical_network.cpp" "src/CMakeFiles/whart.dir/whart/net/typical_network.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/net/typical_network.cpp.o.d"
  "/root/repo/src/whart/numeric/combinatorics.cpp" "src/CMakeFiles/whart.dir/whart/numeric/combinatorics.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/numeric/combinatorics.cpp.o.d"
  "/root/repo/src/whart/numeric/distributions.cpp" "src/CMakeFiles/whart.dir/whart/numeric/distributions.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/numeric/distributions.cpp.o.d"
  "/root/repo/src/whart/numeric/probability.cpp" "src/CMakeFiles/whart.dir/whart/numeric/probability.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/numeric/probability.cpp.o.d"
  "/root/repo/src/whart/numeric/rng.cpp" "src/CMakeFiles/whart.dir/whart/numeric/rng.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/numeric/rng.cpp.o.d"
  "/root/repo/src/whart/phy/bsc.cpp" "src/CMakeFiles/whart.dir/whart/phy/bsc.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/bsc.cpp.o.d"
  "/root/repo/src/whart/phy/frame.cpp" "src/CMakeFiles/whart.dir/whart/phy/frame.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/frame.cpp.o.d"
  "/root/repo/src/whart/phy/modulation.cpp" "src/CMakeFiles/whart.dir/whart/phy/modulation.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/modulation.cpp.o.d"
  "/root/repo/src/whart/phy/path_loss.cpp" "src/CMakeFiles/whart.dir/whart/phy/path_loss.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/path_loss.cpp.o.d"
  "/root/repo/src/whart/phy/pilot.cpp" "src/CMakeFiles/whart.dir/whart/phy/pilot.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/pilot.cpp.o.d"
  "/root/repo/src/whart/phy/snr.cpp" "src/CMakeFiles/whart.dir/whart/phy/snr.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/phy/snr.cpp.o.d"
  "/root/repo/src/whart/report/csv.cpp" "src/CMakeFiles/whart.dir/whart/report/csv.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/report/csv.cpp.o.d"
  "/root/repo/src/whart/report/histogram.cpp" "src/CMakeFiles/whart.dir/whart/report/histogram.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/report/histogram.cpp.o.d"
  "/root/repo/src/whart/report/table.cpp" "src/CMakeFiles/whart.dir/whart/report/table.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/report/table.cpp.o.d"
  "/root/repo/src/whart/sim/link_trace.cpp" "src/CMakeFiles/whart.dir/whart/sim/link_trace.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/sim/link_trace.cpp.o.d"
  "/root/repo/src/whart/sim/simulator.cpp" "src/CMakeFiles/whart.dir/whart/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/sim/simulator.cpp.o.d"
  "/root/repo/src/whart/sim/stats.cpp" "src/CMakeFiles/whart.dir/whart/sim/stats.cpp.o" "gcc" "src/CMakeFiles/whart.dir/whart/sim/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
