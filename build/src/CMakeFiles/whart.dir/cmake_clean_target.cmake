file(REMOVE_RECURSE
  "libwhart.a"
)
