# Empty compiler generated dependencies file for whart.
# This may be replaced when dependencies are built.
