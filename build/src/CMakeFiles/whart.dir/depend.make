# Empty dependencies file for whart.
# This may be replaced when dependencies are built.
