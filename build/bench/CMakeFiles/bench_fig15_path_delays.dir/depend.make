# Empty dependencies file for bench_fig15_path_delays.
# This may be replaced when dependencies are built.
