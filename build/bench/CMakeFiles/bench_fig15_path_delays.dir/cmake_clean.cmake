file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_path_delays.dir/bench_fig15_path_delays.cpp.o"
  "CMakeFiles/bench_fig15_path_delays.dir/bench_fig15_path_delays.cpp.o.d"
  "bench_fig15_path_delays"
  "bench_fig15_path_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_path_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
