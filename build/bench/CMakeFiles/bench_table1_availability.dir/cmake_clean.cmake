file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_availability.dir/bench_table1_availability.cpp.o"
  "CMakeFiles/bench_table1_availability.dir/bench_table1_availability.cpp.o.d"
  "bench_table1_availability"
  "bench_table1_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
