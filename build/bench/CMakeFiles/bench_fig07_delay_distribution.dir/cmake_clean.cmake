file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_delay_distribution.dir/bench_fig07_delay_distribution.cpp.o"
  "CMakeFiles/bench_fig07_delay_distribution.dir/bench_fig07_delay_distribution.cpp.o.d"
  "bench_fig07_delay_distribution"
  "bench_fig07_delay_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_delay_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
