# Empty compiler generated dependencies file for bench_fig07_delay_distribution.
# This may be replaced when dependencies are built.
