file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_reachability_vs_availability.dir/bench_fig08_reachability_vs_availability.cpp.o"
  "CMakeFiles/bench_fig08_reachability_vs_availability.dir/bench_fig08_reachability_vs_availability.cpp.o.d"
  "bench_fig08_reachability_vs_availability"
  "bench_fig08_reachability_vs_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_reachability_vs_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
