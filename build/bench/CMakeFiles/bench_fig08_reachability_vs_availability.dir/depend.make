# Empty dependencies file for bench_fig08_reachability_vs_availability.
# This may be replaced when dependencies are built.
