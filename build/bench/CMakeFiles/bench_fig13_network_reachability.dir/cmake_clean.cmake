file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_network_reachability.dir/bench_fig13_network_reachability.cpp.o"
  "CMakeFiles/bench_fig13_network_reachability.dir/bench_fig13_network_reachability.cpp.o.d"
  "bench_fig13_network_reachability"
  "bench_fig13_network_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_network_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
