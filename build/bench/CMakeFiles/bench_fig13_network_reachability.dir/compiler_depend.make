# Empty compiler generated dependencies file for bench_fig13_network_reachability.
# This may be replaced when dependencies are built.
