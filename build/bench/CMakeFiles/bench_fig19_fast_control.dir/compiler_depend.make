# Empty compiler generated dependencies file for bench_fig19_fast_control.
# This may be replaced when dependencies are built.
