file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_fast_control.dir/bench_fig19_fast_control.cpp.o"
  "CMakeFiles/bench_fig19_fast_control.dir/bench_fig19_fast_control.cpp.o.d"
  "bench_fig19_fast_control"
  "bench_fig19_fast_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_fast_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
