# Empty dependencies file for bench_fig06_goal_transients.
# This may be replaced when dependencies are built.
