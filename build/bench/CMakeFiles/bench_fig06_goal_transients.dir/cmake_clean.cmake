file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_goal_transients.dir/bench_fig06_goal_transients.cpp.o"
  "CMakeFiles/bench_fig06_goal_transients.dir/bench_fig06_goal_transients.cpp.o.d"
  "bench_fig06_goal_transients"
  "bench_fig06_goal_transients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_goal_transients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
