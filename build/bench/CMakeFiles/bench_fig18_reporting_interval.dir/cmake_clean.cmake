file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_reporting_interval.dir/bench_fig18_reporting_interval.cpp.o"
  "CMakeFiles/bench_fig18_reporting_interval.dir/bench_fig18_reporting_interval.cpp.o.d"
  "bench_fig18_reporting_interval"
  "bench_fig18_reporting_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_reporting_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
