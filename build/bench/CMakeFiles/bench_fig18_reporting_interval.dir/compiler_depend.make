# Empty compiler generated dependencies file for bench_fig18_reporting_interval.
# This may be replaced when dependencies are built.
