# Empty dependencies file for bench_table2_utilization.
# This may be replaced when dependencies are built.
