file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_prediction.dir/bench_table4_prediction.cpp.o"
  "CMakeFiles/bench_table4_prediction.dir/bench_table4_prediction.cpp.o.d"
  "bench_table4_prediction"
  "bench_table4_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
