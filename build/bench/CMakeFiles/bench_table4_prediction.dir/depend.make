# Empty dependencies file for bench_table4_prediction.
# This may be replaced when dependencies are built.
