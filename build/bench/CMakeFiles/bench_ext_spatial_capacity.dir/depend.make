# Empty dependencies file for bench_ext_spatial_capacity.
# This may be replaced when dependencies are built.
