file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_spatial_capacity.dir/bench_ext_spatial_capacity.cpp.o"
  "CMakeFiles/bench_ext_spatial_capacity.dir/bench_ext_spatial_capacity.cpp.o.d"
  "bench_ext_spatial_capacity"
  "bench_ext_spatial_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spatial_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
