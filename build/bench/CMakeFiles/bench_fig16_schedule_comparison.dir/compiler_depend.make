# Empty compiler generated dependencies file for bench_fig16_schedule_comparison.
# This may be replaced when dependencies are built.
