# Empty compiler generated dependencies file for bench_fig09_delay_vs_ber.
# This may be replaced when dependencies are built.
