file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_delay_vs_ber.dir/bench_fig09_delay_vs_ber.cpp.o"
  "CMakeFiles/bench_fig09_delay_vs_ber.dir/bench_fig09_delay_vs_ber.cpp.o.d"
  "bench_fig09_delay_vs_ber"
  "bench_fig09_delay_vs_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_delay_vs_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
