# Empty dependencies file for bench_table3_link_failure.
# This may be replaced when dependencies are built.
