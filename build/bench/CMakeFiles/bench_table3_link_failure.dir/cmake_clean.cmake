file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_link_failure.dir/bench_table3_link_failure.cpp.o"
  "CMakeFiles/bench_table3_link_failure.dir/bench_table3_link_failure.cpp.o.d"
  "bench_table3_link_failure"
  "bench_table3_link_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_link_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
