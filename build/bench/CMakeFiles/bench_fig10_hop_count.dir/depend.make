# Empty dependencies file for bench_fig10_hop_count.
# This may be replaced when dependencies are built.
