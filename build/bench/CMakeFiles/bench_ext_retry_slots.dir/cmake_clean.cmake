file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_retry_slots.dir/bench_ext_retry_slots.cpp.o"
  "CMakeFiles/bench_ext_retry_slots.dir/bench_ext_retry_slots.cpp.o.d"
  "bench_ext_retry_slots"
  "bench_ext_retry_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_retry_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
