# Empty compiler generated dependencies file for bench_ext_retry_slots.
# This may be replaced when dependencies are built.
