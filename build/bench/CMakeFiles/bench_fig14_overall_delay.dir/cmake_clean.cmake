file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_overall_delay.dir/bench_fig14_overall_delay.cpp.o"
  "CMakeFiles/bench_fig14_overall_delay.dir/bench_fig14_overall_delay.cpp.o.d"
  "bench_fig14_overall_delay"
  "bench_fig14_overall_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_overall_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
