# Empty compiler generated dependencies file for bench_fig14_overall_delay.
# This may be replaced when dependencies are built.
