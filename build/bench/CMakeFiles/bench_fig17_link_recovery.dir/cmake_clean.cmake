file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_link_recovery.dir/bench_fig17_link_recovery.cpp.o"
  "CMakeFiles/bench_fig17_link_recovery.dir/bench_fig17_link_recovery.cpp.o.d"
  "bench_fig17_link_recovery"
  "bench_fig17_link_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_link_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
