# Empty compiler generated dependencies file for bench_fig17_link_recovery.
# This may be replaced when dependencies are built.
