# Empty compiler generated dependencies file for upgrade_planner.
# This may be replaced when dependencies are built.
