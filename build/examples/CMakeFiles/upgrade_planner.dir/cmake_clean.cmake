file(REMOVE_RECURSE
  "CMakeFiles/upgrade_planner.dir/upgrade_planner.cpp.o"
  "CMakeFiles/upgrade_planner.dir/upgrade_planner.cpp.o.d"
  "upgrade_planner"
  "upgrade_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
