# Empty compiler generated dependencies file for routing_advisor.
# This may be replaced when dependencies are built.
