file(REMOVE_RECURSE
  "CMakeFiles/routing_advisor.dir/routing_advisor.cpp.o"
  "CMakeFiles/routing_advisor.dir/routing_advisor.cpp.o.d"
  "routing_advisor"
  "routing_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
