file(REMOVE_RECURSE
  "CMakeFiles/schedule_designer.dir/schedule_designer.cpp.o"
  "CMakeFiles/schedule_designer.dir/schedule_designer.cpp.o.d"
  "schedule_designer"
  "schedule_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
