# Empty dependencies file for schedule_designer.
# This may be replaced when dependencies are built.
