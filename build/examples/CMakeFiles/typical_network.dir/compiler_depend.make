# Empty compiler generated dependencies file for typical_network.
# This may be replaced when dependencies are built.
