file(REMOVE_RECURSE
  "CMakeFiles/typical_network.dir/typical_network.cpp.o"
  "CMakeFiles/typical_network.dir/typical_network.cpp.o.d"
  "typical_network"
  "typical_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typical_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
