file(REMOVE_RECURSE
  "CMakeFiles/interval_tuner.dir/interval_tuner.cpp.o"
  "CMakeFiles/interval_tuner.dir/interval_tuner.cpp.o.d"
  "interval_tuner"
  "interval_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
