# Empty dependencies file for interval_tuner.
# This may be replaced when dependencies are built.
