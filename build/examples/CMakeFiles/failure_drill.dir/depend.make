# Empty dependencies file for failure_drill.
# This may be replaced when dependencies are built.
