file(REMOVE_RECURSE
  "CMakeFiles/failure_drill.dir/failure_drill.cpp.o"
  "CMakeFiles/failure_drill.dir/failure_drill.cpp.o.d"
  "failure_drill"
  "failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
