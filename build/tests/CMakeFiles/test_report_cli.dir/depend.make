# Empty dependencies file for test_report_cli.
# This may be replaced when dependencies are built.
