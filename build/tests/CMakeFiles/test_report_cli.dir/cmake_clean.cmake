file(REMOVE_RECURSE
  "CMakeFiles/test_report_cli.dir/cli/spec_parser_test.cpp.o"
  "CMakeFiles/test_report_cli.dir/cli/spec_parser_test.cpp.o.d"
  "CMakeFiles/test_report_cli.dir/report/csv_test.cpp.o"
  "CMakeFiles/test_report_cli.dir/report/csv_test.cpp.o.d"
  "CMakeFiles/test_report_cli.dir/report/histogram_test.cpp.o"
  "CMakeFiles/test_report_cli.dir/report/histogram_test.cpp.o.d"
  "CMakeFiles/test_report_cli.dir/report/table_test.cpp.o"
  "CMakeFiles/test_report_cli.dir/report/table_test.cpp.o.d"
  "test_report_cli"
  "test_report_cli.pdb"
  "test_report_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
