file(REMOVE_RECURSE
  "CMakeFiles/test_link.dir/link/blacklist_test.cpp.o"
  "CMakeFiles/test_link.dir/link/blacklist_test.cpp.o.d"
  "CMakeFiles/test_link.dir/link/failure_script_test.cpp.o"
  "CMakeFiles/test_link.dir/link/failure_script_test.cpp.o.d"
  "CMakeFiles/test_link.dir/link/fitting_test.cpp.o"
  "CMakeFiles/test_link.dir/link/fitting_test.cpp.o.d"
  "CMakeFiles/test_link.dir/link/link_model_test.cpp.o"
  "CMakeFiles/test_link.dir/link/link_model_test.cpp.o.d"
  "test_link"
  "test_link.pdb"
  "test_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
