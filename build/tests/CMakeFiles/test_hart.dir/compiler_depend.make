# Empty compiler generated dependencies file for test_hart.
# This may be replaced when dependencies are built.
