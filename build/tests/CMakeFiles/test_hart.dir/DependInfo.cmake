
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hart/analytic_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/analytic_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/analytic_test.cpp.o.d"
  "/root/repo/tests/hart/composition_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/composition_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/composition_test.cpp.o.d"
  "/root/repo/tests/hart/control_loop_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/control_loop_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/control_loop_test.cpp.o.d"
  "/root/repo/tests/hart/energy_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/energy_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/energy_test.cpp.o.d"
  "/root/repo/tests/hart/failure_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/failure_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/failure_test.cpp.o.d"
  "/root/repo/tests/hart/fast_control_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/fast_control_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/fast_control_test.cpp.o.d"
  "/root/repo/tests/hart/link_probability_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/link_probability_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/link_probability_test.cpp.o.d"
  "/root/repo/tests/hart/network_analysis_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/network_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/network_analysis_test.cpp.o.d"
  "/root/repo/tests/hart/path_analysis_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/path_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/path_analysis_test.cpp.o.d"
  "/root/repo/tests/hart/path_model_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/path_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/path_model_test.cpp.o.d"
  "/root/repo/tests/hart/retry_slots_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/retry_slots_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/retry_slots_test.cpp.o.d"
  "/root/repo/tests/hart/schedule_optimizer_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/schedule_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/schedule_optimizer_test.cpp.o.d"
  "/root/repo/tests/hart/sensitivity_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/sensitivity_test.cpp.o.d"
  "/root/repo/tests/hart/stability_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/stability_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/stability_test.cpp.o.d"
  "/root/repo/tests/hart/sweep_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/sweep_test.cpp.o.d"
  "/root/repo/tests/hart/validation_test.cpp" "tests/CMakeFiles/test_hart.dir/hart/validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_hart.dir/hart/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
