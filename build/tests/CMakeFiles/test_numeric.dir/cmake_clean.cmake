file(REMOVE_RECURSE
  "CMakeFiles/test_numeric.dir/numeric/combinatorics_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/combinatorics_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/distributions_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/distributions_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/probability_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/probability_test.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/rng_test.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/rng_test.cpp.o.d"
  "test_numeric"
  "test_numeric.pdb"
  "test_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
