# Empty dependencies file for test_numeric.
# This may be replaced when dependencies are built.
