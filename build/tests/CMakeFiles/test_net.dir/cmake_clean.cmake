file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/downlink_test.cpp.o"
  "CMakeFiles/test_net.dir/net/downlink_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/export_test.cpp.o"
  "CMakeFiles/test_net.dir/net/export_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/path_test.cpp.o"
  "CMakeFiles/test_net.dir/net/path_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/plant_generator_test.cpp.o"
  "CMakeFiles/test_net.dir/net/plant_generator_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/routing_test.cpp.o"
  "CMakeFiles/test_net.dir/net/routing_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/schedule_builder_test.cpp.o"
  "CMakeFiles/test_net.dir/net/schedule_builder_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/schedule_test.cpp.o"
  "CMakeFiles/test_net.dir/net/schedule_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/spatial_plant_test.cpp.o"
  "CMakeFiles/test_net.dir/net/spatial_plant_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/topology_test.cpp.o"
  "CMakeFiles/test_net.dir/net/topology_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/typical_network_test.cpp.o"
  "CMakeFiles/test_net.dir/net/typical_network_test.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
