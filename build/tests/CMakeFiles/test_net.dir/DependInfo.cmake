
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/downlink_test.cpp" "tests/CMakeFiles/test_net.dir/net/downlink_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/downlink_test.cpp.o.d"
  "/root/repo/tests/net/export_test.cpp" "tests/CMakeFiles/test_net.dir/net/export_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/export_test.cpp.o.d"
  "/root/repo/tests/net/path_test.cpp" "tests/CMakeFiles/test_net.dir/net/path_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/path_test.cpp.o.d"
  "/root/repo/tests/net/plant_generator_test.cpp" "tests/CMakeFiles/test_net.dir/net/plant_generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/plant_generator_test.cpp.o.d"
  "/root/repo/tests/net/routing_test.cpp" "tests/CMakeFiles/test_net.dir/net/routing_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/routing_test.cpp.o.d"
  "/root/repo/tests/net/schedule_builder_test.cpp" "tests/CMakeFiles/test_net.dir/net/schedule_builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/schedule_builder_test.cpp.o.d"
  "/root/repo/tests/net/schedule_test.cpp" "tests/CMakeFiles/test_net.dir/net/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/schedule_test.cpp.o.d"
  "/root/repo/tests/net/spatial_plant_test.cpp" "tests/CMakeFiles/test_net.dir/net/spatial_plant_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/spatial_plant_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/test_net.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/topology_test.cpp.o.d"
  "/root/repo/tests/net/typical_network_test.cpp" "tests/CMakeFiles/test_net.dir/net/typical_network_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/typical_network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
