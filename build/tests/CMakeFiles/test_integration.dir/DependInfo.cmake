
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/channel_gilbert_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/channel_gilbert_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/channel_gilbert_test.cpp.o.d"
  "/root/repo/tests/integration/dtmc_consistency_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/dtmc_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/dtmc_consistency_test.cpp.o.d"
  "/root/repo/tests/integration/model_vs_simulation_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/model_vs_simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/model_vs_simulation_test.cpp.o.d"
  "/root/repo/tests/integration/random_model_properties_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/random_model_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/random_model_properties_test.cpp.o.d"
  "/root/repo/tests/integration/random_network_properties_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/random_network_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/random_network_properties_test.cpp.o.d"
  "/root/repo/tests/integration/umbrella_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/umbrella_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
