file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/channel_gilbert_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/channel_gilbert_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/dtmc_consistency_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/dtmc_consistency_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/model_vs_simulation_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/model_vs_simulation_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/random_model_properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/random_model_properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/random_network_properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/random_network_properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/umbrella_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/umbrella_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
