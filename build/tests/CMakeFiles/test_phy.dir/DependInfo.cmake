
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/bsc_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/bsc_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/bsc_test.cpp.o.d"
  "/root/repo/tests/phy/frame_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/frame_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/frame_test.cpp.o.d"
  "/root/repo/tests/phy/modulation_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/modulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/modulation_test.cpp.o.d"
  "/root/repo/tests/phy/path_loss_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/path_loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/path_loss_test.cpp.o.d"
  "/root/repo/tests/phy/pilot_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/pilot_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/pilot_test.cpp.o.d"
  "/root/repo/tests/phy/snr_test.cpp" "tests/CMakeFiles/test_phy.dir/phy/snr_test.cpp.o" "gcc" "tests/CMakeFiles/test_phy.dir/phy/snr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
