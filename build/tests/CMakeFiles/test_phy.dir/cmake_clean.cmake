file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/bsc_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/bsc_test.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/frame_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/frame_test.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/modulation_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/modulation_test.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/path_loss_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/path_loss_test.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/pilot_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/pilot_test.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/snr_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/snr_test.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
