
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/markov/absorbing_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/absorbing_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/absorbing_test.cpp.o.d"
  "/root/repo/tests/markov/dtmc_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/dtmc_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/dtmc_test.cpp.o.d"
  "/root/repo/tests/markov/export_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/export_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/export_test.cpp.o.d"
  "/root/repo/tests/markov/hitting_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/hitting_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/hitting_test.cpp.o.d"
  "/root/repo/tests/markov/limiting_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/limiting_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/limiting_test.cpp.o.d"
  "/root/repo/tests/markov/simulate_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/simulate_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/simulate_test.cpp.o.d"
  "/root/repo/tests/markov/steady_state_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/steady_state_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/steady_state_test.cpp.o.d"
  "/root/repo/tests/markov/structure_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/structure_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/structure_test.cpp.o.d"
  "/root/repo/tests/markov/transient_test.cpp" "tests/CMakeFiles/test_markov.dir/markov/transient_test.cpp.o" "gcc" "tests/CMakeFiles/test_markov.dir/markov/transient_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/whart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
