file(REMOVE_RECURSE
  "CMakeFiles/test_markov.dir/markov/absorbing_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/absorbing_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/dtmc_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/dtmc_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/export_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/export_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/hitting_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/hitting_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/limiting_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/limiting_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/simulate_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/simulate_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/steady_state_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/steady_state_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/structure_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/structure_test.cpp.o.d"
  "CMakeFiles/test_markov.dir/markov/transient_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov/transient_test.cpp.o.d"
  "test_markov"
  "test_markov.pdb"
  "test_markov[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
