# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_markov[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_hart[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_report_cli[1]_include.cmake")
add_test(cli_typical "/root/repo/build/src/whart_cli" "--typical")
set_tests_properties(cli_typical PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;104;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_typical_reports "/root/repo/build/src/whart_cli" "--typical" "--energy" "--stability" "0.99")
set_tests_properties(cli_typical_reports PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;105;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_spec_file "/root/repo/build/src/whart_cli" "/root/repo/examples/specs/plant.spec")
set_tests_properties(cli_spec_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;107;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/src/whart_cli" "--typical" "--bogus")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;109;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/src/whart_cli" "/no/such/file")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;111;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_exports "/root/repo/build/src/whart_cli" "--typical" "--csv" "/root/repo/build/cli_test.csv" "--sweep" "/root/repo/build/cli_sweep.csv")
set_tests_properties(cli_exports PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;113;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/src/whart_cli" "--typical" "--simulate" "2000")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;116;add_test;/root/repo/tests/CMakeLists.txt;0;")
