// Structural invariants of the path DTMC machinery — properties that
// must hold for EVERY scenario, independent of the paper's numbers:
//   - every row of the materialized chain is stochastic (to 1e-12,
//     tighter than the 1e-9 the Dtmc constructor enforces);
//   - probability mass is conserved under every transient step;
//   - the goal and Discard states are absorbing and all mass is
//     absorbed by the end of the horizon;
//   - R + P(discard) = 1;
//   - the delay CDF over received messages is monotone and normalized,
//     and every goal's transient trajectory is non-decreasing in time;
//   - a path-analysis cache hit is bitwise equal to a cold solve.
// A violation is a finding, not an exception: the checker returns all
// of them so the fuzzer can report and shrink.
#pragma once

#include <string>
#include <vector>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::verify {

/// One violated invariant.
struct InvariantViolation {
  /// Stable identifier, e.g. "row-stochastic", "mass-conservation".
  std::string invariant;
  /// Human-readable specifics (which state/cycle, by how much).
  std::string detail;
};

struct InvariantOptions {
  /// Bound on |1 - row sum| of the materialized chain.
  double row_sum_tolerance = 1e-12;
  /// Bound on |1 - total mass| after each transient step.
  double mass_tolerance = 1e-12;
  /// Bound on |R + P(discard) - 1| from the production solver.
  double closure_tolerance = 1e-12;
  /// Slack for CDF monotonicity / normalization.
  double cdf_tolerance = 1e-12;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantOptions options = {})
      : options_(options) {}

  /// Run every invariant on one path under steady-state links.  Returns
  /// all violations (empty = the scenario upholds the contract).
  [[nodiscard]] std::vector<InvariantViolation> check(
      const hart::PathModelConfig& config,
      const std::vector<double>& availabilities) const;

  /// Aggregation invariants of whole-network measures: the mean delay,
  /// utilization sums and bottleneck indices must decompose exactly
  /// over the per-path measures.
  [[nodiscard]] std::vector<InvariantViolation> check_network(
      const hart::NetworkMeasures& measures) const;

  [[nodiscard]] const InvariantOptions& options() const noexcept {
    return options_;
  }

 private:
  void check_chain(const markov::Dtmc& chain,
                   const hart::PathModelConfig& config,
                   std::vector<InvariantViolation>& out) const;
  void check_solution(const hart::PathTransientResult& transient,
                      const hart::PathMeasures& measures,
                      std::vector<InvariantViolation>& out) const;
  void check_cache(const hart::PathModelConfig& config,
                   const std::vector<double>& availabilities,
                   const hart::PathMeasures& cold,
                   std::vector<InvariantViolation>& out) const;

  InvariantOptions options_;
};

}  // namespace whart::verify
