// Greedy scenario shrinking: given a failing scenario and a predicate
// that re-checks failure, repeatedly try simplifying transformations
// (drop a path, drop a hop, shorten the reporting interval, remove the
// TTL, drop retry slots, zero the downlink half, compact the frame,
// neutralize link models) and keep any candidate that still fails,
// until a fixpoint.  The result is a locally minimal reproducer — small
// enough to read, step through and turn into a regression test.
#pragma once

#include <cstdint>
#include <functional>

#include "whart/verify/scenario.hpp"

namespace whart::verify {

struct ShrinkResult {
  Scenario minimal;
  /// Candidates tried (accepted + rejected).
  std::uint64_t candidates_tried = 0;
  /// Candidates accepted (still failing, strictly simpler).
  std::uint64_t steps_taken = 0;
};

/// Predicate: true when `scenario` still exhibits the failure.
using StillFails = std::function<bool(const Scenario&)>;

/// Shrink `failing` (which must satisfy still_fails) to a fixpoint.
ShrinkResult shrink_scenario(const Scenario& failing,
                             const StillFails& still_fails);

}  // namespace whart::verify
