#include "whart/verify/shrink.hpp"

#include <algorithm>
#include <map>

#include "whart/common/contracts.hpp"

namespace whart::verify {

namespace {

/// Renumber every used slot to 1..k (order preserved) and shrink the
/// frame to exactly k slots; clamp the TTL to the new horizon.
Scenario compact_slots(const Scenario& scenario) {
  std::map<net::SlotNumber, net::SlotNumber> mapping;
  for (const ScenarioPath& path : scenario.paths) {
    for (net::SlotNumber s : path.hop_slots) mapping[s] = 0;
    for (net::SlotNumber s : path.retry_slots)
      if (s != 0) mapping[s] = 0;
  }
  net::SlotNumber next = 1;
  for (auto& [slot, target] : mapping) target = next++;

  Scenario candidate = scenario;
  candidate.superframe.uplink_slots =
      static_cast<std::uint32_t>(mapping.size());
  for (ScenarioPath& path : candidate.paths) {
    for (net::SlotNumber& s : path.hop_slots) s = mapping[s];
    for (net::SlotNumber& s : path.retry_slots)
      if (s != 0) s = mapping[s];
  }
  const std::uint32_t horizon =
      candidate.reporting_interval * candidate.superframe.uplink_slots;
  if (candidate.ttl.has_value())
    candidate.ttl = std::min(*candidate.ttl, horizon);
  return candidate;
}

/// All one-step simplifications of `scenario`, most aggressive first.
std::vector<Scenario> candidates(const Scenario& scenario) {
  std::vector<Scenario> out;

  // Drop one whole path.
  if (scenario.paths.size() > 1)
    for (std::size_t p = 0; p < scenario.paths.size(); ++p) {
      Scenario candidate = scenario;
      candidate.paths.erase(candidate.paths.begin() +
                            static_cast<std::ptrdiff_t>(p));
      out.push_back(std::move(candidate));
    }

  // Drop the last or first hop of a path.
  for (std::size_t p = 0; p < scenario.paths.size(); ++p) {
    if (scenario.paths[p].hop_count() <= 1) continue;
    for (const bool last : {true, false}) {
      Scenario candidate = scenario;
      ScenarioPath& path = candidate.paths[p];
      const std::size_t drop = last ? path.hop_count() - 1 : 0;
      const auto offset = static_cast<std::ptrdiff_t>(drop);
      path.hop_slots.erase(path.hop_slots.begin() + offset);
      path.links.erase(path.links.begin() + offset);
      if (!path.retry_slots.empty())
        path.retry_slots.erase(path.retry_slots.begin() + offset);
      out.push_back(std::move(candidate));
    }
  }

  // Shorter reporting interval (straight to 1, then decrement).
  if (scenario.reporting_interval > 1) {
    Scenario candidate = scenario;
    candidate.reporting_interval = 1;
    if (candidate.ttl.has_value())
      candidate.ttl = std::min(
          *candidate.ttl,
          candidate.reporting_interval * candidate.superframe.uplink_slots);
    out.push_back(std::move(candidate));
    candidate = scenario;
    candidate.reporting_interval -= 1;
    if (candidate.ttl.has_value())
      candidate.ttl = std::min(
          *candidate.ttl,
          candidate.reporting_interval * candidate.superframe.uplink_slots);
    out.push_back(std::move(candidate));
  }

  // No TTL (full horizon).
  if (scenario.ttl.has_value()) {
    Scenario candidate = scenario;
    candidate.ttl.reset();
    out.push_back(std::move(candidate));
  }

  // No retry slots.
  if (scenario.has_retry_slots()) {
    Scenario candidate = scenario;
    for (ScenarioPath& path : candidate.paths) path.retry_slots.clear();
    out.push_back(std::move(candidate));
  }

  // No downlink half.
  if (scenario.superframe.downlink_slots > 0) {
    Scenario candidate = scenario;
    candidate.superframe.downlink_slots = 0;
    out.push_back(std::move(candidate));
  }

  // Compact the frame to exactly the used slots.
  {
    Scenario candidate = compact_slots(scenario);
    if (candidate.superframe.uplink_slots < scenario.superframe.uplink_slots)
      out.push_back(std::move(candidate));
  }

  // Neutral links: one hop at a time to LinkModel(0.5, 0.5).
  const link::LinkModel neutral(0.5, 0.5);
  for (std::size_t p = 0; p < scenario.paths.size(); ++p)
    for (std::size_t h = 0; h < scenario.paths[p].hop_count(); ++h) {
      if (scenario.paths[p].links[h] == neutral) continue;
      Scenario candidate = scenario;
      candidate.paths[p].links[h] = neutral;
      out.push_back(std::move(candidate));
    }

  return out;
}

}  // namespace

ShrinkResult shrink_scenario(const Scenario& failing,
                             const StillFails& still_fails) {
  expects(still_fails(failing), "the input scenario must fail");
  ShrinkResult result;
  result.minimal = failing;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (Scenario& candidate : candidates(result.minimal)) {
      try {
        candidate.validate();
      } catch (const std::exception&) {
        continue;  // a transformation produced a malformed scenario
      }
      ++result.candidates_tried;
      if (!still_fails(candidate)) continue;
      result.minimal = std::move(candidate);
      ++result.steps_taken;
      progressed = true;
      break;  // restart candidate enumeration from the simpler scenario
    }
  }
  return result;
}

}  // namespace whart::verify
