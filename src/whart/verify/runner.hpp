// The fuzzing runner: replay the seed corpus, then explore fresh seeds
// derived from the base seed, checking every scenario with the
// invariant library and the three-way oracle.  Scenarios fan out over
// the shared thread pool; results are collected in seed order, so a run
// is deterministic in (seed, runs, corpus).  Each failure is shrunk
// (against the deterministic legs, so shrinking is exact and fast) and
// its seed is appended to the corpus for replay in future runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "whart/verify/invariants.hpp"
#include "whart/verify/oracle.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {

struct VerifyConfig {
  /// Base seed of the fresh-seed stream.
  std::uint64_t seed = 1;
  /// Number of fresh scenarios (on top of the corpus replay).
  std::uint64_t runs = 100;
  /// Shrink failures to minimal reproducers.
  bool shrink = true;
  /// Seed-corpus file to replay and extend ("" = none).
  std::string corpus_path;
  /// Worker threads for the scenario fan-out (0 = WHART_THREADS).
  unsigned threads = 0;
  GeneratorLimits limits;
  InvariantOptions invariants;
  OracleConfig oracle;
};

/// One failing scenario with everything needed to reproduce it.
struct VerifyFailure {
  std::uint64_t seed = 0;
  Scenario scenario;
  std::vector<InvariantViolation> invariant_violations;
  OracleReport oracle;
  /// Present when shrinking ran and found a simpler reproducer.
  std::optional<Scenario> shrunk;

  /// Multi-line report: seed, scenario, findings, shrunk reproducer.
  [[nodiscard]] std::string summary() const;
};

struct VerifyReport {
  std::uint64_t scenarios_run = 0;
  std::uint64_t corpus_replayed = 0;
  std::uint64_t scenarios_simulated = 0;
  std::uint64_t statistical_checks = 0;
  /// Structural invariant violations across all scenarios.
  std::uint64_t invariant_violations = 0;
  /// Production-vs-reference (and closure) disagreements.
  std::uint64_t deterministic_misses = 0;
  /// Analytic values outside the simulator's confidence bounds.
  std::uint64_t ci_bound_misses = 0;
  std::vector<VerifyFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Check one scenario (invariants + oracle).  Used by the runner and by
/// the shrinking predicate; deterministic when the oracle's simulator
/// leg is off.
[[nodiscard]] VerifyFailure check_scenario(const Scenario& scenario,
                                           const InvariantOptions& invariants,
                                           const OracleConfig& oracle);

/// True when `failure` holds any finding.
[[nodiscard]] bool has_findings(const VerifyFailure& failure);

/// Run the whole campaign.
VerifyReport run_verification(const VerifyConfig& config);

}  // namespace whart::verify
