// Property-based scenario generation for the verification subsystem.
//
// A Scenario is a complete, self-contained model input: a superframe, a
// reporting interval, an optional TTL, and a set of TDMA-disjoint paths,
// each with its own slot assignment (possibly out of hop order, possibly
// with dedicated retry slots) and per-hop Gilbert link models.  The
// ScenarioGenerator samples scenarios deterministically from a 64-bit
// seed — the same seed always yields the same scenario, so every failure
// the fuzzer finds is reproducible from one integer.  Seeds of past
// failures persist in a corpus file (one seed per line) that the runner
// replays before exploring fresh ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "whart/hart/path_model.hpp"
#include "whart/link/channel_model.hpp"
#include "whart/link/link_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::verify {

/// One path of a scenario: slots (1-based within the uplink frame) and
/// the link model of every hop.
struct ScenarioPath {
  std::vector<net::SlotNumber> hop_slots;
  /// Empty, or one entry per hop (0 = no retry slot for that hop).
  std::vector<net::SlotNumber> retry_slots;
  /// One Gilbert model per hop.
  std::vector<link::LinkModel> links;

  [[nodiscard]] std::size_t hop_count() const noexcept {
    return hop_slots.size();
  }
};

/// A generated model input.  Invariant: every non-zero slot across all
/// paths (hop and retry) is distinct — TDMA allows one transmission per
/// slot network-wide.
struct Scenario {
  /// The generator seed that produced this scenario (0 for hand-built).
  std::uint64_t seed = 0;
  net::SuperframeConfig superframe{1, 1};
  std::uint32_t reporting_interval = 1;
  /// Message TTL in uplink slots; unset = full horizon.
  std::optional<std::uint32_t> ttl;
  /// Correlated-channel overlay: a network-wide channel template that
  /// every hop runs rescaled to its own stationary availability
  /// (link::ChannelModel::with_marginal_success).  Unset = the classic
  /// per-slot-independent regime.
  std::optional<link::ChannelModel> channel;
  std::vector<ScenarioPath> paths;

  [[nodiscard]] std::size_t path_count() const noexcept {
    return paths.size();
  }

  /// Largest hop count over all paths.
  [[nodiscard]] std::size_t max_hops() const noexcept;

  /// True when any path carries a retry slot.  Retry slots cannot be
  /// expressed in a net::Schedule, so such scenarios skip the
  /// simulator leg of the oracle.
  [[nodiscard]] bool has_retry_slots() const noexcept;

  /// Path model config of path `index`.
  [[nodiscard]] hart::PathModelConfig path_config(std::size_t index) const;

  /// Steady-state availability of each hop of path `index`.
  [[nodiscard]] std::vector<double> hop_availabilities(
      std::size_t index) const;

  /// Per-hop channel chains of path `index`: the scenario's channel
  /// template rescaled to each hop's availability.  Requires
  /// channel.has_value().
  [[nodiscard]] std::vector<link::ChannelModel> hop_channels(
      std::size_t index) const;

  /// True when path `index`'s hop slots are in increasing order (the
  /// regime where the paper's closed forms are exact).
  [[nodiscard]] bool slots_sorted(std::size_t index) const;

  /// One-line human-readable description (for failure reports).
  [[nodiscard]] std::string to_string() const;

  /// Throws whart::invariant_error when the scenario is malformed
  /// (slot collisions, out-of-range slots, missing links).
  void validate() const;
};

/// The scenario realized as a network + paths + schedule, ready for the
/// Monte-Carlo simulator.  Each path becomes its own chain of fresh
/// nodes ending at the gateway, so paths share no links.
struct BuiltScenario {
  net::Network network;
  std::vector<net::Path> paths;
  net::Schedule schedule;
};

/// Build the simulator view.  Requires !scenario.has_retry_slots().
BuiltScenario build_network(const Scenario& scenario);

/// Sampling bounds of the generator.  The defaults keep single-scenario
/// verification under a few milliseconds for the deterministic legs
/// while still covering multi-path frames, out-of-order slots, retry
/// slots, mid-horizon TTLs and degenerate links.
struct GeneratorLimits {
  std::size_t max_paths = 3;
  std::uint32_t max_hops = 4;
  std::uint32_t max_reporting_interval = 5;
  /// Extra idle slots appended to the minimum frame size.
  std::uint32_t max_idle_slots = 5;
  /// Probability that a path gets dedicated retry slots.
  double retry_probability = 0.2;
  /// Probability of a TTL strictly inside the horizon.
  double ttl_probability = 0.3;
  /// Probability that a hop draws a degenerate link (pfl = 0, pfl = 1,
  /// or near-zero availability) instead of a mid-range one.
  double edge_link_probability = 0.15;
  /// Probability of a correlated-channel overlay (Gilbert-Elliott with
  /// seeded burst parameters, occasionally a 3-state fading chain).  The
  /// overlay is drawn from an RNG stream forked off the seed, so seeds
  /// from pre-channel corpora still produce the same base scenario.
  double channel_probability = 0.45;
};

/// Deterministic scenario sampler: generate(seed) is a pure function.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorLimits limits = {});

  [[nodiscard]] Scenario generate(std::uint64_t seed) const;

  [[nodiscard]] const GeneratorLimits& limits() const noexcept {
    return limits_;
  }

 private:
  GeneratorLimits limits_;
};

/// Load a seed corpus (one decimal seed per line, '#' comments).  A
/// missing file is an empty corpus.
std::vector<std::uint64_t> load_corpus(const std::string& path);

/// Append `seed` to the corpus file unless already present.
void append_corpus(const std::string& path, std::uint64_t seed);

}  // namespace whart::verify
