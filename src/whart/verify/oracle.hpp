// Four-way differential oracle.  For one scenario it computes:
//   (1) the production leg — hart::PathModel / compute_path_measures,
//       the parallel-and-cached engine the rest of the system uses;
//   (2) the reference leg — verify::reference_solve, an independent
//       dense implementation of the same math;
//   (3) the kernel leg — the superframe-product transient kernel
//       (PathAnalysisOptions::kernel = kSuperframeProduct), compared
//       against the reference to prove the cycle collapse is faithful;
//   (4) the simulator leg — sim::NetworkSimulator in the kIndependent
//       regime, whose empirical frequencies converge to the analytic
//       probabilities exactly;
//   (5) the refill leg — a PathModelSkeleton numeric refill (symbolic
//       phase captured once, values refilled per solve; DESIGN.md §12),
//       run cold and warm for both kernels and required to reproduce
//       the fresh solve BITWISE, not merely within tolerance;
//   (6) the batch leg — the SoA lane-parallel refill
//       (PathModelSkeleton::analyze_batch_into, DESIGN.md §13): the
//       scenario's availabilities plus three deformed variants solve as
//       one four-lane batch, and every lane must match its own fresh
//       scalar solve to 1e-12 relative — cross-lane contamination in
//       the vectorized core shows up as a lane answering a neighbour's
//       question.
//   (7) the channel leg — when the scenario carries a correlated-channel
//       overlay, the channel-enlarged production solver (both kernels)
//       is compared against verify::reference_solve_channel, an
//       independent dense solver over the (t, hop, channel-state) grid,
//       and the simulator leg switches to the kChannel regime so the
//       empirical draws come from the very chains the analytics solve;
//   (8) the incremental leg — the what-if engine's targeted row replay
//       (markov::IncrementalProduct, DESIGN.md §15): after seeding a
//       baseline cycle product, each hop's availability is perturbed in
//       isolation, re-solved through
//       PathModelSkeleton::analyze_incremental_into (only the dirty
//       product rows replayed) and compared against a fresh solve of
//       the perturbed chain to 1e-12 relative, for both kernels (under
//       kPerSlot the incremental path declines by contract and the
//       cached-skeleton fallback is held to the same bound).
// Production vs. reference must agree to a deterministic relative
// tolerance (both are exact solvers of the same chain).  Production vs.
// simulator is judged statistically: a disagreement counts only when
// the analytic value falls outside a Wilson/Hoeffding bound computed
// from the sample size at a per-check failure probability delta — no
// fixed epsilons, and the false-alarm rate of a whole fuzzing run is
// bounded by (checks x delta).
//
// Fault injection: the oracle can deliberately corrupt its production
// leg (and only that leg) to prove the harness catches real bugs —
// kLinkBias biases the availabilities the production solver sees,
// kDiscardLeak leaks discard mass, kCycleShift rotates the per-cycle
// delivery probabilities, kProductEntry corrupts one entry of the
// superframe-product matrix the kernel leg solves through,
// kStaleSkeletonValue biases one refilled value of the refill leg (a
// stand-in for a stale skeleton provenance map), kLaneSwap swaps the
// first two value lanes of the batch leg's SoA cycle product (a
// stand-in for a lane-indexing bug in the vectorized refill),
// kStaleProductRow biases the start-state row of the incremental leg's
// propagated cycle product (a stand-in for an incompletely replayed
// product row after a targeted update).  A healthy harness reports
// findings for every injection and none for kNone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "whart/sim/simulator.hpp"
#include "whart/verify/scenario.hpp"

namespace whart::verify {

/// Deliberate production-leg corruption (see file comment).
enum class Injection {
  kNone,
  /// Availabilities seen by the production solver biased +0.05.
  kLinkBias,
  /// Production discard probability scaled by 0.875.
  kDiscardLeak,
  /// Production cycle probabilities rotated by one cycle.
  kCycleShift,
  /// One entry of the kernel leg's cycle-product matrix perturbed by
  /// 1e-3 — a stand-in for a buggy sparse-sparse product build.
  kProductEntry,
  /// The refill leg's hop-0 success probability biased by 1e-6 during
  /// the numeric refill only — a stand-in for a stale or mis-indexed
  /// skeleton provenance map.  Caught by the bitwise refill comparison.
  kStaleSkeletonValue,
  /// The batch leg's first two SoA cycle-product value lanes swapped
  /// after the vectorized refill — cross-lane contamination, the
  /// signature of a lane-indexing bug in the Gustavson replay.  Caught
  /// by the per-lane comparison against fresh scalar solves.
  kLaneSwap,
  /// The channel leg's firing rows redistribute their failure mass by
  /// the *stationary* distribution instead of the failure-conditioned
  /// transition row — the signature of dropping the channel-state
  /// memory between retry attempts (what makes bursts bursts).  To make
  /// the self-test deterministic the oracle forces a fixed
  /// Gilbert-Elliott overlay and a multi-cycle interval onto the
  /// scenario, so retries exist and the leak is observable.  Caught by
  /// the channel-reference comparison.
  kChannelStateLeak,
  /// Every entry of row 0 of the incremental leg's propagated cycle
  /// product biased by 1e-6 (the start-state row; a stand-in for a
  /// stale or incompletely replayed product row after a targeted
  /// update).  The oracle forces a multi-cycle interval so the cycle
  /// product is always consulted.  Caught by the incremental-vs-fresh
  /// comparison.
  kStaleProductRow,
};

struct OracleConfig {
  /// Monte-Carlo sample size (reporting intervals) of the simulator leg.
  std::uint64_t sim_intervals = 4000;
  std::uint32_t sim_shards = 4;
  /// Threads for the simulator shards (1 = serial; the verify runner
  /// already fans out across scenarios).
  unsigned sim_threads = 1;
  /// Skip the simulator leg entirely (deterministic legs only).
  bool run_simulation = true;
  /// Relative tolerance of production vs. reference agreement.
  double deterministic_tolerance = 1e-9;
  /// Per-statistical-check failure probability (sets the Wilson z and
  /// the Hoeffding radius).
  double per_check_delta = 1e-9;
  sim::LinkRegime regime = sim::LinkRegime::kIndependent;
  Injection injection = Injection::kNone;
};

/// One disagreement between legs.
struct OracleFinding {
  /// Path (0-based) the finding concerns.
  std::size_t path_index = 0;
  /// "reference:<field>" (deterministic miss), "simulator:<field>"
  /// (CI-bound miss) or "closure:<invariant>".
  std::string check;
  std::string detail;
};

struct OracleReport {
  std::vector<OracleFinding> findings;
  /// True when the simulator leg ran (retry slots force it off).
  bool simulated = false;
  /// Statistical comparisons performed (the delta budget spent).
  std::uint64_t statistical_checks = 0;

  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
};

/// Cross-validate every path of `scenario` across the three legs.
OracleReport cross_validate(const Scenario& scenario,
                            const OracleConfig& config = {});

}  // namespace whart::verify
