// Statistical agreement bounds for the differential oracle.  Instead of
// fixed epsilons, analytic-vs-simulator comparisons are judged by
// concentration inequalities: the empirical frequency of n i.i.d.
// Bernoulli trials deviates from its true mean by more than the
// Hoeffding radius with probability at most delta, and the Wilson score
// interval (sim::wilson_interval) gives the matching two-sided interval
// for a binomial proportion.  z_for_delta converts a per-check failure
// probability into the z-score the Wilson interval wants.
#pragma once

#include <cstdint>

namespace whart::verify {

/// Two-sided Hoeffding radius: |empirical mean - true mean| of n i.i.d.
/// samples bounded in [0, range] exceeds this with probability < delta.
///   radius = range * sqrt(ln(2 / delta) / (2 n))
double hoeffding_radius(std::uint64_t n, double delta, double range = 1.0);

/// Inverse standard-normal CDF (quantile function), |error| < 1.15e-9
/// over (0, 1) — Acklam's rational approximation with one Halley
/// refinement step.
double inverse_normal_cdf(double p);

/// z-score such that a two-sided normal tail has mass delta:
/// z = Phi^-1(1 - delta / 2).
double z_for_delta(double delta);

}  // namespace whart::verify
