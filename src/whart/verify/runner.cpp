#include "whart/verify/runner.hpp"

#include <sstream>
#include <utility>

#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/verify/shrink.hpp"

namespace whart::verify {

std::string VerifyFailure::summary() const {
  std::ostringstream out;
  out << "FAIL seed=" << seed << "\n  " << scenario.to_string() << "\n";
  for (const InvariantViolation& v : invariant_violations)
    out << "  invariant " << v.invariant << ": " << v.detail << "\n";
  for (const OracleFinding& f : oracle.findings)
    out << "  path " << f.path_index + 1 << " " << f.check << ": " << f.detail
        << "\n";
  if (shrunk.has_value())
    out << "  shrunk to: " << shrunk->to_string() << "\n";
  return out.str();
}

VerifyFailure check_scenario(const Scenario& scenario,
                             const InvariantOptions& invariants,
                             const OracleConfig& oracle) {
  VerifyFailure result;
  result.seed = scenario.seed;
  result.scenario = scenario;

  const InvariantChecker checker(invariants);
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    std::vector<InvariantViolation> violations =
        checker.check(scenario.path_config(p), scenario.hop_availabilities(p));
    for (InvariantViolation& v : violations) {
      v.detail = "path " + std::to_string(p + 1) + ": " + v.detail;
      result.invariant_violations.push_back(std::move(v));
    }
  }
  result.oracle = cross_validate(scenario, oracle);
  return result;
}

bool has_findings(const VerifyFailure& failure) {
  return !failure.invariant_violations.empty() ||
         !failure.oracle.findings.empty();
}

VerifyReport run_verification(const VerifyConfig& config) {
  WHART_SPAN("verify_run");

  // Seed schedule: corpus first, then a splitmix64 stream off the base
  // seed (the base seed itself is the first fresh seed).
  std::vector<std::uint64_t> seeds;
  if (!config.corpus_path.empty()) seeds = load_corpus(config.corpus_path);
  const std::size_t corpus_seeds = seeds.size();
  std::uint64_t stream = config.seed;
  for (std::uint64_t i = 0; i < config.runs; ++i) {
    seeds.push_back(stream);
    stream = numeric::splitmix64(stream);
  }

  const ScenarioGenerator generator(config.limits);
  std::vector<VerifyFailure> results(seeds.size());
  common::parallel_for(
      seeds.size(),
      [&](std::size_t i) {
        results[i] = check_scenario(generator.generate(seeds[i]),
                                    config.invariants, config.oracle);
      },
      config.threads);

  VerifyReport report;
  report.scenarios_run = seeds.size();
  report.corpus_replayed = corpus_seeds;
  for (VerifyFailure& result : results) {
    report.statistical_checks += result.oracle.statistical_checks;
    if (result.oracle.simulated) ++report.scenarios_simulated;
    report.invariant_violations += result.invariant_violations.size();
    for (const OracleFinding& finding : result.oracle.findings) {
      if (finding.check.starts_with("simulator:"))
        ++report.ci_bound_misses;
      else
        ++report.deterministic_misses;
    }
    if (has_findings(result)) report.failures.push_back(std::move(result));
  }

  if (config.shrink) {
    // Shrink against the deterministic legs only, so the predicate is
    // exact (no resampling noise) and cheap.
    OracleConfig deterministic = config.oracle;
    deterministic.run_simulation = false;
    const StillFails still_fails = [&](const Scenario& candidate) {
      return has_findings(
          check_scenario(candidate, config.invariants, deterministic));
    };
    for (VerifyFailure& failure : report.failures) {
      VerifyFailure probe =
          check_scenario(failure.scenario, config.invariants, deterministic);
      if (!has_findings(probe)) continue;  // only statistical: not shrinkable
      const ShrinkResult shrunk =
          shrink_scenario(failure.scenario, still_fails);
      if (shrunk.steps_taken > 0) failure.shrunk = shrunk.minimal;
      WHART_COUNT_N("verify.shrink.steps", shrunk.steps_taken);
    }
  }

  if (!config.corpus_path.empty())
    for (const VerifyFailure& failure : report.failures)
      append_corpus(config.corpus_path, failure.seed);

  WHART_COUNT_N("verify.scenarios", report.scenarios_run);
  WHART_COUNT_N("verify.invariant_violations", report.invariant_violations);
  WHART_COUNT_N("verify.deterministic_misses", report.deterministic_misses);
  WHART_COUNT_N("verify.ci_bound_misses", report.ci_bound_misses);
  WHART_COUNT_N("verify.statistical_checks", report.statistical_checks);
  return report;
}

}  // namespace whart::verify
