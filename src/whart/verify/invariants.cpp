#include "whart/verify/invariants.hpp"

#include <cmath>
#include <sstream>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/markov/structure.hpp"

namespace whart::verify {

namespace {

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

std::vector<InvariantViolation> InvariantChecker::check(
    const hart::PathModelConfig& config,
    const std::vector<double>& availabilities) const {
  std::vector<InvariantViolation> out;
  const hart::PathModel model(config);
  const hart::SteadyStateLinks links{availabilities};

  check_chain(model.to_dtmc(links), config, out);

  const hart::PathTransientResult transient = model.analyze(links);
  const hart::PathMeasures measures = compute_path_measures(model, links);
  check_solution(transient, measures, out);
  check_cache(config, availabilities, measures, out);
  return out;
}

void InvariantChecker::check_chain(
    const markov::Dtmc& chain, const hart::PathModelConfig& config,
    std::vector<InvariantViolation>& out) const {
  const double row_residual = markov::max_row_sum_residual(chain);
  if (row_residual > options_.row_sum_tolerance)
    out.push_back({"row-stochastic",
                   "max |1 - row sum| = " + format_double(row_residual)});

  // The Is goals and Discard are absorbing; nothing else is.
  const std::size_t expected_absorbing = config.reporting_interval + 1;
  const std::vector<markov::StateIndex> absorbing = chain.absorbing_states();
  if (absorbing.size() != expected_absorbing)
    out.push_back({"absorbing-closure",
                   std::to_string(absorbing.size()) + " absorbing states, " +
                       std::to_string(expected_absorbing) + " expected"});

  // Probability mass under transient stepping: conserved at every step,
  // and fully absorbed by the end of the horizon (the chain discards at
  // the latest after effective_ttl steps).
  linalg::Vector distribution =
      markov::point_distribution(chain.num_states(), 0);
  double worst_mass = 0.0;
  for (std::uint32_t step = 0; step < config.horizon(); ++step) {
    distribution = chain.step(distribution);
    worst_mass = std::max(
        worst_mass, markov::distribution_mass_residual(distribution));
  }
  if (worst_mass > options_.mass_tolerance)
    out.push_back({"mass-conservation",
                   "max |1 - mass| over the horizon = " +
                       format_double(worst_mass)});

  double transient_mass = 0.0;
  {
    std::vector<bool> is_absorbing(chain.num_states(), false);
    for (markov::StateIndex s : absorbing) is_absorbing[s] = true;
    for (std::size_t s = 0; s < chain.num_states(); ++s)
      if (!is_absorbing[s]) transient_mass += distribution[s];
  }
  if (transient_mass > options_.mass_tolerance)
    out.push_back({"absorbing-closure",
                   "mass still transient after the horizon: " +
                       format_double(transient_mass)});
}

void InvariantChecker::check_solution(
    const hart::PathTransientResult& transient,
    const hart::PathMeasures& measures,
    std::vector<InvariantViolation>& out) const {
  // R + P(discard) = 1, with the discard mass computed by the solver
  // (not derived as 1 - R, which would hold trivially).
  double reachability = 0.0;
  for (double g : transient.cycle_probabilities) reachability += g;
  const double closure =
      std::abs(reachability + transient.discard_probability - 1.0);
  if (closure > options_.closure_tolerance)
    out.push_back({"reachability-closure",
                   "|R + P(discard) - 1| = " + format_double(closure)});

  // The delay distribution over received messages is a monotone,
  // normalized CDF (when anything is received at all).
  double cdf = 0.0;
  for (std::size_t i = 0; i < measures.delay_distribution.size(); ++i) {
    const double tau = measures.delay_distribution[i];
    if (tau < -options_.cdf_tolerance)
      out.push_back({"monotone-cdf", "tau(d_" + std::to_string(i + 1) +
                                         ") = " + format_double(tau)});
    cdf += tau;
  }
  if (measures.reachability > 0.0 &&
      std::abs(cdf - 1.0) > options_.cdf_tolerance)
    out.push_back(
        {"monotone-cdf", "sum tau = " + format_double(cdf) + ", not 1"});

  // Each goal's transient trajectory is non-decreasing in time (mass
  // only flows INTO an absorbing state).
  for (std::size_t t = 1; t < transient.goal_trajectory.size(); ++t)
    for (std::size_t i = 0; i < transient.goal_trajectory[t].size(); ++i)
      if (transient.goal_trajectory[t][i] <
          transient.goal_trajectory[t - 1][i] - options_.cdf_tolerance) {
        out.push_back({"monotone-cdf",
                       "goal " + std::to_string(i + 1) +
                           " trajectory decreases at t = " +
                           std::to_string(t)});
        t = transient.goal_trajectory.size();  // one finding is enough
        break;
      }
}

void InvariantChecker::check_cache(
    const hart::PathModelConfig& config,
    const std::vector<double>& availabilities, const hart::PathMeasures& cold,
    std::vector<InvariantViolation>& out) const {
  hart::PathAnalysisCache cache;
  (void)cache.measures(config, availabilities);          // miss: populate
  const hart::PathMeasures hit = cache.measures(config, availabilities);

  const auto mismatch = [&](const char* field, double a, double b) {
    // Bitwise contract: a cache hit reconstructs the cold solve exactly,
    // so plain equality (not a tolerance) is the specification.
    if (a != b && !(std::isnan(a) && std::isnan(b)))
      out.push_back({"cache-bitwise",
                     std::string(field) + ": cold " + format_double(a) +
                         " != hit " + format_double(b)});
  };
  if (hit.cycle_probabilities != cold.cycle_probabilities)
    out.push_back({"cache-bitwise", "cycle_probabilities differ"});
  mismatch("reachability", cold.reachability, hit.reachability);
  mismatch("discard_probability", cold.discard_probability,
           hit.discard_probability);
  mismatch("expected_delay_ms", cold.expected_delay_ms, hit.expected_delay_ms);
  mismatch("expected_transmissions", cold.expected_transmissions,
           hit.expected_transmissions);
  mismatch("utilization", cold.utilization, hit.utilization);
  mismatch("utilization_delivered", cold.utilization_delivered,
           hit.utilization_delivered);
  mismatch("delay_jitter_ms", cold.delay_jitter_ms, hit.delay_jitter_ms);
}

std::vector<InvariantViolation> InvariantChecker::check_network(
    const hart::NetworkMeasures& measures) const {
  std::vector<InvariantViolation> out;
  if (measures.per_path.empty()) return out;

  double delay_sum = 0.0;
  double utilization = 0.0;
  double utilization_delivered = 0.0;
  std::size_t worst_delay = 0;
  std::size_t worst_reach = 0;
  for (std::size_t p = 0; p < measures.per_path.size(); ++p) {
    const hart::PathMeasures& path = measures.per_path[p];
    delay_sum += path.expected_delay_ms;
    utilization += path.utilization;
    utilization_delivered += path.utilization_delivered;
    if (path.expected_delay_ms >
        measures.per_path[worst_delay].expected_delay_ms)
      worst_delay = p;
    if (path.reachability < measures.per_path[worst_reach].reachability)
      worst_reach = p;
  }

  const double count = static_cast<double>(measures.per_path.size());
  if (std::abs(measures.mean_delay_ms - delay_sum / count) > 1e-12)
    out.push_back({"aggregate-decomposition",
                   "mean delay " + format_double(measures.mean_delay_ms) +
                       " != per-path average " +
                       format_double(delay_sum / count)});
  if (std::abs(measures.network_utilization - utilization) > 1e-12)
    out.push_back({"aggregate-decomposition",
                   "network utilization does not sum over paths"});
  if (std::abs(measures.network_utilization_delivered -
               utilization_delivered) > 1e-12)
    out.push_back({"aggregate-decomposition",
                   "delivered utilization does not sum over paths"});
  if (measures.per_path[measures.bottleneck_by_delay].expected_delay_ms !=
      measures.per_path[worst_delay].expected_delay_ms)
    out.push_back({"aggregate-decomposition",
                   "bottleneck_by_delay is not the argmax path"});
  if (measures.per_path[measures.bottleneck_by_reachability].reachability !=
      measures.per_path[worst_reach].reachability)
    out.push_back({"aggregate-decomposition",
                   "bottleneck_by_reachability is not the argmin path"});
  return out;
}

}  // namespace whart::verify
