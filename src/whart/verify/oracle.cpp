#include "whart/verify/oracle.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "whart/common/contracts.hpp"
#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/sim/stats.hpp"
#include "whart/verify/bounds.hpp"
#include "whart/verify/reference_solver.hpp"

namespace whart::verify {

namespace {

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// Relative agreement of two exact solvers.
bool close(double a, double b, double tolerance) {
  return std::abs(a - b) <=
         tolerance * std::max({1.0, std::abs(a), std::abs(b)});
}

/// The production leg of one path, after any injection.
struct ProductionLeg {
  hart::PathMeasures measures;
  /// Discard mass as computed by the solver (NOT derived as 1 - R), the
  /// quantity the closure check and the discard comparisons use.
  double discard = 0.0;
  std::vector<double> transmissions_per_hop;
  double transmissions_delivered = 0.0;
};

ProductionLeg solve_production(const hart::PathModelConfig& config,
                               std::vector<double> availabilities,
                               Injection injection) {
  if (injection == Injection::kLinkBias)
    for (double& a : availabilities) a = std::min(1.0, a + 0.05);

  const hart::PathModel model(config);
  const hart::SteadyStateLinks links{availabilities};
  hart::PathTransientResult transient = model.analyze(links);

  if (injection == Injection::kCycleShift &&
      transient.cycle_probabilities.size() > 1)
    std::rotate(transient.cycle_probabilities.rbegin(),
                transient.cycle_probabilities.rbegin() + 1,
                transient.cycle_probabilities.rend());

  ProductionLeg leg;
  leg.discard = transient.discard_probability *
                (injection == Injection::kDiscardLeak ? 0.875 : 1.0);
  leg.transmissions_per_hop = transient.expected_transmissions_per_hop;
  leg.transmissions_delivered = transient.expected_transmissions_delivered;
  leg.measures =
      measures_from_cycles(config, std::move(transient.cycle_probabilities),
                           transient.expected_transmissions);
  leg.measures.utilization_delivered =
      transient.expected_transmissions_delivered /
      (static_cast<double>(config.reporting_interval) *
       config.superframe.uplink_slots);
  return leg;
}

/// The channel-enlarged production leg of one path.  kChannelStateLeak
/// corrupts this leg (and only this leg).
ProductionLeg solve_production_channel(
    const hart::PathModelConfig& config,
    const std::vector<link::ChannelModel>& channels, Injection injection,
    hart::TransientKernel kernel) {
  const hart::PathModel model(config);
  const hart::ChannelLinks links{channels};
  hart::PathAnalysisOptions options;
  options.kernel = kernel;
  options.inject_channel_state_leak =
      injection == Injection::kChannelStateLeak;
  hart::PathTransientResult transient = model.analyze(links, options);

  ProductionLeg leg;
  leg.discard = transient.discard_probability;
  leg.transmissions_per_hop = transient.expected_transmissions_per_hop;
  leg.transmissions_delivered = transient.expected_transmissions_delivered;
  leg.measures =
      measures_from_cycles(config, std::move(transient.cycle_probabilities),
                           transient.expected_transmissions);
  leg.measures.utilization_delivered =
      transient.expected_transmissions_delivered /
      (static_cast<double>(config.reporting_interval) *
       config.superframe.uplink_slots);
  leg.measures.diagnostics = transient.diagnostics;
  return leg;
}

}  // namespace

OracleReport cross_validate(const Scenario& input_scenario,
                            const OracleConfig& config) {
  // kChannelStateLeak corrupts the channel leg, so the self-test must
  // guarantee that leg runs and that the leak is observable in every
  // scenario: override the overlay with a fixed slow-mixing chain
  // (|lambda_2| = 0.85, so the leaked state survives even a 40-slot
  // cycle well above the deterministic tolerance — a fast generated
  // chain can forget the leak between attempts), force at least two
  // cycles so hops can retry, and drop any TTL (with TTL = 1 a failed
  // attempt discards and the leaked memory is never consulted).
  Scenario scenario = input_scenario;
  if (config.injection == Injection::kChannelStateLeak) {
    scenario.channel =
        link::ChannelModel::gilbert_elliott(0.05, 0.1, 0.02, 0.65);
    scenario.reporting_interval =
        std::max<std::uint32_t>(scenario.reporting_interval, 2);
    scenario.ttl.reset();
  }
  // kStaleProductRow corrupts the cycle product the incremental leg
  // propagates; with a single-cycle interval the transient never applies
  // the product, so the self-test forces retries to exist (mirroring the
  // channel-leak forcing above).
  if (config.injection == Injection::kStaleProductRow) {
    scenario.reporting_interval =
        std::max<std::uint32_t>(scenario.reporting_interval, 2);
    scenario.ttl.reset();
  }
  scenario.validate();
  OracleReport report;

  std::vector<ProductionLeg> production;
  production.reserve(scenario.path_count());
  std::vector<ProductionLeg> channel_production;

  const auto add_finding = [&](std::size_t path, std::string check,
                               std::string detail) {
    report.findings.push_back(
        {path, std::move(check), std::move(detail)});
  };

  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const hart::PathModelConfig path_config = scenario.path_config(p);
    const std::vector<double> availabilities = scenario.hop_availabilities(p);
    production.push_back(
        solve_production(path_config, availabilities, config.injection));
    const ProductionLeg& prod = production.back();

    // Closure: R + P(discard) = 1 with the solver's own discard mass.
    const double closure =
        std::abs(prod.measures.reachability + prod.discard - 1.0);
    if (closure > config.deterministic_tolerance)
      add_finding(p, "closure:reachability-discard",
                  "|R + P(discard) - 1| = " + format_double(closure));

    // Reference leg: the naive dense solver, on the TRUE availabilities.
    const ReferenceResult ref = reference_solve(path_config, availabilities);
    const auto compare = [&](const char* field, double prod_value,
                             double ref_value) {
      if (!close(prod_value, ref_value, config.deterministic_tolerance))
        add_finding(p, std::string("reference:") + field,
                    "production " + format_double(prod_value) +
                        " vs reference " + format_double(ref_value));
    };
    for (std::size_t i = 0; i < ref.cycle_probabilities.size(); ++i)
      compare(("g(" + std::to_string(i + 1) + ")").c_str(),
              prod.measures.cycle_probabilities[i],
              ref.cycle_probabilities[i]);
    compare("reachability", prod.measures.reachability, ref.reachability);
    compare("discard", prod.discard, ref.discard_probability);
    compare("expected_delay_ms", prod.measures.expected_delay_ms,
            ref.expected_delay_ms);
    compare("delay_jitter_ms", prod.measures.delay_jitter_ms,
            ref.delay_jitter_ms);
    compare("expected_transmissions", prod.measures.expected_transmissions,
            ref.expected_transmissions);
    compare("transmissions_delivered", prod.transmissions_delivered,
            ref.expected_transmissions_delivered);
    compare("utilization", prod.measures.utilization, ref.utilization);
    for (std::size_t h = 0; h < ref.expected_transmissions_per_hop.size(); ++h)
      compare(("transmissions_hop" + std::to_string(h)).c_str(),
              prod.transmissions_per_hop[h],
              ref.expected_transmissions_per_hop[h]);

    // Kernel leg: the superframe-product collapse on the TRUE
    // availabilities, against the same reference.  Steady-state links are
    // cycle-stationary, so the collapse must actually run — a per-slot
    // fallback here would silently bypass the arm under test.
    {
      hart::PathAnalysisOptions kernel_options;
      kernel_options.kernel = hart::TransientKernel::kSuperframeProduct;
      if (config.injection == Injection::kProductEntry)
        kernel_options.inject_product_error = 1e-3;
      const hart::PathModel model(path_config);
      const hart::SteadyStateLinks links{availabilities};
      const hart::PathTransientResult kern =
          model.analyze(links, kernel_options);
      if (kern.diagnostics.kernel !=
          hart::TransientKernel::kSuperframeProduct)
        add_finding(p, "closure:kernel-dispatch",
                    "superframe kernel fell back to per-slot on "
                    "cycle-stationary links");
      const auto compare_kernel = [&](const std::string& field,
                                      double kern_value, double ref_value) {
        if (!close(kern_value, ref_value, config.deterministic_tolerance))
          add_finding(p, "kernel:" + field,
                      "kernel " + format_double(kern_value) +
                          " vs reference " + format_double(ref_value));
      };
      for (std::size_t i = 0; i < ref.cycle_probabilities.size(); ++i)
        compare_kernel("g(" + std::to_string(i + 1) + ")",
                       kern.cycle_probabilities[i],
                       ref.cycle_probabilities[i]);
      compare_kernel("discard", kern.discard_probability,
                     ref.discard_probability);
      compare_kernel("expected_transmissions", kern.expected_transmissions,
                     ref.expected_transmissions);
      compare_kernel("transmissions_delivered",
                     kern.expected_transmissions_delivered,
                     ref.expected_transmissions_delivered);
      for (std::size_t h = 0; h < ref.expected_transmissions_per_hop.size();
           ++h)
        compare_kernel("transmissions_hop" + std::to_string(h),
                       kern.expected_transmissions_per_hop[h],
                       ref.expected_transmissions_per_hop[h]);
    }

    // Refill leg: the symbolic/numeric split's promise is bitwise, not
    // within-tolerance — a skeleton refill replays the exact arithmetic
    // of a fresh build.  Each kernel runs twice: cold (the workspace is
    // primed and every buffer allocated) and warm (pure value refill
    // into retained buffers), both compared bit for bit against the
    // fresh solve.  kStaleSkeletonValue corrupts only this leg.
    {
      const hart::PathModel model(path_config);
      const hart::PathModelSkeleton skeleton(path_config);
      const hart::SteadyStateLinks links{availabilities};
      hart::SolveWorkspace workspace;
      hart::PathTransientResult refilled;
      for (const hart::TransientKernel kernel :
           {hart::TransientKernel::kPerSlot,
            hart::TransientKernel::kSuperframeProduct}) {
        hart::PathAnalysisOptions options;
        options.kernel = kernel;
        const hart::PathTransientResult fresh = model.analyze(links, options);
        hart::PathAnalysisOptions refill_options = options;
        if (config.injection == Injection::kStaleSkeletonValue)
          refill_options.inject_stale_skeleton = 1e-6;
        const std::string kernel_tag =
            kernel == hart::TransientKernel::kSuperframeProduct
                ? "superframe"
                : "per-slot";
        for (const char* pass : {"cold", "warm"}) {
          skeleton.analyze_into(links, refill_options, workspace, refilled);
          const auto compare_bits = [&](const std::string& field,
                                        double fresh_value,
                                        double refill_value) {
            if (std::bit_cast<std::uint64_t>(fresh_value) !=
                std::bit_cast<std::uint64_t>(refill_value))
              add_finding(p,
                          "refill:" + kernel_tag + ":" + pass + ":" + field,
                          "fresh " + format_double(fresh_value) +
                              " vs refill " + format_double(refill_value));
          };
          for (std::size_t i = 0; i < fresh.cycle_probabilities.size(); ++i)
            compare_bits("g(" + std::to_string(i + 1) + ")",
                         fresh.cycle_probabilities[i],
                         refilled.cycle_probabilities[i]);
          compare_bits("discard", fresh.discard_probability,
                       refilled.discard_probability);
          compare_bits("expected_transmissions", fresh.expected_transmissions,
                       refilled.expected_transmissions);
          compare_bits("transmissions_delivered",
                       fresh.expected_transmissions_delivered,
                       refilled.expected_transmissions_delivered);
          for (std::size_t h = 0;
               h < fresh.expected_transmissions_per_hop.size(); ++h)
            compare_bits("transmissions_hop" + std::to_string(h),
                         fresh.expected_transmissions_per_hop[h],
                         refilled.expected_transmissions_per_hop[h]);
          if (fresh.goal_trajectory.size() != refilled.goal_trajectory.size()) {
            add_finding(p, "refill:" + kernel_tag + ":" + pass + ":trajectory",
                        "fresh " +
                            std::to_string(fresh.goal_trajectory.size()) +
                            " trajectory entries vs refill " +
                            std::to_string(refilled.goal_trajectory.size()));
          } else {
            for (std::size_t t = 0; t < fresh.goal_trajectory.size(); ++t) {
              if (fresh.goal_trajectory[t].size() !=
                  refilled.goal_trajectory[t].size()) {
                add_finding(
                    p,
                    "refill:" + kernel_tag + ":" + pass + ":trajectory",
                    "entry " + std::to_string(t) + " size mismatch");
                continue;
              }
              for (std::size_t s = 0; s < fresh.goal_trajectory[t].size(); ++s)
                compare_bits("trajectory(" + std::to_string(t) + "," +
                                 std::to_string(s) + ")",
                             fresh.goal_trajectory[t][s],
                             refilled.goal_trajectory[t][s]);
            }
          }
        }
      }
    }

    // Batch leg: the SoA lane-parallel refill (DESIGN.md §13).  Lane 0
    // carries the scenario's true availabilities; lanes 1..3 deform them
    // strictly into (0, 1), so the batch always holds distinct
    // non-degenerate lanes and a cross-lane swap is always observable.
    // Each lane must reproduce its own fresh scalar superframe solve to
    // 1e-12 relative — bitwise is not promised here, because the SIMD
    // backend may contract multiply-adds differently from the scalar
    // build.  kLaneSwap corrupts only this leg.
    {
      constexpr std::size_t kLanes = 4;
      constexpr double kLaneTolerance = 1e-12;
      const hart::PathModel model(path_config);
      const hart::PathModelSkeleton skeleton(path_config);
      std::vector<hart::SteadyStateLinks> lane_links;
      lane_links.reserve(kLanes);
      for (std::size_t j = 0; j < kLanes; ++j) {
        std::vector<double> lane_avail = availabilities;
        if (j > 0) {
          const double blend = 0.1 * static_cast<double>(j);
          for (double& a : lane_avail)
            a = a * (1.0 - blend) + 0.5 * blend +
                0.001 * static_cast<double>(j);
        }
        lane_links.emplace_back(lane_avail);
      }
      std::vector<const hart::LinkProbabilityProvider*> providers;
      providers.reserve(kLanes);
      for (const hart::SteadyStateLinks& lane : lane_links)
        providers.push_back(&lane);
      hart::PathAnalysisOptions batch_options;
      batch_options.kernel = hart::TransientKernel::kSuperframeProduct;
      batch_options.batch_lanes = kLanes;
      batch_options.inject_lane_swap =
          config.injection == Injection::kLaneSwap;
      hart::BatchSolveWorkspace batch_workspace;
      std::vector<hart::PathTransientResult> batched(kLanes);
      skeleton.analyze_batch_into(providers, batch_options, batch_workspace,
                                  batched);
      hart::PathAnalysisOptions lane_options;
      lane_options.kernel = hart::TransientKernel::kSuperframeProduct;
      for (std::size_t j = 0; j < kLanes; ++j) {
        const hart::PathTransientResult fresh =
            model.analyze(lane_links[j], lane_options);
        const auto compare_lane = [&](const std::string& field,
                                      double fresh_value,
                                      double lane_value) {
          if (!close(fresh_value, lane_value, kLaneTolerance))
            add_finding(p, "batch:lane" + std::to_string(j) + ":" + field,
                        "fresh " + format_double(fresh_value) + " vs lane " +
                            format_double(lane_value));
        };
        for (std::size_t i = 0; i < fresh.cycle_probabilities.size(); ++i)
          compare_lane("g(" + std::to_string(i + 1) + ")",
                       fresh.cycle_probabilities[i],
                       batched[j].cycle_probabilities[i]);
        compare_lane("discard", fresh.discard_probability,
                     batched[j].discard_probability);
        compare_lane("expected_transmissions", fresh.expected_transmissions,
                     batched[j].expected_transmissions);
        compare_lane("transmissions_delivered",
                     fresh.expected_transmissions_delivered,
                     batched[j].expected_transmissions_delivered);
        for (std::size_t h = 0;
             h < fresh.expected_transmissions_per_hop.size(); ++h)
          compare_lane("transmissions_hop" + std::to_string(h),
                       fresh.expected_transmissions_per_hop[h],
                       batched[j].expected_transmissions_per_hop[h]);
      }
    }

    // Incremental leg: the what-if engine's targeted Gustavson row
    // replay (markov::IncrementalProduct, DESIGN.md §15).  The leg
    // seeds a baseline cycle product from sanitized availabilities
    // (clamped strictly into (0, 1), so the incremental path never
    // declines on a degenerate firing probability — the leg asserts
    // incremental-vs-fresh equivalence and may pick its own probe
    // values), then perturbs each hop in isolation, re-solves through
    // analyze_incremental_into (only the dirty product rows replayed)
    // and compares against a fresh solve of the perturbed chain.  Under
    // kPerSlot the incremental path declines by contract and the
    // cached-skeleton fallback the what-if engine would take is held to
    // the same bound.  kStaleProductRow corrupts only this leg.
    {
      constexpr double kIncrementalTolerance = 1e-12;
      const hart::PathModel model(path_config);
      const hart::PathModelSkeleton skeleton(path_config);
      std::vector<double> base = availabilities;
      for (double& a : base) a = std::clamp(a, 0.02, 0.98);
      const hart::SteadyStateLinks base_links{base};
      for (const hart::TransientKernel kernel :
           {hart::TransientKernel::kPerSlot,
            hart::TransientKernel::kSuperframeProduct}) {
        const bool superframe =
            kernel == hart::TransientKernel::kSuperframeProduct;
        const std::string tag =
            superframe ? "incremental:superframe" : "incremental:per-slot";
        hart::PathAnalysisOptions options;
        options.kernel = kernel;
        if (config.injection == Injection::kStaleProductRow)
          options.inject_stale_product_row = 1e-6;
        hart::PathAnalysisOptions fresh_options;
        fresh_options.kernel = kernel;
        markov::IncrementalProduct product(skeleton.chain(),
                                           skeleton.slot_patterns());
        hart::SolveWorkspace workspace;
        hart::PathTransientResult incremental;
        const bool seeded = skeleton.analyze_incremental_into(
            base_links, options, {}, product, workspace, incremental);
        if (superframe && !seeded) {
          add_finding(p, "closure:incremental-dispatch",
                      "incremental seed declined on cycle-stationary links");
          continue;
        }
        for (std::size_t h = 0; h < base.size(); ++h) {
          std::vector<double> perturbed = base;
          perturbed[h] = 0.5 * base[h] + 0.25;  // stays inside (0, 1)
          if (perturbed[h] == base[h]) perturbed[h] += 0.01;
          const hart::SteadyStateLinks links{perturbed};
          const std::size_t changed[] = {h};
          bool solved = false;
          if (seeded)
            solved = skeleton.analyze_incremental_into(
                links, options, changed, product, workspace, incremental);
          if (superframe && !solved) {
            add_finding(
                p, "closure:incremental-dispatch",
                "incremental solve declined on hop " + std::to_string(h));
            break;
          }
          if (!solved)
            skeleton.analyze_into(links, options, workspace, incremental);
          const hart::PathTransientResult fresh =
              model.analyze(links, fresh_options);
          const auto compare_incremental = [&](const std::string& field,
                                               double fresh_value,
                                               double incremental_value) {
            if (!close(fresh_value, incremental_value, kIncrementalTolerance))
              add_finding(p, tag + ":hop" + std::to_string(h) + ":" + field,
                          "fresh " + format_double(fresh_value) +
                              " vs incremental " +
                              format_double(incremental_value));
          };
          for (std::size_t i = 0; i < fresh.cycle_probabilities.size(); ++i)
            compare_incremental("g(" + std::to_string(i + 1) + ")",
                                fresh.cycle_probabilities[i],
                                incremental.cycle_probabilities[i]);
          compare_incremental("discard", fresh.discard_probability,
                              incremental.discard_probability);
          compare_incremental("expected_transmissions",
                              fresh.expected_transmissions,
                              incremental.expected_transmissions);
          compare_incremental("transmissions_delivered",
                              fresh.expected_transmissions_delivered,
                              incremental.expected_transmissions_delivered);
          for (std::size_t hh = 0;
               hh < fresh.expected_transmissions_per_hop.size(); ++hh)
            compare_incremental("transmissions_hop" + std::to_string(hh),
                                fresh.expected_transmissions_per_hop[hh],
                                incremental.expected_transmissions_per_hop[hh]);
          // Restore the baseline product state so the next hop's
          // perturbation is isolated (targeted replay, no fresh seed).
          if (seeded)
            skeleton.analyze_incremental_into(base_links, options, changed,
                                              product, workspace, incremental);
        }
      }
    }

    // Channel leg: the enlarged-state-space solver under the scenario's
    // correlated-channel overlay, both kernels, against the independent
    // dense channel reference.  kChannelStateLeak corrupts only this
    // leg.
    if (scenario.channel.has_value()) {
      const std::vector<link::ChannelModel> channels =
          scenario.hop_channels(p);
      std::size_t enlarged = 0;
      for (const link::ChannelModel& c : channels)
        enlarged += c.state_count();
      const ReferenceResult channel_ref =
          reference_solve_channel(path_config, channels);
      for (const hart::TransientKernel kernel :
           {hart::TransientKernel::kPerSlot,
            hart::TransientKernel::kSuperframeProduct}) {
        const std::string tag =
            kernel == hart::TransientKernel::kSuperframeProduct
                ? "channel-superframe"
                : "channel-per-slot";
        const ProductionLeg leg = solve_production_channel(
            path_config, channels, config.injection, kernel);
        // The enlarged solver must actually have dispatched: its
        // transient state count is the sum of the hops' channel sizes,
        // not the hop count of the compact chain.
        if (!leg.measures.diagnostics.has_value() ||
            leg.measures.diagnostics->transient_states != enlarged)
          add_finding(p, "closure:" + tag + "-dispatch",
                      "expected " + std::to_string(enlarged) +
                          " enlarged transient states");
        const double closure =
            std::abs(leg.measures.reachability + leg.discard - 1.0);
        if (closure > config.deterministic_tolerance)
          add_finding(p, "closure:" + tag + ":reachability-discard",
                      "|R + P(discard) - 1| = " + format_double(closure));
        const auto compare_channel = [&](const std::string& field,
                                         double prod_value,
                                         double ref_value) {
          if (!close(prod_value, ref_value, config.deterministic_tolerance))
            add_finding(p, tag + ":" + field,
                        "production " + format_double(prod_value) +
                            " vs channel reference " +
                            format_double(ref_value));
        };
        for (std::size_t i = 0; i < channel_ref.cycle_probabilities.size();
             ++i)
          compare_channel("g(" + std::to_string(i + 1) + ")",
                          leg.measures.cycle_probabilities[i],
                          channel_ref.cycle_probabilities[i]);
        compare_channel("reachability", leg.measures.reachability,
                        channel_ref.reachability);
        compare_channel("discard", leg.discard,
                        channel_ref.discard_probability);
        compare_channel("expected_delay_ms", leg.measures.expected_delay_ms,
                        channel_ref.expected_delay_ms);
        compare_channel("expected_transmissions",
                        leg.measures.expected_transmissions,
                        channel_ref.expected_transmissions);
        compare_channel("transmissions_delivered",
                        leg.transmissions_delivered,
                        channel_ref.expected_transmissions_delivered);
        for (std::size_t h = 0;
             h < channel_ref.expected_transmissions_per_hop.size(); ++h)
          compare_channel("transmissions_hop" + std::to_string(h),
                          leg.transmissions_per_hop[h],
                          channel_ref.expected_transmissions_per_hop[h]);
        if (kernel == hart::TransientKernel::kPerSlot)
          channel_production.push_back(leg);
      }
    }
  }

  // Simulator leg.  Retry slots cannot be expressed in a net::Schedule,
  // so such scenarios are checked by the deterministic legs only.
  if (!config.run_simulation || scenario.has_retry_slots()) return report;

  BuiltScenario built = build_network(scenario);
  sim::SimulatorConfig sim_config;
  sim_config.superframe = scenario.superframe;
  sim_config.reporting_interval = scenario.reporting_interval;
  sim_config.intervals = config.sim_intervals;
  // Decorrelate the simulation stream from the generation stream.
  std::uint64_t seed_state = scenario.seed ^ 0x5EEDFACE5EEDFACEULL;
  sim_config.seed = numeric::splitmix64(seed_state);
  sim_config.ttl = scenario.ttl;
  // A channel overlay switches the simulator to the kChannel regime: the
  // empirical draws then come from the very chains the channel leg
  // solved, and the statistical comparison targets that leg.
  const bool channel_sim = scenario.channel.has_value();
  sim_config.regime = channel_sim ? sim::LinkRegime::kChannel : config.regime;
  if (channel_sim) sim_config.channel = scenario.channel;
  sim_config.shards = config.sim_shards;
  sim_config.threads = config.sim_threads;

  const sim::NetworkSimulator simulator(built.network, built.paths,
                                        built.schedule, sim_config);
  const sim::SimulationReport sim_report = simulator.run();
  report.simulated = true;

  const double z = z_for_delta(config.per_check_delta);
  for (std::size_t p = 0; p < scenario.path_count(); ++p) {
    const ProductionLeg& prod =
        channel_sim ? channel_production[p] : production[p];
    const sim::PathStatistics& stats = sim_report.per_path[p];
    const std::uint64_t n = stats.messages;

    // The interval endpoints are themselves floating-point results with
    // ~1e-16 relative error (at p-hat = 1 the Wilson upper bound rounds
    // to 1 - 1e-16, excluding an analytic value of exactly 1.0), so
    // membership is tested with a small absolute slack — negligible
    // against any real statistical radius.
    constexpr double kBoundarySlack = 1e-12;
    const auto check_proportion = [&](const std::string& field,
                                      std::uint64_t successes,
                                      double analytic) {
      ++report.statistical_checks;
      const sim::Interval ci = sim::wilson_interval(successes, n, z);
      if (analytic < ci.low - kBoundarySlack ||
          analytic > ci.high + kBoundarySlack)
        add_finding(p, "simulator:" + field,
                    "analytic " + format_double(analytic) + " outside [" +
                        format_double(ci.low) + ", " + format_double(ci.high) +
                        "] from " + std::to_string(successes) + "/" +
                        std::to_string(n) + " samples");
    };

    std::uint64_t delivered = 0;
    for (std::uint64_t d : stats.delivered_per_cycle) delivered += d;
    check_proportion("reachability", delivered, prod.measures.reachability);
    check_proportion("discard", stats.discarded, prod.discard);
    for (std::size_t i = 0; i < stats.delivered_per_cycle.size(); ++i)
      check_proportion("g(" + std::to_string(i + 1) + ")",
                       stats.delivered_per_cycle[i],
                       prod.measures.cycle_probabilities[i]);

    // Mean delay over delivered messages: Hoeffding, with the sample
    // range bounded by the delay spread of the Is possible cycles.
    if (delivered > 0 && prod.measures.reachability > 0.0) {
      const double range = prod.measures.delays_ms.back() -
                           prod.measures.delays_ms.front();
      const double gap =
          std::abs(stats.delay_ms.mean() - prod.measures.expected_delay_ms);
      if (range > 0.0) {
        ++report.statistical_checks;
        const double radius =
            hoeffding_radius(delivered, config.per_check_delta, range);
        if (gap > radius)
          add_finding(p, "simulator:expected_delay_ms",
                      "empirical " + format_double(stats.delay_ms.mean()) +
                          " vs analytic " +
                          format_double(prod.measures.expected_delay_ms) +
                          ", Hoeffding radius " + format_double(radius));
      } else if (gap > 1e-9 * std::max(1.0, prod.measures.expected_delay_ms)) {
        // Is = 1: every delivery has the same deterministic delay.
        add_finding(p, "simulator:expected_delay_ms",
                    "single-cycle delay mismatch: empirical " +
                        format_double(stats.delay_ms.mean()) + " vs " +
                        format_double(prod.measures.expected_delay_ms));
      }
    }

    // Attempts per message: bounded by the path's transmission
    // opportunities per interval, so Hoeffding applies.
    {
      ++report.statistical_checks;
      const double opportunities =
          static_cast<double>(scenario.paths[p].hop_count()) *
          scenario.reporting_interval;
      const double empirical =
          static_cast<double>(stats.transmissions) / static_cast<double>(n);
      const double radius =
          hoeffding_radius(n, config.per_check_delta, opportunities);
      if (std::abs(empirical - prod.measures.expected_transmissions) > radius)
        add_finding(p, "simulator:expected_transmissions",
                    "empirical " + format_double(empirical) +
                        " vs analytic " +
                        format_double(prod.measures.expected_transmissions) +
                        ", Hoeffding radius " + format_double(radius));
    }
  }
  return report;
}

}  // namespace whart::verify
