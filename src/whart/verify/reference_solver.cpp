#include "whart/verify/reference_solver.hpp"

#include <cmath>
#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/phy/frame.hpp"

namespace whart::verify {

namespace {

/// Independent reimplementation of the schedule lookup: which hop (if
/// any) has a transmission opportunity in global uplink slot `slot`
/// (1-based, counted across cycles).  Returns hops when none does.
std::size_t firing_hop(const hart::PathModelConfig& config,
                       std::uint32_t slot) {
  const std::uint32_t in_frame =
      ((slot - 1) % config.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config.hop_slots.size(); ++h)
    if (config.hop_slots[h] == in_frame) return h;
  for (std::size_t h = 0; h < config.retry_slots.size(); ++h)
    if (config.retry_slots[h] != 0 && config.retry_slots[h] == in_frame)
      return h;
  return config.hop_slots.size();
}

/// Paper Eqs. 6-11 from the absorbed masses, straight-line (shared by
/// the availability and channel solvers — identical formulas).
void finish_measures(const hart::PathModelConfig& config,
                     ReferenceResult& result) {
  const std::uint32_t cycles = config.reporting_interval;
  for (std::uint32_t i = 0; i < cycles; ++i)      // Eq. 6
    result.reachability += result.cycle_probabilities[i];

  const double cycle_ms = config.superframe.cycle_milliseconds();
  for (std::uint32_t i = 0; i < cycles; ++i) {
    const double d_i =                            // Eq. 7
        config.gateway_slot() * phy::kSlotMilliseconds + i * cycle_ms;
    result.delays_ms.push_back(d_i);
    const double tau_i =                          // Eq. 8
        result.reachability > 0.0
            ? result.cycle_probabilities[i] / result.reachability
            : 0.0;
    result.delay_distribution.push_back(tau_i);
    result.expected_delay_ms += d_i * tau_i;      // Eq. 9
  }

  result.utilization =                            // Eq. 10
      result.expected_transmissions /
      (static_cast<double>(cycles) * config.superframe.uplink_slots);
  result.expected_intervals_to_first_loss =       // Eq. 11
      1.0 - result.reachability > 0.0
          ? 1.0 / (1.0 - result.reachability)
          : std::numeric_limits<double>::infinity();

  double second_moment = 0.0;
  for (std::uint32_t i = 0; i < cycles; ++i)
    second_moment += result.delays_ms[i] * result.delays_ms[i] *
                     result.delay_distribution[i];
  const double variance =
      second_moment - result.expected_delay_ms * result.expected_delay_ms;
  result.delay_jitter_ms = variance > 0.0 ? std::sqrt(variance) : 0.0;
}

}  // namespace

ReferenceResult reference_solve(const hart::PathModelConfig& config,
                                const std::vector<double>& availabilities) {
  const std::size_t hops = config.hop_count();
  expects(hops >= 1, "at least one hop");
  expects(availabilities.size() >= hops, "one availability per hop");
  for (std::size_t h = 0; h < hops; ++h)
    expects(availabilities[h] >= 0.0 && availabilities[h] <= 1.0,
            "availability in [0, 1]");

  const std::uint32_t horizon = config.horizon();
  const std::uint32_t ttl = config.effective_ttl();
  const std::uint32_t cycles = config.reporting_interval;

  // Full rectangular grid: state (t, h) -> t * hops + h for t in
  // [0, ttl), then Is goal states, then Discard.  No reachability
  // pruning — unreachable states simply keep probability zero.
  const std::size_t num_transient = static_cast<std::size_t>(ttl) * hops;
  const std::size_t n = num_transient + cycles + 1;
  const auto grid = [&](std::uint32_t t, std::size_t h) {
    return static_cast<std::size_t>(t) * hops + h;
  };
  const auto goal = [&](std::uint32_t cycle_0based) {
    return num_transient + cycle_0based;
  };
  const std::size_t discard = n - 1;

  // Dense row-major one-step matrix.  The chain is layered in t, so one
  // time-homogeneous matrix covers the whole horizon.
  std::vector<double> matrix(n * n, 0.0);
  const auto at = [&](std::size_t row, std::size_t col) -> double& {
    return matrix[row * n + col];
  };
  for (std::uint32_t t = 0; t < ttl; ++t) {
    const std::uint32_t slot = t + 1;  // transition t -> t+1 is slot t+1
    const std::size_t firing = firing_hop(config, slot);
    const bool expires = slot == ttl;
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t from = grid(t, h);
      const std::size_t stay = expires ? discard : grid(t + 1, h);
      if (firing == h) {
        const double ps = availabilities[h];
        const std::size_t advance =
            h + 1 == hops
                ? goal((slot - 1) / config.superframe.uplink_slots)
                : (expires ? discard : grid(t + 1, h + 1));
        at(from, advance) += ps;
        at(from, stay) += 1.0 - ps;
      } else {
        at(from, stay) += 1.0;
      }
    }
  }
  for (std::uint32_t i = 0; i < cycles; ++i) at(goal(i), goal(i)) = 1.0;
  at(discard, discard) = 1.0;

  // Backward pass for delivered-message attempt accounting:
  // beta[s] = P(eventual absorption in any goal | state s), computed by
  // iterating beta <- P beta from the absorbing boundary.  The chain is
  // layered, so ttl iterations reach the exact fixpoint.
  std::vector<double> beta(n, 0.0);
  for (std::uint32_t i = 0; i < cycles; ++i) beta[goal(i)] = 1.0;
  for (std::uint32_t iter = 0; iter < ttl; ++iter) {
    std::vector<double> next(n, 0.0);
    for (std::size_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (std::size_t col = 0; col < n; ++col)
        sum += at(row, col) * beta[col];
      next[row] = sum;
    }
    for (std::uint32_t i = 0; i < cycles; ++i) next[goal(i)] = 1.0;
    next[discard] = 0.0;
    beta = std::move(next);
  }

  ReferenceResult result;
  result.state_count = n;
  result.cycle_probabilities.assign(cycles, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);

  // Forward pass: dense vector-matrix products, one per uplink slot.
  std::vector<double> dist(n, 0.0);
  dist[grid(0, 0)] = 1.0;
  for (std::uint32_t slot = 1; slot <= horizon; ++slot) {
    if (slot <= ttl) {
      const std::size_t firing = firing_hop(config, slot);
      if (firing < hops) {
        const double mass = dist[grid(slot - 1, firing)];
        result.expected_transmissions += mass;
        result.expected_transmissions_per_hop[firing] += mass;
        result.expected_transmissions_delivered +=
            mass * beta[grid(slot - 1, firing)];
      }
    }
    std::vector<double> next(n, 0.0);
    for (std::size_t row = 0; row < n; ++row) {
      const double mass = dist[row];
      if (mass == 0.0) continue;
      for (std::size_t col = 0; col < n; ++col)
        next[col] += mass * at(row, col);
    }
    dist = std::move(next);
  }

  for (std::uint32_t i = 0; i < cycles; ++i)
    result.cycle_probabilities[i] = dist[goal(i)];
  result.discard_probability = dist[discard];

  finish_measures(config, result);
  return result;
}

ReferenceResult reference_solve_channel(
    const hart::PathModelConfig& config,
    const std::vector<link::ChannelModel>& channels) {
  const std::size_t hops = config.hop_count();
  expects(hops >= 1, "at least one hop");
  expects(channels.size() >= hops, "one channel per hop");

  const std::uint32_t ttl = config.effective_ttl();
  const std::uint32_t cycles = config.reporting_interval;
  const std::uint32_t fup = config.superframe.uplink_slots;
  const std::uint32_t cycle_slots = config.superframe.cycle_slots();

  // Per-hop channel block offsets inside one uplink layer.
  std::vector<std::size_t> off(hops, 0);
  std::size_t layer = 0;
  for (std::size_t h = 0; h < hops; ++h) {
    off[h] = layer;
    layer += channels[h].state_count();
  }

  // Grid: (t, h, s) -> t * layer + off[h] + s for uplink layer t in
  // [0, ttl), then Is goal states, then Discard.
  const std::size_t num_transient = static_cast<std::size_t>(ttl) * layer;
  const std::size_t n = num_transient + cycles + 1;
  const auto grid = [&](std::uint32_t t, std::size_t h, std::size_t s) {
    return static_cast<std::size_t>(t) * layer + off[h] + s;
  };
  const auto goal = [&](std::uint32_t cycle_0based) {
    return num_transient + cycle_0based;
  };
  const std::size_t discard = n - 1;

  // One dense matrix per cycle-slot position, reused every cycle: the
  // uplink layer t encodes the global slot t + 1 (and hence the goal
  // cycle and the TTL expiry), so the matrices are frame-position-
  // homogeneous.  Uplink position f advances exactly the layers t with
  // t % Fup == f; downlink positions only mix every hop's channel in
  // place.  Rows not written stay zero — they never carry mass.
  std::vector<std::vector<double>> matrices(
      cycle_slots, std::vector<double>(n * n, 0.0));
  for (std::uint32_t f = 0; f < cycle_slots; ++f) {
    std::vector<double>& m = matrices[f];
    const auto at = [&](std::size_t row, std::size_t col) -> double& {
      return m[row * n + col];
    };
    for (std::uint32_t i = 0; i < cycles; ++i) at(goal(i), goal(i)) = 1.0;
    at(discard, discard) = 1.0;
    if (f >= fup) {  // downlink: channel mixing on every layer
      for (std::uint32_t t = 0; t < ttl; ++t)
        for (std::size_t h = 0; h < hops; ++h)
          for (std::size_t s = 0; s < channels[h].state_count(); ++s)
            for (std::size_t s2 = 0; s2 < channels[h].state_count(); ++s2)
              at(grid(t, h, s), grid(t, h, s2)) +=
                  channels[h].transition(s, s2);
      continue;
    }
    for (std::uint32_t t = f; t < ttl; t += fup) {
      const std::uint32_t slot = t + 1;
      const std::size_t firing = firing_hop(config, slot);
      const bool expires = slot == ttl;
      for (std::size_t h = 0; h < hops; ++h) {
        const std::size_t k = channels[h].state_count();
        for (std::size_t s = 0; s < k; ++s) {
          const std::size_t from = grid(t, h, s);
          // Channel-mixed "stay at hop h" target (or Discard on expiry).
          const auto stay_mass = [&](double mass) {
            if (expires) {
              at(from, discard) += mass;
              return;
            }
            for (std::size_t s2 = 0; s2 < k; ++s2)
              at(from, grid(t + 1, h, s2)) +=
                  mass * channels[h].transition(s, s2);
          };
          if (firing != h) {
            stay_mass(1.0);
            continue;
          }
          const double ps = channels[h].success_in_state(s);
          if (h + 1 == hops) {
            at(from, goal((slot - 1) / fup)) += ps;
          } else if (expires) {
            at(from, discard) += ps;
          } else {
            // The next hop's independent stationary chain is a fresh
            // draw at arrival.
            for (std::size_t s2 = 0; s2 < channels[h + 1].state_count();
                 ++s2)
              at(from, grid(t + 1, h + 1, s2)) +=
                  ps * channels[h + 1].stationary()[s2];
          }
          stay_mass(1.0 - ps);
        }
      }
    }
  }

  ReferenceResult result;
  result.state_count = n;
  result.cycle_probabilities.assign(cycles, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);

  // Stored backward pass over every absolute slot: v[a] = P(eventual
  // goal | state before the matrix of absolute slot a).  Goal rows are
  // self-loops, so no re-pinning is needed.
  const std::size_t total_abs =
      static_cast<std::size_t>(cycles) * cycle_slots;
  std::vector<std::vector<double>> v(total_abs + 1,
                                     std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < cycles; ++i) v[total_abs][goal(i)] = 1.0;
  for (std::size_t a = total_abs; a-- > 0;) {
    const std::vector<double>& m = matrices[a % cycle_slots];
    for (std::size_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (std::size_t col = 0; col < n; ++col)
        sum += m[row * n + col] * v[a + 1][col];
      v[a][row] = sum;
    }
  }

  // Forward pass over every absolute slot of the interval.
  std::vector<double> dist(n, 0.0);
  for (std::size_t s = 0; s < channels[0].state_count(); ++s)
    dist[grid(0, 0, s)] = channels[0].stationary()[s];
  for (std::size_t a = 0; a < total_abs; ++a) {
    const std::uint32_t f = static_cast<std::uint32_t>(a % cycle_slots);
    if (f < fup) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(a / cycle_slots) * fup + f + 1;
      if (slot <= ttl) {
        const std::size_t firing = firing_hop(config, slot);
        if (firing < hops) {
          for (std::size_t s = 0; s < channels[firing].state_count(); ++s) {
            const double mass = dist[grid(slot - 1, firing, s)];
            result.expected_transmissions += mass;
            result.expected_transmissions_per_hop[firing] += mass;
            result.expected_transmissions_delivered +=
                mass * v[a][grid(slot - 1, firing, s)];
          }
        }
      }
    }
    const std::vector<double>& m = matrices[f];
    std::vector<double> next(n, 0.0);
    for (std::size_t row = 0; row < n; ++row) {
      const double mass = dist[row];
      if (mass == 0.0) continue;
      for (std::size_t col = 0; col < n; ++col)
        next[col] += mass * m[row * n + col];
    }
    dist = std::move(next);
  }

  for (std::uint32_t i = 0; i < cycles; ++i)
    result.cycle_probabilities[i] = dist[goal(i)];
  result.discard_probability = dist[discard];

  finish_measures(config, result);
  return result;
}

}  // namespace whart::verify
