#include "whart/verify/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>

#include "whart/common/contracts.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::verify {

std::size_t Scenario::max_hops() const noexcept {
  std::size_t hops = 0;
  for (const ScenarioPath& path : paths)
    hops = std::max(hops, path.hop_count());
  return hops;
}

bool Scenario::has_retry_slots() const noexcept {
  for (const ScenarioPath& path : paths)
    for (net::SlotNumber slot : path.retry_slots)
      if (slot != 0) return true;
  return false;
}

hart::PathModelConfig Scenario::path_config(std::size_t index) const {
  expects(index < paths.size(), "path index in range");
  hart::PathModelConfig config;
  config.hop_slots = paths[index].hop_slots;
  config.retry_slots = paths[index].retry_slots;
  config.superframe = superframe;
  config.reporting_interval = reporting_interval;
  config.ttl = ttl;
  return config;
}

std::vector<double> Scenario::hop_availabilities(std::size_t index) const {
  expects(index < paths.size(), "path index in range");
  std::vector<double> availability;
  availability.reserve(paths[index].links.size());
  for (const link::LinkModel& link : paths[index].links)
    availability.push_back(link.steady_state_availability());
  return availability;
}

std::vector<link::ChannelModel> Scenario::hop_channels(
    std::size_t index) const {
  expects(index < paths.size(), "path index in range");
  expects(channel.has_value(), "scenario carries a channel overlay");
  std::vector<link::ChannelModel> channels;
  channels.reserve(paths[index].links.size());
  for (const link::LinkModel& link : paths[index].links)
    channels.push_back(
        channel->with_marginal_success(link.steady_state_availability()));
  return channels;
}

bool Scenario::slots_sorted(std::size_t index) const {
  expects(index < paths.size(), "path index in range");
  return std::is_sorted(paths[index].hop_slots.begin(),
                        paths[index].hop_slots.end());
}

std::string Scenario::to_string() const {
  std::ostringstream out;
  out << "scenario{seed=" << seed << " Fup=" << superframe.uplink_slots
      << " Fdown=" << superframe.downlink_slots
      << " Is=" << reporting_interval;
  if (ttl.has_value()) out << " ttl=" << *ttl;
  if (channel.has_value()) out << " channel=" << channel->to_string();
  for (std::size_t p = 0; p < paths.size(); ++p) {
    out << " path" << p + 1 << "[";
    for (std::size_t h = 0; h < paths[p].hop_count(); ++h) {
      if (h > 0) out << " ";
      out << "s" << paths[p].hop_slots[h];
      if (h < paths[p].retry_slots.size() && paths[p].retry_slots[h] != 0)
        out << "+r" << paths[p].retry_slots[h];
      out << ":pfl=" << paths[p].links[h].failure_probability()
          << ",prc=" << paths[p].links[h].recovery_probability();
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

void Scenario::validate() const {
  ensures(!paths.empty(), "scenario has at least one path");
  ensures(superframe.uplink_slots >= 1, "Fup >= 1");
  ensures(reporting_interval >= 1, "Is >= 1");
  if (ttl.has_value()) ensures(*ttl >= 1, "ttl >= 1");
  std::set<net::SlotNumber> used;
  for (const ScenarioPath& path : paths) {
    ensures(!path.hop_slots.empty(), "path has at least one hop");
    ensures(path.links.size() == path.hop_count(),
            "one link model per hop");
    ensures(path.retry_slots.empty() ||
                path.retry_slots.size() == path.hop_count(),
            "retry_slots empty or one per hop");
    const auto check_slot = [&](net::SlotNumber slot) {
      ensures(slot >= 1 && slot <= superframe.uplink_slots,
              "slot within the uplink frame");
      ensures(used.insert(slot).second, "TDMA: one transmission per slot");
    };
    for (net::SlotNumber slot : path.hop_slots) check_slot(slot);
    for (net::SlotNumber slot : path.retry_slots)
      if (slot != 0) check_slot(slot);
  }
}

BuiltScenario build_network(const Scenario& scenario) {
  expects(!scenario.has_retry_slots(),
          "retry slots cannot be expressed in a net::Schedule");
  scenario.validate();

  BuiltScenario built{net::Network{}, {},
                      net::Schedule(scenario.superframe.uplink_slots,
                                    scenario.paths.size())};
  for (std::size_t p = 0; p < scenario.paths.size(); ++p) {
    const ScenarioPath& path = scenario.paths[p];
    // Chain p: pPn1 -> pPn2 -> ... -> G, one fresh node per non-gateway
    // position so paths never share links.
    std::vector<net::NodeId> nodes;
    for (std::size_t h = 0; h < path.hop_count(); ++h)
      nodes.push_back(built.network.add_node(
          "p" + std::to_string(p + 1) + "n" + std::to_string(h + 1)));
    nodes.push_back(net::kGateway);
    for (std::size_t h = 0; h < path.hop_count(); ++h)
      built.network.add_link(nodes[h], nodes[h + 1], path.links[h]);
    for (std::size_t h = 0; h < path.hop_count(); ++h)
      built.schedule.assign(path.hop_slots[h], p, h, nodes[h], nodes[h + 1]);
    built.paths.emplace_back(std::move(nodes));
  }
  return built;
}

ScenarioGenerator::ScenarioGenerator(GeneratorLimits limits)
    : limits_(limits) {
  expects(limits_.max_paths >= 1, "max_paths >= 1");
  expects(limits_.max_hops >= 1, "max_hops >= 1");
  expects(limits_.max_reporting_interval >= 1, "max_reporting_interval >= 1");
}

namespace {

link::LinkModel sample_link(numeric::Xoshiro256& rng, double edge_probability) {
  if (rng.uniform() < edge_probability) {
    // Degenerate corners the fuzzer must keep hitting: a perfect link
    // (pfl = 0), a link that fails every slot it is probed in (pfl = 1),
    // and a barely-alive link (availability -> 0).
    switch (rng.below(3)) {
      case 0:
        return link::LinkModel(0.0, 0.05 + 0.95 * rng.uniform());
      case 1:
        return link::LinkModel(1.0, 0.05 + 0.95 * rng.uniform());
      default:
        return link::LinkModel(0.95 + 0.05 * rng.uniform(),
                               0.01 + 0.04 * rng.uniform());
    }
  }
  // Mid-range: pfl in [0, 0.6], prc in [0.4, 1] — availability roughly
  // in [0.4, 1].
  return link::LinkModel(0.6 * rng.uniform(), 0.4 + 0.6 * rng.uniform());
}

}  // namespace

Scenario ScenarioGenerator::generate(std::uint64_t seed) const {
  numeric::Xoshiro256 rng(seed);
  Scenario scenario;
  scenario.seed = seed;

  const std::size_t path_count = 1 + rng.below(limits_.max_paths);
  std::vector<std::size_t> hops(path_count);
  std::vector<bool> with_retries(path_count);
  std::size_t transmissions = 0;
  for (std::size_t p = 0; p < path_count; ++p) {
    hops[p] = 1 + rng.below(limits_.max_hops);
    with_retries[p] = rng.uniform() < limits_.retry_probability;
    transmissions += hops[p] * (with_retries[p] ? 2 : 1);
  }

  const std::uint32_t fup = static_cast<std::uint32_t>(transmissions) +
                            static_cast<std::uint32_t>(
                                rng.below(limits_.max_idle_slots + 1));
  scenario.superframe =
      net::SuperframeConfig{fup, static_cast<std::uint32_t>(
                                     rng.below(std::uint64_t{fup} + 1))};
  scenario.reporting_interval =
      1 + static_cast<std::uint32_t>(
              rng.below(limits_.max_reporting_interval));

  // Distinct slots for every transmission opportunity, in random frame
  // positions — hop order within a path is deliberately NOT sorted, so
  // out-of-order schedules (hops waiting a full cycle) are routine.
  std::vector<net::SlotNumber> pool(fup);
  std::iota(pool.begin(), pool.end(), net::SlotNumber{1});
  const auto draw_slot = [&]() {
    const std::size_t pick = rng.below(pool.size());
    const net::SlotNumber slot = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    return slot;
  };

  for (std::size_t p = 0; p < path_count; ++p) {
    ScenarioPath path;
    for (std::size_t h = 0; h < hops[p]; ++h) {
      path.hop_slots.push_back(draw_slot());
      path.links.push_back(sample_link(rng, limits_.edge_link_probability));
    }
    if (with_retries[p]) {
      for (std::size_t h = 0; h < hops[p]; ++h)
        path.retry_slots.push_back(rng.uniform() < 0.5 ? draw_slot() : 0);
      // Normalize all-zero retry vectors to "no retries".
      if (std::all_of(path.retry_slots.begin(), path.retry_slots.end(),
                      [](net::SlotNumber s) { return s == 0; }))
        path.retry_slots.clear();
    }
    scenario.paths.push_back(std::move(path));
  }

  const std::uint32_t horizon =
      scenario.reporting_interval * scenario.superframe.uplink_slots;
  if (rng.uniform() < limits_.ttl_probability)
    scenario.ttl = 1 + static_cast<std::uint32_t>(rng.below(horizon));

  // Correlated-channel overlay, drawn from a *forked* stream so the base
  // scenario of any seed is identical with and without the feature (and
  // pre-channel corpus seeds keep meaning what they meant).
  numeric::Xoshiro256 channel_rng(seed ^ 0x6368616E6E656CULL);
  if (channel_rng.uniform() < limits_.channel_probability) {
    if (channel_rng.uniform() < 0.8) {
      // Gilbert-Elliott with seeded burst parameters: bursty bad states
      // (mean burst length 1/p_bg in [1.25, 10] slots) and a clear
      // good/bad error-rate separation.
      const double p_gb = 0.05 + 0.45 * channel_rng.uniform();
      const double p_bg = 0.1 + 0.7 * channel_rng.uniform();
      const double e_g = 0.15 * channel_rng.uniform();
      const double e_b = 0.35 + 0.6 * channel_rng.uniform();
      scenario.channel =
          link::ChannelModel::gilbert_elliott(p_gb, p_bg, e_g, e_b);
    } else {
      // 3-state fading chain: rows biased toward staying put (fading is
      // slow), error rates ordered good < mid < bad.
      std::vector<double> rows;
      for (std::size_t r = 0; r < 3; ++r) {
        double w[3];
        double total = 0.0;
        for (std::size_t c = 0; c < 3; ++c) {
          w[c] = (r == c ? 2.0 : 0.1) + channel_rng.uniform();
          total += w[c];
        }
        for (double x : w) rows.push_back(x / total);
      }
      scenario.channel = link::ChannelModel::chain(
          std::move(rows), {0.1 * channel_rng.uniform(),
                            0.2 + 0.3 * channel_rng.uniform(),
                            0.6 + 0.35 * channel_rng.uniform()});
    }
  }

  scenario.validate();
  return scenario;
}

std::vector<std::uint64_t> load_corpus(const std::string& path) {
  std::vector<std::uint64_t> seeds;
  std::ifstream file(path);
  if (!file) return seeds;
  std::string line;
  while (std::getline(file, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    seeds.push_back(std::stoull(line.substr(start)));
  }
  return seeds;
}

void append_corpus(const std::string& path, std::uint64_t seed) {
  const std::vector<std::uint64_t> existing = load_corpus(path);
  if (std::find(existing.begin(), existing.end(), seed) != existing.end())
    return;
  std::ofstream file(path, std::ios::app);
  expects(static_cast<bool>(file), "corpus file is writable");
  file << seed << "\n";
}

}  // namespace whart::verify
