// Deliberately naive dense reference solver — the independent second
// opinion of the differential oracle.  It shares NO code with the
// production path model: it enumerates the full rectangular (t, h) state
// grid (including states the production solver prunes as unreachable),
// materializes the one-step transition matrix as a dense row-major
// array, propagates the initial distribution by dense matrix-vector
// products, and evaluates the paper's Eqs. 6-11 as straight-line
// formulas.  O(N^2) per step where N = ttl * hops + Is + 1 — fine for
// the small scenarios the fuzzer generates, and simple enough to audit
// by eye against the paper.
#pragma once

#include <vector>

#include "whart/hart/path_model.hpp"
#include "whart/link/channel_model.hpp"

namespace whart::verify {

/// Everything the reference solver computes, field-for-field comparable
/// with hart::PathTransientResult / hart::PathMeasures.
struct ReferenceResult {
  std::vector<double> cycle_probabilities;
  double discard_probability = 0.0;
  double expected_transmissions = 0.0;
  std::vector<double> expected_transmissions_per_hop;
  double expected_transmissions_delivered = 0.0;

  // Paper Eqs. 6-11, straight-line.
  double reachability = 0.0;                      // Eq. 6
  std::vector<double> delays_ms;                  // Eq. 7
  std::vector<double> delay_distribution;         // Eq. 8
  double expected_delay_ms = 0.0;                 // Eq. 9
  double utilization = 0.0;                       // Eq. 10
  double expected_intervals_to_first_loss = 0.0;  // Eq. 11
  double delay_jitter_ms = 0.0;

  /// Dense states, for diagnostics.
  std::size_t state_count = 0;
};

/// Solve `config` under per-hop steady-state availabilities (one entry
/// per hop, each in [0, 1]).
ReferenceResult reference_solve(const hart::PathModelConfig& config,
                                const std::vector<double>& availabilities);

/// Solve `config` under per-hop channel chains (one link::ChannelModel
/// per hop, already rescaled to the hop's availability).  Independent
/// second opinion on the channel-enlarged production solver: the grid is
/// widened to (t, h, s) — uplink layer, hop, channel state of the
/// current hop — and, because the chain mixes in every 10 ms slot, the
/// forward/backward passes walk every absolute slot of the interval
/// including idle uplink and downlink slots.
ReferenceResult reference_solve_channel(
    const hart::PathModelConfig& config,
    const std::vector<link::ChannelModel>& channels);

}  // namespace whart::verify
