// Discrete distributions used by the models: geometric (time to first
// message loss, random failure durations) and negative binomial (cycles
// needed to traverse an n-hop path with i.i.d. per-attempt success).
#pragma once

#include <cstdint>
#include <vector>

namespace whart::numeric {

/// Geometric distribution on {1, 2, ...}: number of trials up to and
/// including the first success, with success probability p per trial.
class Geometric {
 public:
  /// p must lie in (0, 1].
  explicit Geometric(double success_probability);

  /// P(N = k) for k >= 1.
  [[nodiscard]] double pmf(std::uint64_t k) const noexcept;

  /// P(N <= k).
  [[nodiscard]] double cdf(std::uint64_t k) const noexcept;

  /// E[N] = 1/p.  The paper uses this for the expected number of reporting
  /// intervals until the first message loss: E[N] = 1 / (1 - R).
  [[nodiscard]] double mean() const noexcept;

  [[nodiscard]] double success_probability() const noexcept { return p_; }

 private:
  double p_;
};

/// Negative-binomial cycle distribution for an n-hop path.
///
/// With links in steady state, every scheduled attempt succeeds i.i.d. with
/// probability ps.  A message that is absorbed in cycle m has accumulated
/// exactly m-1 failed attempts, distributed over the n hops in any order:
///   P(cycle = m) = C(m-1 + n-1, m-1) * ps^n * (1-ps)^(m-1).
/// Returns the probabilities for cycles 1..max_cycles (not normalized — the
/// remaining mass is the probability of discard after max_cycles).
std::vector<double> negative_binomial_cycles(std::uint32_t hops, double ps,
                                             std::uint32_t max_cycles);

}  // namespace whart::numeric
