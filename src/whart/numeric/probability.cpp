#include "whart/numeric/probability.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "whart/common/contracts.hpp"

namespace whart::numeric {

namespace {
constexpr double kRangeTolerance = 1e-12;
}

Probability::Probability(double value) {
  expects(value >= -kRangeTolerance && value <= 1.0 + kRangeTolerance,
          "0 <= p <= 1", "probability was " + std::to_string(value));
  value_ = std::clamp(value, 0.0, 1.0);
}

Probability Probability::complement() const noexcept {
  Probability result;
  result.value_ = 1.0 - value_;
  return result;
}

bool is_pmf(std::span<const double> pmf, double tol) noexcept {
  double sum = 0.0;
  for (double p : pmf) {
    if (!(p >= -tol && p <= 1.0 + tol)) return false;
    sum += p;
  }
  return std::abs(sum - 1.0) <= tol;
}

double total_mass(std::span<const double> pmf) noexcept {
  return std::accumulate(pmf.begin(), pmf.end(), 0.0);
}

std::vector<double> normalized(std::span<const double> weights) {
  const double mass = total_mass(weights);
  expects(mass > 1e-300, "total mass > 0", "cannot normalize zero mass");
  std::vector<double> result(weights.begin(), weights.end());
  for (double& w : result) w /= mass;
  return result;
}

double expectation(std::span<const double> values,
                   std::span<const double> pmf) {
  expects(values.size() == pmf.size(), "values.size() == pmf.size()");
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) sum += values[i] * pmf[i];
  return sum;
}

std::vector<double> cumulative(std::span<const double> pmf) {
  std::vector<double> cdf(pmf.size());
  double running = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    running += pmf[i];
    cdf[i] = running;
  }
  return cdf;
}

}  // namespace whart::numeric
