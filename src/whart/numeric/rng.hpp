// Deterministic pseudo-random number generation for the Monte-Carlo
// simulator.  A small xoshiro256** implementation is used instead of
// std::mt19937 so that simulation results are reproducible across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace whart::numeric {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
///
/// Fast, high-quality 64-bit generator with 2^256-1 period.  Seeded through
/// SplitMix64 so that any 64-bit seed produces a well-mixed state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded via SplitMix64).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Uniform integer in [0, bound) using Lemire's rejection-free reduction.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Jump the generator state far ahead; used to derive independent streams.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step; exposed for seeding utilities and tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace whart::numeric
