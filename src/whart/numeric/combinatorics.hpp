// Combinatorial helpers used by the analytic (negative-binomial) path model.
#pragma once

#include <cstdint>

namespace whart::numeric {

/// Binomial coefficient C(n, k) computed in floating point.
///
/// Exact for the small arguments used by the path model (n below ~50) and
/// numerically stable for larger ones (multiplicative form).  Returns 0 for
/// k > n.
double binomial(std::uint32_t n, std::uint32_t k) noexcept;

/// Natural log of the binomial coefficient via lgamma; valid for large n.
double log_binomial(std::uint32_t n, std::uint32_t k) noexcept;

/// Number of ways to place `failures` retries among `hops` hops of a path
/// (stars and bars): C(failures + hops - 1, failures).
double retry_placements(std::uint32_t failures, std::uint32_t hops) noexcept;

}  // namespace whart::numeric
