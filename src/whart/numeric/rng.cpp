#include "whart/numeric/rng.hpp"

namespace whart::numeric {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      next();
    }
  }
  state_ = s;
}

}  // namespace whart::numeric
