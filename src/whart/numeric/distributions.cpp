#include "whart/numeric/distributions.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"
#include "whart/numeric/combinatorics.hpp"

namespace whart::numeric {

Geometric::Geometric(double success_probability) : p_(success_probability) {
  expects(p_ > 0.0 && p_ <= 1.0, "0 < p <= 1");
}

double Geometric::pmf(std::uint64_t k) const noexcept {
  if (k == 0) return 0.0;
  return std::pow(1.0 - p_, static_cast<double>(k - 1)) * p_;
}

double Geometric::cdf(std::uint64_t k) const noexcept {
  if (k == 0) return 0.0;
  return 1.0 - std::pow(1.0 - p_, static_cast<double>(k));
}

double Geometric::mean() const noexcept { return 1.0 / p_; }

std::vector<double> negative_binomial_cycles(std::uint32_t hops, double ps,
                                             std::uint32_t max_cycles) {
  expects(hops >= 1, "hops >= 1");
  expects(ps >= 0.0 && ps <= 1.0, "0 <= ps <= 1");
  std::vector<double> cycles;
  cycles.reserve(max_cycles);
  const double pf = 1.0 - ps;
  const double success_all = std::pow(ps, static_cast<double>(hops));
  double failure_power = 1.0;
  for (std::uint32_t m = 1; m <= max_cycles; ++m) {
    const double ways = retry_placements(m - 1, hops);
    cycles.push_back(ways * success_all * failure_power);
    failure_power *= pf;
  }
  return cycles;
}

}  // namespace whart::numeric
