#include "whart/numeric/combinatorics.hpp"

#include <cmath>

namespace whart::numeric {

double binomial(std::uint32_t n, std::uint32_t k) noexcept {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (std::uint32_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

double log_binomial(std::uint32_t n, std::uint32_t k) noexcept {
  if (k > n) return -HUGE_VAL;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double retry_placements(std::uint32_t failures, std::uint32_t hops) noexcept {
  if (hops == 0) return failures == 0 ? 1.0 : 0.0;
  return binomial(failures + hops - 1, failures);
}

}  // namespace whart::numeric
