// Strong probability type plus helpers for working with discrete probability
// mass functions (pmfs).  Probabilities at API boundaries are validated once
// on construction (Core Guidelines I.4: make interfaces precisely typed).
#pragma once

#include <span>
#include <vector>

namespace whart::numeric {

/// A validated probability value in [0, 1].
///
/// Implicitly converts to double for arithmetic; construction checks range
/// (with a small tolerance for accumulated floating-point error, which is
/// clamped away).
class Probability {
 public:
  /// Construct from a raw value; throws whart::precondition_error if the
  /// value lies outside [0 - eps, 1 + eps].
  explicit Probability(double value);

  /// Default-constructs probability zero.
  constexpr Probability() noexcept = default;

  /// The complementary probability 1 - p.
  [[nodiscard]] Probability complement() const noexcept;

  [[nodiscard]] constexpr double value() const noexcept { return value_; }
  constexpr operator double() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// True when every entry is in [0,1] and the entries sum to 1 within `tol`.
bool is_pmf(std::span<const double> pmf, double tol = 1e-9) noexcept;

/// Sum of the entries (the total mass).
double total_mass(std::span<const double> pmf) noexcept;

/// Rescale entries to sum to exactly 1.  Throws if the mass is ~zero.
std::vector<double> normalized(std::span<const double> weights);

/// Expected value of a discrete distribution: sum(values[i] * pmf[i]).
/// Sizes must match.
double expectation(std::span<const double> values, std::span<const double> pmf);

/// Cumulative distribution of a pmf (running prefix sums).
std::vector<double> cumulative(std::span<const double> pmf);

}  // namespace whart::numeric
