#include "whart/net/routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "whart/common/contracts.hpp"

namespace whart::net {

namespace {

/// BFS from the gateway over links not in `excluded`; returns, per node,
/// the best next hop toward the gateway (availability-weighted among
/// minimal-distance parents) and the hop distance.
struct RoutingTable {
  std::vector<std::optional<NodeId>> next_hop;
  std::vector<std::optional<std::uint32_t>> distance;
  /// Product of stationary link availabilities along the chosen route to
  /// the gateway; used to break hop-count ties.
  std::vector<double> quality;
};

bool is_excluded(LinkId id, const std::vector<LinkId>& excluded) {
  return std::find(excluded.begin(), excluded.end(), id) != excluded.end();
}

RoutingTable build_routing_table(const Network& net,
                                 const std::vector<LinkId>& excluded) {
  const std::size_t n = net.node_count();
  RoutingTable table;
  table.next_hop.resize(n);
  table.distance.resize(n);
  table.quality.assign(n, 0.0);
  table.distance[kGateway.value] = 0;
  table.quality[kGateway.value] = 1.0;

  // BFS by layers: every distance-d node is dequeued after all tie
  // updates from distance-(d-1) parents have been applied to it.
  std::deque<NodeId> frontier{kGateway};
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    const std::uint32_t next_distance = *table.distance[current.value] + 1;
    for (NodeId neighbor : net.neighbors(current)) {
      const auto link_id = net.link_between(current, neighbor);
      if (!link_id || is_excluded(*link_id, excluded)) continue;
      const double quality =
          table.quality[current.value] *
          net.link(*link_id).model.steady_state_availability();
      auto& dist = table.distance[neighbor.value];
      if (!dist.has_value()) {
        dist = next_distance;
        table.next_hop[neighbor.value] = current;
        table.quality[neighbor.value] = quality;
        frontier.push_back(neighbor);
      } else if (*dist == next_distance &&
                 quality > table.quality[neighbor.value]) {
        // Tie in hop count: prefer the route with the higher product of
        // link availabilities (end-to-end first-cycle success).
        table.next_hop[neighbor.value] = current;
        table.quality[neighbor.value] = quality;
      }
    }
  }
  return table;
}

std::optional<Path> extract_path(const Network& net, const RoutingTable& table,
                                 NodeId source) {
  if (!table.distance[source.value].has_value() || source == kGateway)
    return std::nullopt;
  std::vector<NodeId> nodes{source};
  NodeId current = source;
  while (current != kGateway) {
    current = *table.next_hop[current.value];
    nodes.push_back(current);
    ensures(nodes.size() <= net.node_count(), "no routing loop");
  }
  return Path(std::move(nodes));
}

}  // namespace

std::optional<Path> shortest_uplink_path(const Network& net, NodeId source) {
  return shortest_uplink_path_avoiding(net, source, {});
}

std::optional<Path> shortest_uplink_path_avoiding(
    const Network& net, NodeId source, const std::vector<LinkId>& excluded) {
  expects(source.value < net.node_count(), "source in range");
  expects(source != kGateway, "source is a field device");
  const RoutingTable table = build_routing_table(net, excluded);
  return extract_path(net, table, source);
}

std::vector<Path> uplink_paths(const Network& net) {
  const RoutingTable table = build_routing_table(net, {});
  std::vector<Path> result;
  result.reserve(net.node_count() - 1);
  for (std::uint32_t i = 1; i < net.node_count(); ++i) {
    auto path = extract_path(net, table, NodeId{i});
    expects(path.has_value(), "every device reaches the gateway",
            "node " + net.node_name(NodeId{i}) + " is disconnected");
    result.push_back(std::move(*path));
  }
  return result;
}

std::vector<std::optional<std::uint32_t>> hop_distances(const Network& net) {
  return build_routing_table(net, {}).distance;
}

}  // namespace whart::net
