// Topology export: render a WirelessHART mesh as Graphviz DOT, with link
// availabilities as edge labels and the uplink routes highlighted — the
// network counterpart of markov::write_dot.
#pragma once

#include <iosfwd>
#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/spatial_plant.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

struct TopologyDotOptions {
  /// Graph name.
  std::string name = "plant";

  /// Bold the links that carry uplink routes (needs `paths`).
  bool highlight_routes = true;

  /// Print each link's stationary availability as its edge label.
  bool label_availability = true;
};

/// Write the mesh as an undirected Graphviz graph.  `paths` may be empty.
void write_topology_dot(std::ostream& out, const Network& network,
                        const std::vector<Path>& paths,
                        const TopologyDotOptions& options = {});

/// Spatial variant: nodes get fixed positions (meters -> points) so the
/// rendering matches the floor plan.  Use with `neato -n2`.
void write_topology_dot(std::ostream& out, const SpatialPlant& plant,
                        const TopologyDotOptions& options = {});

}  // namespace whart::net
