// Spatially-embedded plant generator: place devices on the plant floor,
// derive every link's Eb/N0 from the distance through a propagation
// model and link budget (phy::PathLossModel / phy::LinkBudget), and let
// the mesh self-organize — the physically-grounded counterpart of the
// statistics-driven generator in plant_generator.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"
#include "whart/phy/path_loss.hpp"

namespace whart::net {

/// A position on the plant floor, meters.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Position&, const Position&) = default;
};

/// Euclidean distance.
double distance_m(const Position& a, const Position& b);

struct SpatialPlantProfile {
  std::uint32_t device_count = 15;

  /// Devices are placed uniformly in a disc of this radius around the
  /// gateway.
  double plant_radius_m = 120.0;

  phy::PathLossModel propagation;
  phy::LinkBudget budget;

  /// Pairs whose link would have a stationary availability below this
  /// are not considered usable mesh links (the network manager would
  /// never whitelist them).  Each device's nearest neighbor is always
  /// linked regardless, so the mesh stays connected.
  double min_link_availability = 0.7;

  double recovery_probability = link::LinkModel::kDefaultRecovery;

  SchedulingPolicy policy = SchedulingPolicy::kShortestPathsFirst;

  std::uint64_t seed = 1;
};

struct SpatialPlant {
  Network network;
  /// positions[id]: location of node id (the gateway sits at the origin).
  std::vector<Position> positions;
  std::vector<Path> paths;
  Schedule schedule;
  SuperframeConfig superframe;
};

/// Generate a plant (deterministic in `profile.seed`).  Links connect
/// every pair whose distance-derived availability clears the threshold,
/// plus each device's nearest already-placed neighbor; uplink paths come
/// from availability-aware shortest-path routing.
SpatialPlant generate_spatial_plant(const SpatialPlantProfile& profile);

}  // namespace whart::net
