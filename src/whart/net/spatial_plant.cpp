#include "whart/net/spatial_plant.hpp"

#include <cmath>
#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/net/routing.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::net {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

SpatialPlant generate_spatial_plant(const SpatialPlantProfile& profile) {
  expects(profile.device_count >= 1, "at least one device");
  expects(profile.plant_radius_m > 0.0, "plant radius > 0");
  expects(profile.min_link_availability > 0.0 &&
              profile.min_link_availability <= 1.0,
          "0 < min availability <= 1");

  numeric::Xoshiro256 rng(profile.seed);
  Network network;
  std::vector<Position> positions{Position{0.0, 0.0}};  // gateway

  // Uniform placement in the disc (rejection sampling from the square).
  for (std::uint32_t i = 1; i <= profile.device_count; ++i) {
    Position p;
    do {
      p.x = (2.0 * rng.uniform() - 1.0) * profile.plant_radius_m;
      p.y = (2.0 * rng.uniform() - 1.0) * profile.plant_radius_m;
    } while (p.x * p.x + p.y * p.y >
             profile.plant_radius_m * profile.plant_radius_m);
    network.add_node("n" + std::to_string(i));
    positions.push_back(p);
  }

  const auto model_for = [&](std::uint32_t a, std::uint32_t b) {
    const double d = std::max(distance_m(positions[a], positions[b]),
                              profile.propagation.reference_distance_m);
    const phy::EbN0 snr = profile.budget.ebn0_at(d, profile.propagation);
    return link::LinkModel::from_snr(snr, phy::kMessageBits,
                                     profile.recovery_probability);
  };

  // Quality links: every pair clearing the availability threshold.
  const std::uint32_t n = profile.device_count + 1;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const link::LinkModel model = model_for(a, b);
      if (model.steady_state_availability() >=
          profile.min_link_availability)
        network.add_link(NodeId{a}, NodeId{b}, model);
    }
  }

  // Connectivity floor: each device links to its nearest lower-id
  // neighbor even when the link is poor (field crews would add a
  // repeater here; the model shows the poor reachability instead).
  for (std::uint32_t i = 1; i < n; ++i) {
    std::uint32_t nearest = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t j = 0; j < i; ++j) {
      const double d = distance_m(positions[i], positions[j]);
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    if (!network.link_between(NodeId{i}, NodeId{nearest}))
      network.add_link(NodeId{i}, NodeId{nearest}, model_for(i, nearest));
  }

  std::vector<Path> paths = uplink_paths(network);
  const std::uint32_t fup = required_uplink_slots(paths);
  Schedule schedule = build_schedule(paths, fup, profile.policy);
  return SpatialPlant{std::move(network), std::move(positions),
                      std::move(paths), std::move(schedule),
                      SuperframeConfig::symmetric(fup)};
}

}  // namespace whart::net
