// Network topology: field devices, the gateway, and the bidirectional
// wireless links between them, each carrying its own two-state link model
// (the paper explicitly supports inhomogeneous links).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/net/ids.hpp"

namespace whart::net {

/// A bidirectional wireless link between two nodes.
struct Link {
  NodeId a;
  NodeId b;
  link::LinkModel model;

  /// True when the link connects `x` and `y` in either orientation.
  [[nodiscard]] bool connects(NodeId x, NodeId y) const noexcept {
    return (a == x && b == y) || (a == y && b == x);
  }
};

/// A WirelessHART mesh: the gateway (node 0) plus field devices and links.
class Network {
 public:
  /// Creates a network containing only the gateway, named `gateway_name`.
  explicit Network(std::string gateway_name = "G");

  /// Add a field device; returns its id.  Names must be unique.
  NodeId add_node(std::string name);

  /// Add a bidirectional link; both endpoints must exist and must not
  /// already be connected.  Returns the link id.
  LinkId add_link(NodeId a, NodeId b, link::LinkModel model);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_names_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }

  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;

  [[nodiscard]] const Link& link(LinkId id) const;

  /// The link between two nodes, if any.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// Replace the model on one link (e.g. after a fresh SNR measurement).
  void set_link_model(LinkId id, link::LinkModel model);

  /// Set every link to the same model — the paper's homogeneous sweeps.
  void set_all_link_models(link::LinkModel model);

  /// Neighbors of `node`, ascending by id.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// All link ids.
  [[nodiscard]] std::vector<LinkId> links() const;

 private:
  void check_node(NodeId node) const;

  std::vector<std::string> node_names_;
  std::vector<Link> links_;
};

}  // namespace whart::net
