// An uplink path: the node sequence a message follows from its source field
// device to the gateway (or, for peer paths, to another field device).
#pragma once

#include <string>
#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/net/ids.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

/// An ordered node sequence source -> ... -> destination.
class Path {
 public:
  /// At least two nodes; all consecutive nodes must be distinct.
  explicit Path(std::vector<NodeId> nodes);

  [[nodiscard]] const std::vector<NodeId>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] NodeId source() const noexcept { return nodes_.front(); }
  [[nodiscard]] NodeId destination() const noexcept { return nodes_.back(); }

  /// Number of hops (links) on the path.
  [[nodiscard]] std::size_t hop_count() const noexcept {
    return nodes_.size() - 1;
  }

  /// True when the path terminates at the gateway (vs. a peer path).
  [[nodiscard]] bool is_uplink() const noexcept {
    return destination() == kGateway;
  }

  /// Endpoints of hop `hop` (0-based): (from, to).
  [[nodiscard]] std::pair<NodeId, NodeId> hop(std::size_t hop) const;

  /// Resolve each hop against a network's links; throws when some hop has
  /// no corresponding link.
  [[nodiscard]] std::vector<LinkId> resolve_links(const Network& net) const;

  /// The per-hop link models, in hop order.
  [[nodiscard]] std::vector<link::LinkModel> hop_models(
      const Network& net) const;

  /// True when `link` (of `net`) is one of this path's hops.
  [[nodiscard]] bool uses_link(const Network& net, LinkId link) const;

  /// "n5 -> n1 -> G" style rendering.
  [[nodiscard]] std::string to_string(const Network& net) const;

  /// Concatenation: `peer` (e.g. n5 -> n3) followed by `existing`
  /// (n3 -> G); peer.destination() must equal existing.source().
  static Path concatenate(const Path& peer, const Path& existing);

  friend bool operator==(const Path&, const Path&) = default;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace whart::net
