#include "whart/net/schedule.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::net {

Schedule::Schedule(std::uint32_t uplink_slots, std::size_t path_count)
    : entries_(uplink_slots), path_slots_(path_count) {
  expects(uplink_slots > 0, "uplink_slots > 0");
}

void Schedule::assign(SlotNumber slot, std::size_t path_index,
                      std::size_t hop, NodeId from, NodeId to) {
  expects(slot >= 1 && slot <= entries_.size(), "slot in 1..Fup");
  expects(path_index < path_slots_.size(), "path index in range");
  expects(!entries_[slot - 1].has_value(), "slot is idle",
          "TDMA allows one transmission per slot");
  auto& slots = path_slots_[path_index].hop_slots;
  expects(hop == slots.size(), "hops assigned in order",
          "assign hop k before hop k+1");
  entries_[slot - 1] = ScheduledTransmission{from, to, path_index, hop};
  slots.push_back(slot);
}

const std::optional<ScheduledTransmission>& Schedule::entry(
    SlotNumber slot) const {
  expects(slot >= 1 && slot <= entries_.size(), "slot in 1..Fup");
  return entries_[slot - 1];
}

const PathSlots& Schedule::path_slots(std::size_t path_index) const {
  expects(path_index < path_slots_.size(), "path index in range");
  return path_slots_[path_index];
}

void Schedule::validate_complete(const std::vector<Path>& paths) const {
  ensures(paths.size() == path_slots_.size(),
          "one slot list per path");
  for (std::size_t p = 0; p < paths.size(); ++p) {
    ensures(path_slots_[p].hop_slots.size() == paths[p].hop_count(),
            "every hop of every path has a slot");
    for (std::size_t h = 0; h < paths[p].hop_count(); ++h) {
      const SlotNumber slot = path_slots_[p].hop_slots[h];
      const auto& e = entries_[slot - 1];
      ensures(e.has_value() && e->path_index == p && e->hop == h,
              "slot ownership is consistent");
      const auto [from, to] = paths[p].hop(h);
      ensures(e->from == from && e->to == to,
              "scheduled endpoints match the path hop");
    }
  }
}

std::string Schedule::to_string(const Network& net) const {
  std::string result = "(";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) result += ", ";
    if (entries_[i].has_value())
      result += "<" + net.node_name(entries_[i]->from) + "," +
                net.node_name(entries_[i]->to) + ">";
    else
      result += "*";
  }
  result += ")";
  return result;
}

}  // namespace whart::net
