// The communication schedule eta (paper Sections II-C and IV): which link
// transmits in which uplink slot, and — because a link can carry several
// paths' messages in different dedicated slots — which path *owns* each
// slot.  TDMA guarantees at most one transmission per slot network-wide.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "whart/net/ids.hpp"
#include "whart/net/path.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

/// One scheduled transmission <from, to> with its owner.
struct ScheduledTransmission {
  NodeId from;
  NodeId to;
  /// Index (into the network's path list) of the path whose message this
  /// slot carries.
  std::size_t path_index = 0;
  /// 0-based hop of that path served by this slot.
  std::size_t hop = 0;

  friend bool operator==(const ScheduledTransmission&,
                         const ScheduledTransmission&) = default;
};

/// The dedicated uplink slots of one path, in hop order (paper slot
/// numbering: 1-based within the uplink frame).
struct PathSlots {
  std::vector<SlotNumber> hop_slots;

  friend bool operator==(const PathSlots&, const PathSlots&) = default;
};

/// A full uplink communication schedule for a set of paths.
class Schedule {
 public:
  /// An empty schedule of `uplink_slots` idle slots for `path_count` paths.
  Schedule(std::uint32_t uplink_slots, std::size_t path_count);

  /// Assign `slot` (1-based) to hop `hop` of path `path_index`.  The slot
  /// must be idle and each (path, hop) may be assigned only once.
  void assign(SlotNumber slot, std::size_t path_index, std::size_t hop,
              NodeId from, NodeId to);

  [[nodiscard]] std::uint32_t uplink_slots() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// The transmission in `slot` (1-based), if any.
  [[nodiscard]] const std::optional<ScheduledTransmission>& entry(
      SlotNumber slot) const;

  /// Dedicated slots of path `path_index`, in hop order.
  [[nodiscard]] const PathSlots& path_slots(std::size_t path_index) const;

  [[nodiscard]] std::size_t path_count() const noexcept {
    return path_slots_.size();
  }

  /// Validate completeness against the paths: every hop of every path has
  /// exactly one slot.  Throws whart::invariant_error otherwise.
  void validate_complete(const std::vector<Path>& paths) const;

  /// "(<n1,G>, *, <n4,n1>, ...)" rendering in paper notation.
  [[nodiscard]] std::string to_string(const Network& net) const;

 private:
  std::vector<std::optional<ScheduledTransmission>> entries_;
  std::vector<PathSlots> path_slots_;
};

}  // namespace whart::net
