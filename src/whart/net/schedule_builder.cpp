#include "whart/net/schedule_builder.hpp"

#include <algorithm>
#include <numeric>

#include "whart/common/contracts.hpp"

namespace whart::net {

std::uint32_t required_uplink_slots(const std::vector<Path>& paths) {
  std::uint32_t total = 0;
  for (const Path& p : paths) total += static_cast<std::uint32_t>(p.hop_count());
  return total;
}

Schedule build_schedule(const std::vector<Path>& paths,
                        std::uint32_t uplink_slots, SchedulingPolicy policy) {
  expects(!paths.empty(), "at least one path");
  expects(required_uplink_slots(paths) <= uplink_slots,
          "paths fit into the uplink frame");

  std::vector<std::size_t> order(paths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (policy) {
    case SchedulingPolicy::kShortestPathsFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return paths[a].hop_count() < paths[b].hop_count();
                       });
      break;
    case SchedulingPolicy::kLongestPathsFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return paths[a].hop_count() > paths[b].hop_count();
                       });
      break;
    case SchedulingPolicy::kDeclarationOrder:
      break;
  }

  Schedule schedule(uplink_slots, paths.size());
  SlotNumber next_slot = 1;
  for (std::size_t path_index : order) {
    const Path& path = paths[path_index];
    for (std::size_t h = 0; h < path.hop_count(); ++h) {
      const auto [from, to] = path.hop(h);
      schedule.assign(next_slot++, path_index, h, from, to);
    }
  }
  schedule.validate_complete(paths);
  return schedule;
}

}  // namespace whart::net
