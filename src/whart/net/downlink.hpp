// The downlink half of the superframe (paper Section II): after the
// uplink slots deliver the sensor samples and the controller runs PID,
// output messages travel gateway -> actuator during the downlink slots.
// The paper assumes a symmetric setup; these helpers build the mirrored
// downlink paths and their schedule explicitly so asymmetric setups can
// be analyzed exactly.
#pragma once

#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/schedule_builder.hpp"

namespace whart::net {

/// The downlink path mirroring an uplink path: the same node chain
/// reversed (gateway first).
Path mirrored_downlink_path(const Path& uplink);

/// Mirror a whole path set.
std::vector<Path> mirrored_downlink_paths(const std::vector<Path>& uplink);

/// Build the downlink-half schedule for the given (gateway-first) paths.
/// Slot numbers are 1..`downlink_slots` *within the downlink half*; the
/// hops of each chain are laid out contiguously per `policy`, exactly
/// like the uplink builder.
Schedule build_downlink_schedule(const std::vector<Path>& downlink_paths,
                                 std::uint32_t downlink_slots,
                                 SchedulingPolicy policy);

}  // namespace whart::net
