// Uplink graph routing: derive the path each field device uses to reach the
// gateway (the network manager's job — paper Section II).  Routing is
// shortest-path (BFS) with availability-weighted tie breaking, plus
// utilities for rerouting around failed links (Section VI-C, permanent
// failures).
#pragma once

#include <optional>
#include <vector>

#include "whart/net/ids.hpp"
#include "whart/net/path.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

/// Shortest uplink path from `source` to the gateway, breaking hop-count
/// ties by preferring the next hop whose link has the highest stationary
/// availability.  Empty when the gateway is unreachable.
std::optional<Path> shortest_uplink_path(const Network& net, NodeId source);

/// Shortest uplink path that avoids `excluded` links entirely; used to
/// reroute around a permanently failed link.
std::optional<Path> shortest_uplink_path_avoiding(
    const Network& net, NodeId source, const std::vector<LinkId>& excluded);

/// Uplink paths for every field device (ids 1..n-1), in node order.
/// Throws when some device cannot reach the gateway.
std::vector<Path> uplink_paths(const Network& net);

/// Hop distance from every node to the gateway (0 for the gateway itself);
/// nullopt for unreachable nodes.
std::vector<std::optional<std::uint32_t>> hop_distances(const Network& net);

}  // namespace whart::net
