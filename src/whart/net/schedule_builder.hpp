// Schedule construction policies (paper Section VI-B).  Each path's hop
// chain is laid out contiguously and in hop order inside the uplink frame,
// so a message can traverse its whole path within one cycle; what differs
// between policies is which paths get the early slots.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"

namespace whart::net {

/// Ordering policy for laying out path chains in the uplink frame.
enum class SchedulingPolicy {
  /// Short paths first — the paper's eta_a (priority to low hop counts).
  kShortestPathsFirst,
  /// Long paths first — the paper's eta_b (balances expected delays).
  kLongestPathsFirst,
  /// Paths exactly in the order given.
  kDeclarationOrder,
};

/// Minimum uplink frame size needed: the total number of hops.
std::uint32_t required_uplink_slots(const std::vector<Path>& paths);

/// Build a schedule placing each path's chain contiguously according to
/// `policy`, into a frame of `uplink_slots` slots (throws when the paths
/// do not fit).  Ties in hop count preserve declaration order for
/// kShortestPathsFirst and reverse it for kLongestPathsFirst (matching the
/// paper's eta_a / eta_b pair for the typical network).
Schedule build_schedule(const std::vector<Path>& paths,
                        std::uint32_t uplink_slots, SchedulingPolicy policy);

}  // namespace whart::net
