// Superframe timing.  A WirelessHART superframe is a fixed series of 10 ms
// TDMA slots; the first half carries uplink (sensor -> gateway) traffic and
// the second half downlink (controller -> actuator) traffic.  Message age
// and TTL are counted in *uplink* slots only (uplink messages sleep during
// downlink slots — paper Section II-B).
#pragma once

#include <cstdint>

#include "whart/phy/frame.hpp"

namespace whart::net {

/// Slot layout of a superframe.
struct SuperframeConfig {
  /// Number of uplink slots per superframe (the paper's Fup — also the
  /// length of the communication schedule).
  std::uint32_t uplink_slots = 0;

  /// Number of downlink slots per superframe.  The paper assumes a
  /// symmetric setup (Fdown = Fup).
  std::uint32_t downlink_slots = 0;

  /// Symmetric superframe with `fup` slots each way.
  static SuperframeConfig symmetric(std::uint32_t fup) {
    return SuperframeConfig{fup, fup};
  }

  /// Total slots per superframe cycle.
  [[nodiscard]] std::uint32_t cycle_slots() const noexcept {
    return uplink_slots + downlink_slots;
  }

  /// Wall-clock duration of one cycle in milliseconds.
  [[nodiscard]] std::uint32_t cycle_milliseconds() const noexcept {
    return cycle_slots() * phy::kSlotMilliseconds;
  }

  /// Absolute slot index (0-based, counting both halves) of the `t`-th
  /// uplink slot (1-based, counted across cycles) — the conversion between
  /// model time and wall-clock/link time.
  [[nodiscard]] std::uint64_t absolute_slot_of_uplink(
      std::uint64_t uplink_slot_1based) const noexcept {
    const std::uint64_t t = uplink_slot_1based - 1;
    const std::uint64_t cycle = t / uplink_slots;
    const std::uint64_t position = t % uplink_slots;
    return cycle * cycle_slots() + position;
  }

  friend bool operator==(const SuperframeConfig&,
                         const SuperframeConfig&) = default;
};

}  // namespace whart::net
