#include "whart/net/downlink.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::net {

Path mirrored_downlink_path(const Path& uplink) {
  expects(uplink.is_uplink(), "path ends at the gateway");
  std::vector<NodeId> nodes = uplink.nodes();
  std::reverse(nodes.begin(), nodes.end());
  return Path(std::move(nodes));
}

std::vector<Path> mirrored_downlink_paths(const std::vector<Path>& uplink) {
  std::vector<Path> downlink;
  downlink.reserve(uplink.size());
  for (const Path& path : uplink)
    downlink.push_back(mirrored_downlink_path(path));
  return downlink;
}

Schedule build_downlink_schedule(const std::vector<Path>& downlink_paths,
                                 std::uint32_t downlink_slots,
                                 SchedulingPolicy policy) {
  for (const Path& path : downlink_paths)
    expects(path.source() == kGateway, "downlink paths start at the gateway");
  return build_schedule(downlink_paths, downlink_slots, policy);
}

}  // namespace whart::net
