#include "whart/net/export.hpp"

#include <ostream>
#include <set>
#include <sstream>

namespace whart::net {

namespace {

std::set<std::uint32_t> route_links(const Network& network,
                                    const std::vector<Path>& paths) {
  std::set<std::uint32_t> used;
  for (const Path& path : paths)
    for (LinkId id : path.resolve_links(network)) used.insert(id.value);
  return used;
}

void write_body(std::ostream& out, const Network& network,
                const std::vector<Path>& paths,
                const TopologyDotOptions& options,
                const SpatialPlant* spatial) {
  out << "graph " << options.name << " {\n"
      << "  node [shape=circle, fontsize=10];\n";
  for (std::uint32_t id = 0; id < network.node_count(); ++id) {
    out << "  n" << id << " [label=\"" << network.node_name(NodeId{id})
        << '"';
    if (id == kGateway.value) out << ", shape=doublecircle";
    if (spatial != nullptr) {
      // 1 m = 4 points; neato -n2 honours pos="x,y!".
      out << ", pos=\"" << spatial->positions[id].x * 4.0 << ','
          << spatial->positions[id].y * 4.0 << "!\"";
    }
    out << "];\n";
  }
  const std::set<std::uint32_t> routed =
      options.highlight_routes ? route_links(network, paths)
                               : std::set<std::uint32_t>{};
  for (LinkId id : network.links()) {
    const Link& link = network.link(id);
    out << "  n" << link.a.value << " -- n" << link.b.value << " [";
    bool first = true;
    if (options.label_availability) {
      std::ostringstream label;
      label.precision(3);
      label << link.model.steady_state_availability();
      out << "label=\"" << label.str() << '"';
      first = false;
    }
    if (routed.contains(id.value)) {
      if (!first) out << ", ";
      out << "penwidth=2.5";
      first = false;
    }
    if (first) out << "style=solid";
    out << "];\n";
  }
  out << "}\n";
}

}  // namespace

void write_topology_dot(std::ostream& out, const Network& network,
                        const std::vector<Path>& paths,
                        const TopologyDotOptions& options) {
  write_body(out, network, paths, options, nullptr);
}

void write_topology_dot(std::ostream& out, const SpatialPlant& plant,
                        const TopologyDotOptions& options) {
  write_body(out, plant.network, plant.paths, options, &plant);
}

}  // namespace whart::net
