#include "whart/net/typical_network.hpp"

#include "whart/net/schedule_builder.hpp"

namespace whart::net {

TypicalNetwork make_typical_network(link::LinkModel link_model) {
  Network network;
  std::vector<NodeId> n{kGateway};  // n[i] is the paper's node n_i
  for (int i = 1; i <= 10; ++i)
    n.push_back(network.add_node("n" + std::to_string(i)));

  // Fig. 12 connectivity: n1..n3 talk to the gateway directly; n4, n5
  // relay via n1; n6 via n2; n7, n8 via n3; n9 via n6; n10 via n7.
  network.add_link(n[1], kGateway, link_model);
  network.add_link(n[2], kGateway, link_model);
  network.add_link(n[3], kGateway, link_model);
  network.add_link(n[4], n[1], link_model);
  network.add_link(n[5], n[1], link_model);
  network.add_link(n[6], n[2], link_model);
  network.add_link(n[7], n[3], link_model);
  network.add_link(n[8], n[3], link_model);
  network.add_link(n[9], n[6], link_model);
  network.add_link(n[10], n[7], link_model);

  // The paper's path numbering: 1-3 one hop, 4-8 two hops, 9-10 three hops.
  std::vector<Path> paths;
  paths.emplace_back(std::vector<NodeId>{n[1], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[2], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[3], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[4], n[1], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[5], n[1], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[6], n[2], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[7], n[3], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[8], n[3], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[9], n[6], n[2], kGateway});
  paths.emplace_back(std::vector<NodeId>{n[10], n[7], n[3], kGateway});

  const SuperframeConfig superframe = SuperframeConfig::symmetric(20);

  // kShortestPathsFirst with this declaration order reproduces the paper's
  // eta_a verbatim: <n1,G>, <n2,G>, <n3,G>, <n4,n1>, <n1,G>, <n5,n1>,
  // <n1,G>, <n6,n2>, <n2,G>, <n7,n3>, <n3,G>, <n8,n3>, <n3,G>, <n9,n6>,
  // <n6,n2>, <n2,G>, <n10,n7>, <n7,n3>, <n3,G>.
  Schedule eta_a = build_schedule(paths, superframe.uplink_slots,
                                  SchedulingPolicy::kShortestPathsFirst);
  Schedule eta_b = build_schedule(paths, superframe.uplink_slots,
                                  SchedulingPolicy::kLongestPathsFirst);

  return TypicalNetwork{std::move(network), std::move(paths),
                        std::move(eta_a), std::move(eta_b), superframe};
}

}  // namespace whart::net
