// Random plant-topology generator following the HART Communication
// Foundation statistics the paper cites: in real plant settings about 30%
// of the devices reach the gateway directly, 50% are two hops away, and
// the remaining 20% are three or four hops away.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

/// Parameters for the random plant generator.
struct PlantProfile {
  std::uint32_t device_count = 10;

  /// Hop-depth mix; must sum to 1.  Defaults follow the HART statistics
  /// (the 20% tail is split between 3 and 4 hops).
  double fraction_one_hop = 0.30;
  double fraction_two_hop = 0.50;
  double fraction_three_hop = 0.15;
  double fraction_four_hop = 0.05;

  /// Per-link stationary availability is drawn uniformly from this range.
  double min_availability = 0.83;
  double max_availability = 0.97;

  /// 0 (default): availabilities are continuous uniform draws.  k > 0:
  /// each link's availability is drawn uniformly from k evenly spaced
  /// quality classes spanning [min, max] — real site surveys bin links
  /// into a few classes, and discrete classes make many paths of the
  /// plant structurally identical, which hart::PathAnalysisCache then
  /// solves once and shares.
  std::uint32_t availability_levels = 0;

  double recovery_probability = link::LinkModel::kDefaultRecovery;

  SchedulingPolicy policy = SchedulingPolicy::kShortestPathsFirst;

  std::uint64_t seed = 1;
};

/// A generated plant: topology, one uplink path per device, and a schedule
/// in a symmetric superframe just large enough for all hops.
struct GeneratedPlant {
  Network network;
  std::vector<Path> paths;
  Schedule schedule;
  SuperframeConfig superframe;
};

/// Generate a plant (deterministic in `profile.seed`).
/// Devices are assigned hop depths per the profile mix (largest-remainder
/// rounding), each depth-k device relays through a uniformly chosen
/// depth-(k-1) device.
GeneratedPlant generate_plant(const PlantProfile& profile);

}  // namespace whart::net
