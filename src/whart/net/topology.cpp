#include "whart/net/topology.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::net {

Network::Network(std::string gateway_name) {
  node_names_.push_back(std::move(gateway_name));
}

NodeId Network::add_node(std::string name) {
  expects(!name.empty(), "node name is non-empty");
  expects(!find_node(name).has_value(), "node name is unique");
  node_names_.push_back(std::move(name));
  return NodeId{static_cast<std::uint32_t>(node_names_.size() - 1)};
}

LinkId Network::add_link(NodeId a, NodeId b, link::LinkModel model) {
  check_node(a);
  check_node(b);
  expects(a != b, "link endpoints differ");
  expects(!link_between(a, b).has_value(), "nodes not already linked");
  links_.push_back(Link{a, b, model});
  return LinkId{static_cast<std::uint32_t>(links_.size() - 1)};
}

const std::string& Network::node_name(NodeId node) const {
  check_node(node);
  return node_names_[node.value];
}

std::optional<NodeId> Network::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i)
    if (node_names_[i] == name)
      return NodeId{static_cast<std::uint32_t>(i)};
  return std::nullopt;
}

const Link& Network::link(LinkId id) const {
  expects(id.value < links_.size(), "link id in range");
  return links_[id.value];
}

std::optional<LinkId> Network::link_between(NodeId a, NodeId b) const {
  for (std::size_t i = 0; i < links_.size(); ++i)
    if (links_[i].connects(a, b))
      return LinkId{static_cast<std::uint32_t>(i)};
  return std::nullopt;
}

void Network::set_link_model(LinkId id, link::LinkModel model) {
  expects(id.value < links_.size(), "link id in range");
  links_[id.value].model = model;
}

void Network::set_all_link_models(link::LinkModel model) {
  for (Link& l : links_) l.model = model;
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  check_node(node);
  std::vector<NodeId> result;
  for (const Link& l : links_) {
    if (l.a == node) result.push_back(l.b);
    if (l.b == node) result.push_back(l.a);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<LinkId> Network::links() const {
  std::vector<LinkId> result(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i)
    result[i] = LinkId{static_cast<std::uint32_t>(i)};
  return result;
}

void Network::check_node(NodeId node) const {
  expects(node.value < node_names_.size(), "node id in range");
}

}  // namespace whart::net
