// The paper's "typical WirelessHART network" (Section VI-A, Fig. 12):
// ten field devices and a gateway, with the HART Communication Foundation
// hop-count mix — 30% one hop, 50% two hops, 20% three hops.
#pragma once

#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::net {

/// The fully specified evaluation scenario of paper Section VI.
struct TypicalNetwork {
  Network network;
  /// The ten uplink paths; index i is the paper's "path i+1"
  /// (paths 1-3 one hop, 4-8 two hops, 9-10 three hops).
  std::vector<Path> paths;
  /// The paper's schedule eta_a (short paths first), verbatim.
  Schedule eta_a;
  /// The balanced alternative eta_b (long paths first).
  Schedule eta_b;
  /// Fup = Fdown = 20 slots (19 uplink slots used), cycle = 400 ms.
  SuperframeConfig superframe;
};

/// Build the typical network with every link set to `link_model`.
TypicalNetwork make_typical_network(
    link::LinkModel link_model =
        link::LinkModel::from_availability(0.83));

/// Paper default reporting interval for the network evaluation.
inline constexpr std::uint32_t kTypicalReportingInterval = 4;

}  // namespace whart::net
