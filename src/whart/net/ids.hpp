// Strong identifier types for network entities (Core Guidelines I.4).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace whart::net {

/// Identifier of a field device or the gateway.  The gateway is always
/// node 0 in a Network.
struct NodeId {
  std::uint32_t value = 0;

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend std::strong_ordering operator<=>(const NodeId&,
                                          const NodeId&) = default;
};

/// The gateway's well-known id.
inline constexpr NodeId kGateway{0};

/// Identifier of a (bidirectional) wireless link within a Network.
struct LinkId {
  std::uint32_t value = 0;

  friend bool operator==(const LinkId&, const LinkId&) = default;
  friend std::strong_ordering operator<=>(const LinkId&,
                                          const LinkId&) = default;
};

/// 1-based index of a TDMA slot within the uplink part of a superframe,
/// matching the paper's slot numbering.
using SlotNumber = std::uint32_t;

}  // namespace whart::net

template <>
struct std::hash<whart::net::NodeId> {
  std::size_t operator()(const whart::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<whart::net::LinkId> {
  std::size_t operator()(const whart::net::LinkId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
