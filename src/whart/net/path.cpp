#include "whart/net/path.hpp"

#include "whart/common/contracts.hpp"

namespace whart::net {

Path::Path(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
  expects(nodes_.size() >= 2, "path has at least two nodes");
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    expects(nodes_[i] != nodes_[i - 1], "consecutive nodes are distinct");
}

std::pair<NodeId, NodeId> Path::hop(std::size_t hop) const {
  expects(hop < hop_count(), "hop in range");
  return {nodes_[hop], nodes_[hop + 1]};
}

std::vector<LinkId> Path::resolve_links(const Network& net) const {
  std::vector<LinkId> result;
  result.reserve(hop_count());
  for (std::size_t h = 0; h < hop_count(); ++h) {
    const auto [from, to] = hop(h);
    const auto id = net.link_between(from, to);
    expects(id.has_value(), "every hop has a link in the network",
            "missing link " + net.node_name(from) + " -- " +
                net.node_name(to));
    result.push_back(*id);
  }
  return result;
}

std::vector<link::LinkModel> Path::hop_models(const Network& net) const {
  std::vector<link::LinkModel> result;
  result.reserve(hop_count());
  for (LinkId id : resolve_links(net)) result.push_back(net.link(id).model);
  return result;
}

bool Path::uses_link(const Network& net, LinkId link) const {
  for (LinkId id : resolve_links(net))
    if (id == link) return true;
  return false;
}

std::string Path::to_string(const Network& net) const {
  std::string result;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) result += " -> ";
    result += net.node_name(nodes_[i]);
  }
  return result;
}

Path Path::concatenate(const Path& peer, const Path& existing) {
  expects(peer.destination() == existing.source(),
          "peer path ends where the existing path starts");
  std::vector<NodeId> nodes = peer.nodes_;
  nodes.insert(nodes.end(), existing.nodes_.begin() + 1,
               existing.nodes_.end());
  return Path(std::move(nodes));
}

}  // namespace whart::net
