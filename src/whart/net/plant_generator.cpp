#include "whart/net/plant_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::net {

namespace {

/// Largest-remainder apportionment of `total` devices over the hop-depth
/// fractions; guarantees the counts sum to `total` and depth 1 gets at
/// least one device (someone must talk to the gateway directly).
std::vector<std::uint32_t> apportion_depths(const PlantProfile& profile) {
  const std::vector<double> fractions{
      profile.fraction_one_hop, profile.fraction_two_hop,
      profile.fraction_three_hop, profile.fraction_four_hop};
  const double sum = std::accumulate(fractions.begin(), fractions.end(), 0.0);
  expects(std::abs(sum - 1.0) < 1e-9, "hop fractions sum to 1");

  std::vector<std::uint32_t> counts(fractions.size());
  std::vector<std::pair<double, std::size_t>> remainders;
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double exact = fractions[i] * profile.device_count;
    counts[i] = static_cast<std::uint32_t>(std::floor(exact));
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < profile.device_count; ++k, ++assigned)
    ++counts[remainders[k % remainders.size()].second];
  if (counts[0] == 0) {
    // Steal one device from the deepest non-empty tier.
    for (std::size_t i = counts.size(); i-- > 1;) {
      if (counts[i] > 0) {
        --counts[i];
        ++counts[0];
        break;
      }
    }
  }
  // A depth can only be populated when the previous depth is.
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > 0 && counts[i - 1] == 0) {
      counts[i - 1] += counts[i];
      counts[i] = 0;
    }
  }
  return counts;
}

}  // namespace

GeneratedPlant generate_plant(const PlantProfile& profile) {
  expects(profile.device_count >= 1, "at least one device");
  expects(profile.min_availability > 0.0 &&
              profile.min_availability <= profile.max_availability &&
              profile.max_availability <= 1.0,
          "0 < min_availability <= max_availability <= 1");

  numeric::Xoshiro256 rng(profile.seed);
  const auto draw_model = [&] {
    const double span =
        profile.max_availability - profile.min_availability;
    double availability;
    if (profile.availability_levels == 0) {
      availability = profile.min_availability + rng.uniform() * span;
    } else if (profile.availability_levels == 1) {
      availability = profile.min_availability + span / 2.0;
    } else {
      const std::uint64_t level = rng.below(profile.availability_levels);
      availability = profile.min_availability +
                     span * static_cast<double>(level) /
                         static_cast<double>(profile.availability_levels - 1);
    }
    return link::LinkModel::from_availability(availability,
                                              profile.recovery_probability);
  };

  const std::vector<std::uint32_t> depth_counts = apportion_depths(profile);

  Network network;
  std::vector<std::vector<NodeId>> by_depth(depth_counts.size() + 1);
  by_depth[0].push_back(kGateway);
  std::uint32_t device_number = 1;
  for (std::size_t depth = 1; depth <= depth_counts.size(); ++depth) {
    for (std::uint32_t i = 0; i < depth_counts[depth - 1]; ++i) {
      const NodeId node =
          network.add_node("n" + std::to_string(device_number++));
      const auto& parents = by_depth[depth - 1];
      const NodeId parent = parents[rng.below(parents.size())];
      network.add_link(node, parent, draw_model());
      by_depth[depth].push_back(node);
    }
  }

  // One uplink path per device, following the single relay chain upward.
  std::vector<Path> paths;
  for (std::uint32_t id = 1; id < network.node_count(); ++id) {
    std::vector<NodeId> chain{NodeId{id}};
    while (chain.back() != kGateway) {
      // Each node has exactly one neighbor closer to the gateway: the
      // first neighbor added (its parent).
      const auto neighbors = network.neighbors(chain.back());
      chain.push_back(neighbors.front());
    }
    paths.emplace_back(std::move(chain));
  }

  const std::uint32_t fup = required_uplink_slots(paths);
  Schedule schedule = build_schedule(paths, fup, profile.policy);
  return GeneratedPlant{std::move(network), std::move(paths),
                        std::move(schedule),
                        SuperframeConfig::symmetric(fup)};
}

}  // namespace whart::net
