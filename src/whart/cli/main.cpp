// whart_cli — analyze a WirelessHART network spec: per-path reachability,
// delay and utilization, plus optional energy/stability reports, CSV
// export and a Monte-Carlo cross-check.
//
// Usage:
//   whart_cli <spec-file> [options]
//   whart_cli --typical   [options]          # the paper's Fig. 12 network
//   cat spec | whart_cli - [options]
//
// Options:
//   --interval <Is>      override the reporting interval
//   --simulate <N>       Monte-Carlo cross-check over N intervals
//   --energy             per-node energy / battery-life report
//   --stability <R>      assess every path against a target reachability
//   --csv <file>         export per-path measures as CSV
//   --sweep <file>       export an availability sweep (0.65..0.99) of the
//                        worst path as CSV (reachability, delay, jitter)
//   --shards <n>         Monte-Carlo shards (deterministic per shard count)
//   --channel <spec>     correlated burst-loss channel overlay:
//                        iid | ge:pgb,pbg,eg,eb | chain:<file>.  Every
//                        hop runs the overlay rescaled to its own
//                        steady-state availability; the analysis solves
//                        the channel-enlarged DTMC, --simulate draws
//                        from the same chains (kChannel regime) and
//                        --sweep evaluates its grid under the overlay
//   --kernel <name>      transient solver: per-slot (default) or
//                        superframe (superframe-product collapse; same
//                        results to rounding, faster for long intervals)
//   --reuse-skeleton     share the symbolic solve phase between paths of
//                        identical schedule shape and across sweep grid
//                        points (default; bitwise-identical results)
//   --no-reuse-skeleton  rebuild every solve from scratch (the
//                        differential oracle's baseline path)
//   --batch-lanes <n>    SoA batch width of the --sweep grid: same-shape
//                        sweep points refill and solve n lanes at a time
//                        through the vectorized batch core (DESIGN.md
//                        §13; 1 = scalar refills, requires
//                        --reuse-skeleton; sweep values agree with
//                        scalar to rounding)
//   --what-if link=<id>:<pfl>
//                        incremental what-if (DESIGN.md §15): re-evaluate
//                        the network with link <id>'s per-slot failure
//                        probability set to <pfl> (its recovery
//                        probability kept), re-solving only the paths
//                        scheduled over that link through the cached
//                        cycle products; prints the affected paths'
//                        measure deltas and the new network summary.
//                        Not available together with --channel

//   --metrics[=<file>]   dump the metrics-registry snapshot as JSON
//                        (default file: whart_metrics.json)
//   --trace[=<file>]     record trace spans and dump Chrome trace_event
//                        JSON (default file: whart_trace.json); also
//                        prints the aggregate span table
//   --obs-dir=<dir>      full observability bundle: enables metrics,
//                        tracing, the flight recorder and a background
//                        sampler, then writes metrics.json, trace.json,
//                        events.jsonl, metrics.prom and timeseries.csv
//                        into <dir> (created if missing)
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "whart/cli/spec_parser.hpp"
#include "whart/common/obs.hpp"
#include "whart/hart/energy.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/stability.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/hart/what_if.hpp"
#include "whart/net/typical_network.hpp"
#include "whart/report/csv.hpp"
#include "whart/report/histogram.hpp"
#include "whart/report/metrics_export.hpp"
#include "whart/report/obs_dir.hpp"
#include "whart/report/table.hpp"
#include "whart/sim/simulator.hpp"

namespace {

using whart::report::Table;

struct Options {
  std::uint64_t simulate_intervals = 0;
  std::uint32_t interval_override = 0;
  bool energy = false;
  double stability_target = 0.0;  // 0 = off
  std::string csv_path;
  std::string sweep_path;
  std::uint64_t shards = 0;  // 0 = simulator default
  std::string channel_spec;  // empty = per-slot-independent links
  std::string metrics_path;
  std::string trace_path;
  std::string obs_dir;
  whart::hart::TransientKernel kernel =
      whart::hart::TransientKernel::kPerSlot;
  bool reuse_skeleton = true;
  std::size_t batch_lanes = 1;
  std::string what_if_spec;  // "link=<id>:<pfl>", empty = off
  // Whether the flags --channel silently bypasses were passed explicitly
  // (the combination earns a warning and a `cli.ignored_flags` count).
  bool batch_lanes_set = false;
  bool reuse_flag_set = false;
};

int usage() {
  std::cerr << "usage: whart_cli <spec-file>|-|--typical "
               "[--interval <Is>] [--simulate <intervals>] [--energy] "
               "[--stability <targetR>] [--csv <file>] [--sweep <file>] "
               "[--shards <n>] "
               "[--channel iid|ge:pgb,pbg,eg,eb|chain:<file>] "
               "[--kernel per-slot|superframe] "
               "[--reuse-skeleton|--no-reuse-skeleton] "
               "[--batch-lanes <n>] [--what-if link=<id>:<pfl>] "
               "[--metrics[=<file>]] [--trace[=<file>]] "
               "[--obs-dir=<dir>]\n";
  return 2;
}

void print_energy(const whart::cli::ParsedSpec& spec,
                  const whart::net::Schedule& schedule) {
  const auto energies = whart::hart::estimate_node_energy(
      spec.network, spec.paths, schedule, spec.superframe,
      spec.reporting_interval);
  const whart::hart::EnergyParameters params;
  const double interval_ms = spec.superframe.cycle_milliseconds() *
                             static_cast<double>(spec.reporting_interval);

  std::cout << "\nPer-node energy (tx " << params.tx_mj_per_attempt
            << " mJ, rx " << params.rx_mj_per_attempt
            << " mJ per attempt, battery " << params.battery_joules / 1000.0
            << " kJ):\n";
  Table table({"node", "tx/interval", "rx/interval", "mJ/interval",
               "battery life (days)"});
  for (const auto& node : energies) {
    const double days = node.battery_life_days(params, interval_ms);
    table.add_row({spec.network.node_name(node.node),
                   Table::fixed(node.tx_attempts_per_interval, 3),
                   Table::fixed(node.rx_attempts_per_interval, 3),
                   Table::fixed(node.mj_per_interval, 4),
                   std::isinf(days) ? "inf" : Table::fixed(days, 0)});
  }
  table.print(std::cout);
  std::cout << "hottest node: "
            << spec.network.node_name(
                   energies[whart::hart::hottest_node(energies)].node)
            << "\n";
}

void print_stability(const whart::cli::ParsedSpec& spec,
                     const whart::hart::NetworkMeasures& measures,
                     double target) {
  std::cout << "\nStability vs target R >= " << Table::percent(target, 2)
            << " (tolerating at most 1 consecutive loss):\n";
  Table table({"path", "R", "E[N] to loss", "E[N] to 2-loss run",
               "verdict"});
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    const auto a = whart::hart::assess_stability(
        measures.per_path[p].reachability,
        whart::hart::StabilityRequirement{2, target});
    table.add_row(
        {spec.paths[p].to_string(spec.network),
         Table::percent(a.reachability, 3),
         Table::fixed(a.expected_intervals_to_first_loss, 0),
         Table::fixed(a.expected_intervals_to_violation, 0),
         a.meets_reachability ? "ok" : "BELOW TARGET"});
  }
  table.print(std::cout);
}

void write_csv(const whart::cli::ParsedSpec& spec,
               const whart::hart::NetworkMeasures& measures,
               const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write '" + path + "'");
  whart::report::CsvWriter csv(file);
  csv.write_row({"path", "hops", "reachability", "expected_delay_ms",
                 "utilization", "utilization_delivered",
                 "expected_intervals_to_first_loss"});
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    const auto& m = measures.per_path[p];
    csv.write_row({spec.paths[p].to_string(spec.network),
                   std::to_string(spec.paths[p].hop_count()),
                   std::to_string(m.reachability),
                   std::to_string(m.expected_delay_ms),
                   std::to_string(m.utilization),
                   std::to_string(m.utilization_delivered),
                   std::to_string(m.expected_intervals_to_first_loss)});
  }
  std::cout << "\nwrote " << spec.paths.size() << " rows to " << path
            << "\n";
}

/// The --what-if mode: re-evaluate the network with one link's failure
/// probability moved to the requested value, through the incremental
/// engine (DESIGN.md §15) — only paths scheduled over the link re-solve.
void print_what_if(const whart::cli::ParsedSpec& spec,
                   const whart::net::Schedule& schedule,
                   const Options& options) {
  const std::string& raw = options.what_if_spec;
  const char* expected = "--what-if expects link=<id>:<pfl>";
  if (raw.rfind("link=", 0) != 0)
    throw std::runtime_error(std::string(expected) + ", got '" + raw + "'");
  const std::size_t colon = raw.find(':', 5);
  if (colon == std::string::npos || colon == 5)
    throw std::runtime_error(std::string(expected) + ", got '" + raw + "'");
  const whart::net::LinkId link{
      static_cast<std::uint32_t>(std::stoul(raw.substr(5, colon - 5)))};
  const double pfl = std::stod(raw.substr(colon + 1));
  if (link.value >= spec.network.link_count())
    throw std::runtime_error("--what-if: unknown link id " +
                             std::to_string(link.value));
  if (!(pfl >= 0.0) || !(pfl < 1.0))
    throw std::runtime_error("--what-if: pfl must be in [0, 1)");

  // The link keeps its measured recovery probability; only the per-slot
  // failure probability moves, so the what-if availability follows from
  // the two-state model's stationary distribution.
  const whart::link::LinkModel& base = spec.network.link(link).model;
  const double prc = base.recovery_probability();
  const double availability = prc / (prc + pfl);

  whart::hart::WhatIfOptions what_if_options;
  what_if_options.kernel = options.kernel;
  whart::hart::WhatIfEngine engine(spec.network, spec.paths, schedule,
                                   spec.superframe, spec.reporting_interval,
                                   what_if_options);
  const std::vector<whart::hart::PathMeasures>& baseline = engine.baseline();
  whart::hart::WhatIfResult result = engine.what_if(link, availability);

  const whart::net::Link& edge = spec.network.link(link);
  std::cout << "\nWhat-if: link " << link.value << " ("
            << spec.network.node_name(edge.a) << "-"
            << spec.network.node_name(edge.b) << ") pfl "
            << Table::fixed(base.failure_probability(), 4) << " -> "
            << Table::fixed(pfl, 4) << " (availability "
            << Table::percent(base.steady_state_availability(), 2) << " -> "
            << Table::percent(availability, 2) << ")\n";

  Table table({"affected path", "R (base)", "R (what-if)", "E[delay] base",
               "E[delay] what-if"});
  for (std::size_t p : engine.affected_paths(link)) {
    table.add_row({spec.paths[p].to_string(spec.network),
                   Table::percent(baseline[p].reachability, 3),
                   Table::percent(result.per_path[p].reachability, 3),
                   Table::fixed(baseline[p].expected_delay_ms, 1),
                   Table::fixed(result.per_path[p].expected_delay_ms, 1)});
  }
  table.print(std::cout);

  const std::size_t resolved = result.paths_resolved;
  const std::size_t reused = result.paths_reused;
  const whart::hart::NetworkMeasures what_if_measures =
      whart::hart::aggregate_measures(std::move(result.per_path));
  std::cout << "what-if network: E[Gamma] = "
            << Table::fixed(what_if_measures.mean_delay_ms, 1)
            << " ms, utilization U = "
            << Table::fixed(what_if_measures.network_utilization, 4) << "\n"
            << "incremental solver: " << resolved << " paths re-solved, "
            << reused << " reused from cache\n";
}

void print_analysis(const whart::cli::ParsedSpec& spec,
                    const Options& options) {
  const std::uint64_t simulate_intervals = options.simulate_intervals;
  const whart::net::Schedule schedule = whart::net::build_schedule(
      spec.paths, spec.superframe.uplink_slots, spec.policy);

  // Parsed here, inside main's try block, so a malformed spec reports as
  // a normal CLI error rather than escaping the argument loop.
  std::optional<whart::link::ChannelModel> channel;
  if (!options.channel_spec.empty())
    channel = whart::link::ChannelModel::parse(options.channel_spec);

  // --channel routes every solve through the channel-enlarged DTMC,
  // which has no skeleton-reuse or batched-refill path; flags asking for
  // those would otherwise be swallowed silently.
  if (channel.has_value()) {
    std::uint64_t ignored = 0;
    if (options.batch_lanes_set) {
      std::cerr << "whart_cli: warning: --batch-lanes is ignored with "
                   "--channel (channel-enlarged solves have no batch "
                   "path)\n";
      ++ignored;
    }
    if (options.reuse_flag_set) {
      std::cerr << "whart_cli: warning: --reuse-skeleton/--no-reuse-skeleton "
                   "is ignored with --channel (channel-enlarged solves "
                   "rebuild from scratch)\n";
      ++ignored;
    }
    if (ignored > 0) WHART_COUNT_N("cli.ignored_flags", ignored);
  }
  if (channel.has_value() && !options.what_if_spec.empty())
    throw std::runtime_error(
        "--what-if is not available together with --channel (the "
        "incremental engine caches slot-independent cycle products)");

  whart::hart::AnalysisOptions analysis_options;
  analysis_options.kernel = options.kernel;
  analysis_options.reuse_skeleton = options.reuse_skeleton;
  analysis_options.channel = channel;
  const whart::hart::NetworkMeasures measures = whart::hart::analyze_network(
      spec.network, spec.paths, schedule, spec.superframe,
      spec.reporting_interval, analysis_options);

  std::cout << "Schedule eta = " << schedule.to_string(spec.network) << "\n";
  std::cout << "Superframe: Fup=" << spec.superframe.uplink_slots
            << " Fdown=" << spec.superframe.downlink_slots
            << "  reporting interval Is=" << spec.reporting_interval
            << "\n";
  if (channel.has_value()) {
    std::cout << "Channel: " << channel->to_string();
    if (channel->state_count() == 2)
      std::cout << "  (mean bad burst "
                << Table::fixed(channel->mean_bad_burst_length(), 2)
                << " slots)";
    std::cout << "\n";
  }
  std::cout << "\n";

  Table table({"path", "hops", "reachability", "E[delay] ms", "utilization",
               "E[intervals to 1st loss]"});
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    const auto& m = measures.per_path[p];
    table.add_row({spec.paths[p].to_string(spec.network),
                   std::to_string(spec.paths[p].hop_count()),
                   Table::percent(m.reachability, 3),
                   Table::fixed(m.expected_delay_ms, 1),
                   Table::fixed(m.utilization, 4),
                   Table::fixed(m.expected_intervals_to_first_loss, 1)});
  }
  table.print(std::cout);

  std::cout << "\nNetwork: E[Gamma] = "
            << Table::fixed(measures.mean_delay_ms, 1)
            << " ms, utilization U = "
            << Table::fixed(measures.network_utilization, 4)
            << "\nbottleneck (delay): path "
            << spec.paths[measures.bottleneck_by_delay].to_string(
                   spec.network)
            << "\nbottleneck (reachability): path "
            << spec.paths[measures.bottleneck_by_reachability].to_string(
                   spec.network)
            << "\n";

  const whart::hart::NetworkDiagnostics& diag = measures.diagnostics;
  std::cout << "solver: " << diag.dtmc_solves << " DTMC solves ("
            << diag.states_solved << " states), " << diag.cache_hits
            << " cache hits, max mass residual "
            << diag.max_mass_residual << "\n";

  std::cout << "\nOverall delay distribution:\n";
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const auto& point : measures.overall_delay_distribution) {
    labels.push_back(Table::fixed(point.delay_ms, 0) + " ms");
    values.push_back(point.probability);
  }
  whart::report::print_histogram(std::cout, labels, values);

  if (simulate_intervals > 0) {
    whart::sim::SimulatorConfig sim_config;
    sim_config.superframe = spec.superframe;
    sim_config.reporting_interval = spec.reporting_interval;
    sim_config.intervals = simulate_intervals;
    if (options.shards > 0)
      sim_config.shards = static_cast<std::uint32_t>(options.shards);
    if (channel.has_value()) {
      sim_config.regime = whart::sim::LinkRegime::kChannel;
      sim_config.channel = channel;
    }
    whart::sim::NetworkSimulator simulator(spec.network, spec.paths,
                                           schedule, sim_config);
    const whart::sim::SimulationReport report = simulator.run();

    std::cout << "\nMonte-Carlo cross-check (" << simulate_intervals
              << " intervals):\n";
    Table sim_table({"path", "R (model)", "R (simulated)", "95% CI"});
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      const auto ci = report.per_path[p].reachability_interval();
      sim_table.add_row({spec.paths[p].to_string(spec.network),
                         Table::percent(measures.per_path[p].reachability, 3),
                         Table::percent(report.per_path[p].reachability(), 3),
                         "[" + Table::percent(ci.low, 3) + ", " +
                             Table::percent(ci.high, 3) + "]"});
    }
    sim_table.print(std::cout);
  }

  if (options.energy) print_energy(spec, schedule);
  if (options.stability_target > 0.0)
    print_stability(spec, measures, options.stability_target);
  if (!options.csv_path.empty())
    write_csv(spec, measures, options.csv_path);
  if (!options.sweep_path.empty()) {
    const std::size_t worst = measures.bottleneck_by_reachability;
    const whart::hart::PathModelConfig config =
        whart::hart::PathModelConfig::from_schedule(
            schedule, worst, spec.superframe, spec.reporting_interval);
    const whart::hart::SweepSeries series = whart::hart::sweep_availability(
        config, whart::hart::linspace(0.65, 0.99, 18), 0, options.kernel,
        options.reuse_skeleton, options.batch_lanes,
        channel.has_value() ? &*channel : nullptr);
    std::ofstream file(options.sweep_path);
    if (!file)
      throw std::runtime_error("cannot write '" + options.sweep_path + "'");
    whart::hart::write_series_csv(file, series);
    std::cout << "\nwrote availability sweep of path "
              << spec.paths[worst].to_string(spec.network) << " to "
              << options.sweep_path << "\n";
  }
  if (!options.what_if_spec.empty())
    print_what_if(spec, schedule, options);
}

/// Write the --metrics / --trace dumps after the analysis has run.
void write_observability(const Options& options) {
  namespace obs = whart::common::obs;
  const std::vector<obs::SpanAggregate> spans =
      options.trace_path.empty()
          ? std::vector<obs::SpanAggregate>{}
          : obs::TraceCollector::instance().aggregate();

  if (!options.metrics_path.empty()) {
    std::ofstream file(options.metrics_path);
    if (!file)
      throw std::runtime_error("cannot write '" + options.metrics_path + "'");
    whart::report::write_metrics_json(file, obs::Registry::instance().snapshot(),
                                      spans);
    std::cout << "\nwrote metrics snapshot to " << options.metrics_path
              << "\n";
  }

  if (!options.trace_path.empty()) {
    std::ofstream file(options.trace_path);
    if (!file)
      throw std::runtime_error("cannot write '" + options.trace_path + "'");
    whart::report::write_chrome_trace_json(
        file, obs::TraceCollector::instance().events());
    std::cout << "\nSpan aggregates:\n";
    whart::report::print_span_table(std::cout, spans);
    std::cout << "wrote Chrome trace to " << options.trace_path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  std::string source = argv[1];
  Options options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--simulate" && i + 1 < argc)
      options.simulate_intervals = std::stoull(argv[++i]);
    else if (arg == "--interval" && i + 1 < argc)
      options.interval_override =
          static_cast<std::uint32_t>(std::stoul(argv[++i]));
    else if (arg == "--energy")
      options.energy = true;
    else if (arg == "--stability" && i + 1 < argc)
      options.stability_target = std::stod(argv[++i]);
    else if (arg == "--csv" && i + 1 < argc)
      options.csv_path = argv[++i];
    else if (arg == "--sweep" && i + 1 < argc)
      options.sweep_path = argv[++i];
    else if (arg == "--shards" && i + 1 < argc)
      options.shards = std::stoull(argv[++i]);
    else if (arg == "--channel" && i + 1 < argc)
      options.channel_spec = argv[++i];
    else if (arg == "--kernel" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "per-slot")
        options.kernel = whart::hart::TransientKernel::kPerSlot;
      else if (name == "superframe")
        options.kernel = whart::hart::TransientKernel::kSuperframeProduct;
      else
        return usage();
    }
    else if (arg == "--reuse-skeleton") {
      options.reuse_skeleton = true;
      options.reuse_flag_set = true;
    } else if (arg == "--no-reuse-skeleton") {
      options.reuse_skeleton = false;
      options.reuse_flag_set = true;
    } else if (arg == "--batch-lanes" && i + 1 < argc) {
      options.batch_lanes = std::stoull(argv[++i]);
      options.batch_lanes_set = true;
    } else if (arg == "--what-if" && i + 1 < argc)
      options.what_if_spec = argv[++i];
    else if (arg == "--metrics")
      options.metrics_path = "whart_metrics.json";
    else if (arg.rfind("--metrics=", 0) == 0)
      options.metrics_path = arg.substr(10);
    else if (arg == "--trace")
      options.trace_path = "whart_trace.json";
    else if (arg.rfind("--trace=", 0) == 0)
      options.trace_path = arg.substr(8);
    else if (arg.rfind("--obs-dir=", 0) == 0)
      options.obs_dir = arg.substr(10);
    else
      return usage();
  }
  if (!options.trace_path.empty()) {
    whart::common::obs::set_trace_enabled(true);
    whart::common::obs::TraceCollector::instance().clear();
  }

  try {
    // The bundle session turns every surface on before the analysis and
    // writes the five artifacts when it goes out of scope (or earlier,
    // at the explicit finish() below).
    std::unique_ptr<whart::report::ObsDirSession> obs_session;
    if (!options.obs_dir.empty())
      obs_session =
          std::make_unique<whart::report::ObsDirSession>(options.obs_dir);

    whart::cli::ParsedSpec spec;
    if (source == "--typical") {
      whart::net::TypicalNetwork typical = whart::net::make_typical_network();
      spec.network = std::move(typical.network);
      spec.paths = std::move(typical.paths);
      spec.superframe = typical.superframe;
      spec.reporting_interval = whart::net::kTypicalReportingInterval;
    } else if (source == "-") {
      spec = whart::cli::parse_spec(std::cin);
    } else {
      std::ifstream file(source);
      if (!file) {
        std::cerr << "whart_cli: cannot open '" << source << "'\n";
        return 1;
      }
      spec = whart::cli::parse_spec(file);
    }
    if (options.interval_override > 0)
      spec.reporting_interval = options.interval_override;
    print_analysis(spec, options);
    if (obs_session) obs_session->finish();
    write_observability(options);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "whart_cli: " << error.what() << "\n";
    return 1;
  }
}
