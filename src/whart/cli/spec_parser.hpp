// Text format for specifying a WirelessHART network to the CLI tool — the
// counterpart of the paper's "tool to automatically derive the underlying
// model of a fully specified network".
//
// Format (one directive per line, '#' starts a comment):
//
//   superframe <Fup> <Fdown>        # optional; default: fitted symmetric
//   interval <Is>                   # optional; default 4
//   schedule shortest|longest       # optional; default shortest
//   node <name>                     # declare a field device
//   link <a> <b> avail <pi_up>      # one of the four link forms
//   link <a> <b> pfl <p> prc <p>
//   link <a> <b> ber <ber>
//   link <a> <b> snr <Eb/N0 linear>
//   path <src> <relay>... G         # pin this device's route; devices
//                                   # without a path directive are routed
//                                   # by shortest path automatically
//
// The gateway is always called "G" and need not be declared.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::cli {

/// Thrown on malformed input, with a line number in the message.
class parse_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The result of parsing a network spec.
struct ParsedSpec {
  net::Network network;
  std::vector<net::Path> paths;
  net::SuperframeConfig superframe;
  std::uint32_t reporting_interval = 4;
  net::SchedulingPolicy policy = net::SchedulingPolicy::kShortestPathsFirst;
};

/// Parse a spec from a stream; applies the documented defaults (paths via
/// shortest-path routing when none are given; superframe fitted to the
/// paths when not specified).
ParsedSpec parse_spec(std::istream& in);

/// Parse from a string.
ParsedSpec parse_spec_string(const std::string& text);

}  // namespace whart::cli
