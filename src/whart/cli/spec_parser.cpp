#include "whart/cli/spec_parser.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

#include "whart/net/routing.hpp"
#include "whart/phy/snr.hpp"

namespace whart::cli {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw parse_error("spec line " + std::to_string(line) + ": " + message);
}

double parse_double(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, "trailing characters in number");
    return value;
  } catch (const parse_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

std::uint32_t parse_u32(const std::string& token, std::size_t line) {
  const double value = parse_double(token, line);
  if (value < 0 || value != static_cast<std::uint32_t>(value))
    fail(line, "expected a non-negative integer, got '" + token + "'");
  return static_cast<std::uint32_t>(value);
}

net::NodeId node_or_fail(const net::Network& network, const std::string& name,
                         std::size_t line) {
  const auto id = network.find_node(name);
  if (!id) fail(line, "unknown node '" + name + "'");
  return *id;
}

}  // namespace

ParsedSpec parse_spec(std::istream& in) {
  ParsedSpec spec;
  bool superframe_given = false;
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream tokens(line);
    std::vector<std::string> words;
    for (std::string word; tokens >> word;) words.push_back(word);
    if (words.empty()) continue;

    const std::string& directive = words[0];
    if (directive == "superframe") {
      if (words.size() != 3) fail(line_number, "superframe <Fup> <Fdown>");
      spec.superframe.uplink_slots = parse_u32(words[1], line_number);
      spec.superframe.downlink_slots = parse_u32(words[2], line_number);
      if (spec.superframe.uplink_slots == 0)
        fail(line_number, "Fup must be positive");
      superframe_given = true;
    } else if (directive == "interval") {
      if (words.size() != 2) fail(line_number, "interval <Is>");
      spec.reporting_interval = parse_u32(words[1], line_number);
      if (spec.reporting_interval == 0)
        fail(line_number, "Is must be positive");
    } else if (directive == "schedule") {
      if (words.size() != 2) fail(line_number, "schedule shortest|longest");
      if (words[1] == "shortest")
        spec.policy = net::SchedulingPolicy::kShortestPathsFirst;
      else if (words[1] == "longest")
        spec.policy = net::SchedulingPolicy::kLongestPathsFirst;
      else
        fail(line_number, "unknown policy '" + words[1] + "'");
    } else if (directive == "node") {
      if (words.size() != 2) fail(line_number, "node <name>");
      if (words[1] == "G") fail(line_number, "'G' is reserved");
      spec.network.add_node(words[1]);
    } else if (directive == "link") {
      if (words.size() < 5) fail(line_number, "link <a> <b> <form>...");
      const net::NodeId a = node_or_fail(spec.network, words[1], line_number);
      const net::NodeId b = node_or_fail(spec.network, words[2], line_number);
      const std::string& form = words[3];
      if (form == "avail" && words.size() == 5) {
        spec.network.add_link(a, b,
                              link::LinkModel::from_availability(
                                  parse_double(words[4], line_number)));
      } else if (form == "pfl" && words.size() == 7 && words[5] == "prc") {
        spec.network.add_link(
            a, b,
            link::LinkModel(parse_double(words[4], line_number),
                            parse_double(words[6], line_number)));
      } else if (form == "ber" && words.size() == 5) {
        spec.network.add_link(a, b,
                              link::LinkModel::from_ber(
                                  parse_double(words[4], line_number)));
      } else if (form == "snr" && words.size() == 5) {
        spec.network.add_link(
            a, b,
            link::LinkModel::from_snr(phy::EbN0::from_linear(
                parse_double(words[4], line_number))));
      } else {
        fail(line_number, "bad link form; see header comment");
      }
    } else if (directive == "path") {
      if (words.size() < 3) fail(line_number, "path <src> ... <dst>");
      std::vector<net::NodeId> nodes;
      for (std::size_t i = 1; i < words.size(); ++i)
        nodes.push_back(node_or_fail(spec.network, words[i], line_number));
      spec.paths.emplace_back(std::move(nodes));
    } else {
      fail(line_number, "unknown directive '" + directive + "'");
    }
  }

  if (spec.network.node_count() < 2)
    throw parse_error("spec declares no field devices");
  // Explicit `path` directives pin the route of their source device;
  // every other device gets a shortest-path route.
  for (std::uint32_t id = 1; id < spec.network.node_count(); ++id) {
    const net::NodeId source{id};
    const bool pinned =
        std::any_of(spec.paths.begin(), spec.paths.end(),
                    [&](const net::Path& p) { return p.source() == source; });
    if (pinned) continue;
    auto routed = net::shortest_uplink_path(spec.network, source);
    if (!routed.has_value())
      throw parse_error("device '" + spec.network.node_name(source) +
                        "' cannot reach the gateway");
    spec.paths.push_back(std::move(*routed));
  }
  if (!superframe_given)
    spec.superframe =
        net::SuperframeConfig::symmetric(net::required_uplink_slots(spec.paths));
  return spec;
}

ParsedSpec parse_spec_string(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in);
}

}  // namespace whart::cli
