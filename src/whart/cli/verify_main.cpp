// whart_verify — property-based verification of the analysis engine:
// fuzz random scenarios, check structural invariants and cross-validate
// the production solver against an independent dense reference solver
// and the Monte-Carlo simulator (statistical confidence bounds, no
// fixed epsilons).  Failures are shrunk to minimal reproducers and
// their seeds persisted to a corpus for replay.
//
// Usage:
//   whart_verify [options]
//
// Options:
//   --seed <s>           base seed of the fresh-scenario stream (default 1)
//   --runs <n>           fresh scenarios to generate (default 100)
//   --corpus <file>      seed corpus to replay and extend
//   --no-shrink          report failures without shrinking them
//   --no-sim             deterministic legs only (skip the simulator)
//   --intervals <n>      Monte-Carlo intervals per scenario (default 4000)
//   --shards <n>         Monte-Carlo shards (default 4)
//   --threads <n>        scenario fan-out workers (default: WHART_THREADS)
//   --channel-prob <p>   probability [0, 1] that a generated scenario
//                        carries a correlated-channel overlay (default
//                        0.45; 1 makes every scenario a channel one —
//                        the GE row of the CI fuzz matrix)
//   --inject <fault>     corrupt the production leg on purpose:
//                        link-bias | discard-leak | cycle-shift |
//                        product-entry | stale-skeleton-value |
//                        lane-swap | channel-state-leak |
//                        stale-product-row (a healthy harness must
//                        then FAIL)
//   --metrics[=<file>]   dump the obs metrics snapshot as JSON
//                        (default file: whart_verify_metrics.json)
//   --obs-dir=<dir>      full observability bundle (metrics.json,
//                        trace.json, events.jsonl, metrics.prom,
//                        timeseries.csv) written into <dir>
//
// Exit status: 0 when every scenario passes, 1 on any finding, 2 on
// usage errors.  Reproduce any reported failure with --seed <seed>
// --runs 1.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "whart/common/obs.hpp"
#include "whart/report/metrics_export.hpp"
#include "whart/report/obs_dir.hpp"
#include "whart/verify/runner.hpp"

namespace {

int usage() {
  std::cerr << "usage: whart_verify [--seed <s>] [--runs <n>] "
               "[--corpus <file>] [--no-shrink] [--no-sim] "
               "[--intervals <n>] [--shards <n>] [--threads <n>] "
               "[--channel-prob <p>] "
               "[--inject link-bias|discard-leak|cycle-shift|product-entry|"
               "stale-skeleton-value|lane-swap|channel-state-leak|"
               "stale-product-row] "
               "[--metrics[=<file>]] [--obs-dir=<dir>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  whart::verify::VerifyConfig config;
  std::string metrics_path;
  std::string obs_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    try {
      if (arg == "--seed") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.seed = std::stoull(v);
      } else if (arg == "--runs") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.runs = std::stoull(v);
      } else if (arg == "--corpus") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.corpus_path = v;
      } else if (arg == "--no-shrink") {
        config.shrink = false;
      } else if (arg == "--no-sim") {
        config.oracle.run_simulation = false;
      } else if (arg == "--intervals") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.oracle.sim_intervals = std::stoull(v);
      } else if (arg == "--shards") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.oracle.sim_shards =
            static_cast<std::uint32_t>(std::stoul(v));
      } else if (arg == "--threads") {
        const char* v = value();
        if (v == nullptr) return usage();
        config.threads = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--channel-prob") {
        const char* v = value();
        if (v == nullptr) return usage();
        const double p = std::stod(v);
        if (p < 0.0 || p > 1.0) return usage();
        config.limits.channel_probability = p;
      } else if (arg == "--inject") {
        const char* v = value();
        if (v == nullptr) return usage();
        const std::string fault = v;
        if (fault == "link-bias")
          config.oracle.injection = whart::verify::Injection::kLinkBias;
        else if (fault == "discard-leak")
          config.oracle.injection = whart::verify::Injection::kDiscardLeak;
        else if (fault == "cycle-shift")
          config.oracle.injection = whart::verify::Injection::kCycleShift;
        else if (fault == "product-entry")
          config.oracle.injection = whart::verify::Injection::kProductEntry;
        else if (fault == "stale-skeleton-value")
          config.oracle.injection =
              whart::verify::Injection::kStaleSkeletonValue;
        else if (fault == "lane-swap")
          config.oracle.injection = whart::verify::Injection::kLaneSwap;
        else if (fault == "channel-state-leak")
          config.oracle.injection =
              whart::verify::Injection::kChannelStateLeak;
        else if (fault == "stale-product-row")
          config.oracle.injection =
              whart::verify::Injection::kStaleProductRow;
        else
          return usage();
      } else if (arg == "--metrics") {
        metrics_path = "whart_verify_metrics.json";
      } else if (arg.starts_with("--metrics=")) {
        metrics_path = arg.substr(std::string("--metrics=").size());
      } else if (arg.starts_with("--obs-dir=")) {
        obs_dir = arg.substr(std::string("--obs-dir=").size());
      } else {
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }

  if (!metrics_path.empty()) whart::common::obs::set_metrics_enabled(true);
  std::unique_ptr<whart::report::ObsDirSession> obs_session;
  if (!obs_dir.empty())
    obs_session = std::make_unique<whart::report::ObsDirSession>(obs_dir);

  const whart::verify::VerifyReport report =
      whart::verify::run_verification(config);
  if (obs_session) obs_session->finish();

  std::cout << "scenarios: " << report.scenarios_run << " ("
            << report.corpus_replayed << " from corpus), simulated "
            << report.scenarios_simulated << ", statistical checks "
            << report.statistical_checks << "\n"
            << "invariant violations: " << report.invariant_violations
            << ", deterministic misses: " << report.deterministic_misses
            << ", CI-bound misses: " << report.ci_bound_misses << "\n";

  for (const whart::verify::VerifyFailure& failure : report.failures)
    std::cout << failure.summary();

  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path);
    if (!file) {
      std::cerr << "cannot write '" << metrics_path << "'\n";
      return 2;
    }
    whart::report::write_metrics_json(
        file, whart::common::obs::Registry::instance().snapshot());
    std::cout << "wrote metrics snapshot to " << metrics_path << "\n";
  }

  if (!report.ok()) {
    std::cout << report.failures.size()
              << " failing scenario(s); reproduce with --seed <seed> "
                 "--runs 1\n";
    return 1;
  }
  std::cout << "all scenarios passed\n";
  return 0;
}
