#include "whart/markov/steady_state.hpp"

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/linalg/lu.hpp"
#include "whart/linalg/matrix.hpp"

namespace whart::markov {

linalg::Vector steady_state_direct(const Dtmc& chain) {
  const std::size_t n = chain.num_states();
  expects(n > 0, "chain is non-empty");
  WHART_COUNT("markov.steady_state.direct.solves");
  WHART_OBSERVE("markov.steady_state.states", n);

  // Solve (P^T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
  linalg::Matrix system(n, n);
  for (std::size_t row = 0; row < n; ++row) {
    chain.matrix().for_each_in_row(row, [&](std::size_t col, double value) {
      system(col, row) += value;  // transpose
    });
  }
  for (std::size_t i = 0; i < n; ++i) system(i, i) -= 1.0;
  for (std::size_t j = 0; j < n; ++j) system(n - 1, j) = 1.0;

  linalg::Vector rhs(n);
  rhs[n - 1] = 1.0;
  linalg::Vector pi = linalg::solve(system, rhs);

  // Guard against tiny negative round-off.
  for (double& p : pi)
    if (p < 0.0 && p > -1e-12) p = 0.0;
  return pi;
}

linalg::Vector steady_state_power(const Dtmc& chain, double tolerance,
                                  std::uint64_t max_iterations) {
  const std::size_t n = chain.num_states();
  expects(n > 0, "chain is non-empty");
  linalg::Vector pi(n, 1.0 / static_cast<double>(n));
  std::uint64_t iterations = 0;
  double residual = 0.0;
  for (std::uint64_t it = 0; it < max_iterations; ++it) {
    // Lazy-chain step: pi' = (pi P + pi) / 2 — immune to periodicity.
    linalg::Vector next = chain.step(pi);
    next += pi;
    next *= 0.5;
    const double change = linalg::max_abs_diff(next, pi);
    pi = std::move(next);
    ++iterations;
    residual = change;
    if (change < tolerance) break;
  }
  WHART_COUNT("markov.steady_state.power.solves");
  WHART_COUNT_N("markov.steady_state.power.iterations", iterations);
  WHART_GAUGE_SET("markov.steady_state.power.last_residual", residual);
  return pi;
}

}  // namespace whart::markov
