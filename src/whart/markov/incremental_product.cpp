#include "whart/markov/incremental_product.hpp"

#include <algorithm>
#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::markov {

namespace {
constexpr std::size_t kNoTag = std::numeric_limits<std::size_t>::max();
}  // namespace

IncrementalProduct::IncrementalProduct(const ChainProductSkeleton& chain,
                                       const std::vector<CsrPattern>& factors)
    : chain_(&chain) {
  expects(factors.size() == chain.factor_count(),
          "one factor pattern per chain factor");
  expects(factors.front() == chain.partials().front(),
          "first factor matches the skeleton's first partial");

  // values index -> row, per factor (a flat expansion of row_start).
  row_of_.resize(factors.size());
  for (std::size_t k = 0; k < factors.size(); ++k) {
    const CsrPattern& f = factors[k];
    row_of_[k].resize(f.nonzeros());
    for (std::size_t r = 0; r < f.rows; ++r)
      for (std::size_t ki = f.row_start[r]; ki < f.row_start[r + 1]; ++ki)
        row_of_[k][ki] = r;
  }

  // Column -> rows transpose of every intermediate partial: when factor
  // k's row i changes, the rows of partial k that move are exactly the
  // rows r with partial_{k-1}(r, i) != 0 — and once a row is dirty it
  // stays dirty for every later partial, because row r of partial k
  // depends only on row r of partial k - 1.
  const std::vector<CsrPattern>& partials = chain.partials();
  if (partials.size() > 1) {
    transpose_start_.resize(partials.size() - 1);
    transpose_rows_.resize(partials.size() - 1);
    for (std::size_t k = 0; k + 1 < partials.size(); ++k) {
      const CsrPattern& p = partials[k];
      std::vector<std::size_t>& start = transpose_start_[k];
      std::vector<std::size_t>& rows = transpose_rows_[k];
      start.assign(p.cols + 1, 0);
      for (std::size_t c : p.col_index) ++start[c + 1];
      for (std::size_t c = 0; c < p.cols; ++c) start[c + 1] += start[c];
      rows.resize(p.nonzeros());
      std::vector<std::size_t> cursor(start.begin(), start.end() - 1);
      for (std::size_t r = 0; r < p.rows; ++r)
        for (std::size_t ki = p.row_start[r]; ki < p.row_start[r + 1]; ++ki)
          rows[cursor[p.col_index[ki]]++] = r;
    }
  }

  partial_values_.resize(partials.size());
  for (std::size_t k = 0; k < partials.size(); ++k)
    partial_values_[k].assign(partials[k].nonzeros(), 0.0);

  accumulator_.assign(chain.max_cols(), 0.0);
  marker_.assign(chain.max_cols(), kNoTag);
}

void IncrementalProduct::replay_row(std::size_t k, std::size_t r,
                                    const linalg::CsrMatrix& b) {
  // The refill row body verbatim (structure.cpp): left-partial entries in
  // CSR order times the factor's rows, dense-accumulated per column, then
  // written out in the output pattern's sorted column order.  Identical
  // operand values in identical order make the result bitwise equal to a
  // full refill of the same factors.
  const CsrPattern& left = chain_->partials()[k - 1];
  const CsrPattern& out = chain_->partials()[k];
  const double* left_values = partial_values_[k - 1].data();
  double* out_values = partial_values_[k].data();
  const std::size_t row_tag = next_tag_++;
  for (std::size_t ka = left.row_start[r]; ka < left.row_start[r + 1]; ++ka) {
    const std::size_t ac = left.col_index[ka];
    const double av = left_values[ka];
    b.for_each_in_row(ac, [&](std::size_t bc, double bv) {
      if (marker_[bc] != row_tag) {
        marker_[bc] = row_tag;
        accumulator_[bc] = av * bv;
      } else {
        accumulator_[bc] += av * bv;
      }
    });
  }
  for (std::size_t ko = out.row_start[r]; ko < out.row_start[r + 1]; ++ko)
    out_values[ko] = accumulator_[out.col_index[ko]];
}

void IncrementalProduct::refill(const std::vector<linalg::CsrMatrix>& factors) {
  const std::vector<CsrPattern>& partials = chain_->partials();
  expects(factors.size() == partials.size(), "one factor per chain pattern");
  expects(factors.front().nonzeros() == partials.front().nonzeros(),
          "first factor matches its captured pattern");
  const std::span<const double> first = factors.front().values();
  std::copy(first.begin(), first.end(), partial_values_[0].begin());
  for (std::size_t k = 1; k < partials.size(); ++k) {
    const linalg::CsrMatrix& b = factors[k];
    expects(b.rows() == partials[k - 1].cols && b.cols() == partials[k].cols,
            "factor dimensions match the skeleton");
    for (std::size_t r = 0; r < partials[k].rows; ++r) replay_row(k, r, b);
  }
  pending_.clear();
  seeded_ = true;
}

void IncrementalProduct::update(std::size_t factor, std::size_t values_index) {
  expects(factor < row_of_.size(), "factor index in range");
  expects(values_index < row_of_[factor].size(), "values index in range");
  pending_.emplace_back(factor, values_index);
}

std::size_t IncrementalProduct::propagate(
    const std::vector<linalg::CsrMatrix>& factors) {
  expects(seeded_, "propagate requires a seeded product (call refill)");
  expects(factors.size() == chain_->factor_count(),
          "one factor per chain pattern");
  if (pending_.empty()) return 0;
  const std::vector<CsrPattern>& partials = chain_->partials();
  const std::size_t rows = partials.front().rows;
  dirty_.assign(rows, 0);

  // Walk the stages in chain order, folding in each stage's pending
  // entries as it is reached; the dirty-row set only grows, so a stage
  // recomputes exactly the rows any earlier-or-current update reaches.
  std::sort(pending_.begin(), pending_.end());
  std::size_t replayed = 0;
  std::size_t pi = 0;
  for (std::size_t k = pending_.front().first; k < partials.size(); ++k) {
    while (pi < pending_.size() && pending_[pi].first == k) {
      const std::size_t i = row_of_[k][pending_[pi].second];
      if (k == 0) {
        dirty_[i] = 1;
      } else {
        for (std::size_t t = transpose_start_[k - 1][i];
             t < transpose_start_[k - 1][i + 1]; ++t)
          dirty_[transpose_rows_[k - 1][t]] = 1;
      }
      ++pi;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (dirty_[r] == 0) continue;
      if (k == 0) {
        const std::span<const double> first = factors.front().values();
        const CsrPattern& f = partials.front();
        for (std::size_t ki = f.row_start[r]; ki < f.row_start[r + 1]; ++ki)
          partial_values_[0][ki] = first[ki];
      } else {
        replay_row(k, r, factors[k]);
      }
      ++replayed;
    }
  }
  pending_.clear();
  rows_replayed_ += replayed;
  WHART_COUNT_N("markov.incremental.rows_replayed", replayed);
  return replayed;
}

}  // namespace whart::markov
