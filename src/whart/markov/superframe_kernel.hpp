// Superframe-product transient kernel: the cyclic-chain collapse for
// time-inhomogeneous DTMCs whose per-slot transition matrices repeat with
// a fixed period (a TDMA superframe of Fup + Fdown slots).  Instead of
// one sparse vector-matrix product per 10 ms slot, the kernel multiplies
// the per-slot matrices once into the cycle-product matrix
//
//   P = M_1 * M_2 * ... * M_F      (F = period)
//
// and then answers "distribution after t slots" with floor(t / F)
// applications of P plus a tail of at most F - 1 per-slot steps — the
// dominant cost drops from O(t) sequential SpMVs to O(t / F) products
// through one precomputed matrix.  P is row-stochastic whenever every
// M_i is (a product of stochastic matrices is stochastic), so the
// collapsed chain is a DTMC in its own right; see DESIGN.md §11 for the
// math and the tail handling.
//
// A batched entry point advances a whole linalg::Matrix of row
// distributions together through the collapsed chain, traversing the
// product matrix once per cache-sized block of states instead of once
// per state.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/linalg/matrix.hpp"
#include "whart/linalg/sparse.hpp"
#include "whart/linalg/vector.hpp"

namespace whart::markov {

class SuperframeKernel {
 public:
  /// Build the kernel from the per-slot matrices of one cycle, in slot
  /// order (slot_matrices[i] advances slot i+1 of the cycle).  All
  /// matrices must be square with one common dimension; the cycle
  /// product is formed immediately via the arena-based sparse-sparse
  /// product.  Build cost is O(period) products and is paid once.
  explicit SuperframeKernel(std::vector<linalg::CsrMatrix> slot_matrices);

  /// Slots per cycle (the paper's Fup + Fdown).
  [[nodiscard]] std::size_t period() const noexcept {
    return slot_matrices_.size();
  }

  /// State-space dimension.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return product_.rows();
  }

  /// The collapsed cycle-product matrix P = M_1 ... M_F.
  [[nodiscard]] const linalg::CsrMatrix& cycle_product() const noexcept {
    return product_;
  }

  /// Per-slot matrix of cycle position `position` (0-based).
  [[nodiscard]] const linalg::CsrMatrix& slot_matrix(
      std::size_t position) const;

  /// Distribution after `steps` slots from `initial`: full cycles
  /// through the product matrix plus a tail of steps % period() per-slot
  /// steps.  steps == 0 returns the initial distribution unchanged.
  [[nodiscard]] linalg::Vector distribution_after(
      const linalg::Vector& initial, std::uint64_t steps) const;

  /// Batched transient solve: every row of `initials` is an independent
  /// initial distribution; all rows are advanced `steps` slots together,
  /// blocked for cache (see linalg::left_multiply_batch).  Row i of the
  /// result equals distribution_after(row i, steps) exactly — the same
  /// products in the same order, just interleaved across rows.
  [[nodiscard]] linalg::Matrix distributions_after(
      const linalg::Matrix& initials, std::uint64_t steps,
      std::size_t block_rows = 32) const;

  /// Largest |1 - row sum| over the product matrix — the numeric health
  /// of the collapse (exact arithmetic gives 0 for stochastic slots).
  [[nodiscard]] double product_row_sum_residual() const;

  /// Verification-harness fault injection: add `delta` to product entry
  /// (row, col), creating it if absent.  This deliberately breaks the
  /// collapse so the differential oracle can prove it would catch a bad
  /// product build.  Never called in production code.
  void perturb_product_entry(std::size_t row, std::size_t col, double delta);

 private:
  std::vector<linalg::CsrMatrix> slot_matrices_;
  linalg::CsrMatrix product_;
};

}  // namespace whart::markov
