#include "whart/markov/limiting.hpp"

#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/markov/absorbing.hpp"
#include "whart/markov/steady_state.hpp"
#include "whart/markov/structure.hpp"

namespace whart::markov {

namespace {

struct Collapsed {
  /// Closed-class indices in decomposition order.
  std::vector<std::size_t> closed_classes;
  /// capture[s][k]: P(captured by closed_classes[k] | start at state s).
  std::vector<linalg::Vector> capture;
};

/// Capture probabilities for every original state, by collapsing each
/// closed class to one absorbing super-state.
Collapsed capture_by_class(const Dtmc& chain,
                           const ClassDecomposition& decomposition) {
  Collapsed result;
  std::unordered_map<std::size_t, std::size_t> closed_rank;
  for (std::size_t c = 0; c < decomposition.class_count(); ++c) {
    if (decomposition.is_closed[c]) {
      closed_rank.emplace(c, result.closed_classes.size());
      result.closed_classes.push_back(c);
    }
  }
  const std::size_t num_closed = result.closed_classes.size();

  // Collapsed state space: transient states keep a slot, each closed
  // class becomes one absorbing state at the end.
  std::unordered_map<StateIndex, std::size_t> transient_slot;
  std::vector<StateIndex> transient_of_slot;
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (!decomposition.is_closed[decomposition.class_of[s]]) {
      transient_slot.emplace(s, transient_of_slot.size());
      transient_of_slot.push_back(s);
    }
  }
  const std::size_t nt = transient_of_slot.size();

  result.capture.assign(chain.num_states(), linalg::Vector(num_closed));
  // States already inside a closed class are captured by it surely.
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    const std::size_t cls = decomposition.class_of[s];
    if (decomposition.is_closed[cls])
      result.capture[s][closed_rank.at(cls)] = 1.0;
  }
  if (nt == 0) return result;

  std::vector<linalg::Triplet> triplets;
  for (std::size_t i = 0; i < nt; ++i) {
    chain.matrix().for_each_in_row(
        transient_of_slot[i], [&](std::size_t to, double p) {
          if (p <= 0.0) return;
          const std::size_t to_class = decomposition.class_of[to];
          if (decomposition.is_closed[to_class])
            triplets.push_back({i, nt + closed_rank.at(to_class), p});
          else
            triplets.push_back({i, transient_slot.at(to), p});
        });
  }
  for (std::size_t k = 0; k < num_closed; ++k)
    triplets.push_back({nt + k, nt + k, 1.0});

  const Dtmc collapsed(nt + num_closed, std::move(triplets));
  const AbsorbingAnalysis analysis = analyze_absorbing(collapsed);
  // analyze_absorbing orders transient/absorbing states ascending, which
  // here coincides with (slots 0..nt-1, supers nt..nt+k-1).
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t k = 0; k < num_closed; ++k)
      result.capture[transient_of_slot[i]][k] =
          analysis.absorption_probability(i, k);
  return result;
}

}  // namespace

linalg::Vector capture_probabilities(const Dtmc& chain,
                                     const linalg::Vector& initial) {
  expects(initial.size() == chain.num_states(),
          "initial distribution matches state space");
  const ClassDecomposition decomposition = communicating_classes(chain);
  const Collapsed collapsed = capture_by_class(chain, decomposition);
  linalg::Vector result(collapsed.closed_classes.size());
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (initial[s] == 0.0) continue;
    for (std::size_t k = 0; k < result.size(); ++k)
      result[k] += initial[s] * collapsed.capture[s][k];
  }
  return result;
}

linalg::Vector long_run_distribution(const Dtmc& chain,
                                     const linalg::Vector& initial) {
  expects(initial.size() == chain.num_states(),
          "initial distribution matches state space");
  const ClassDecomposition decomposition = communicating_classes(chain);
  const Collapsed collapsed = capture_by_class(chain, decomposition);

  linalg::Vector capture(collapsed.closed_classes.size());
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (initial[s] == 0.0) continue;
    for (std::size_t k = 0; k < capture.size(); ++k)
      capture[k] += initial[s] * collapsed.capture[s][k];
  }

  linalg::Vector result(chain.num_states());
  for (std::size_t k = 0; k < collapsed.closed_classes.size(); ++k) {
    if (capture[k] == 0.0) continue;
    const auto& members =
        decomposition.classes[collapsed.closed_classes[k]];
    // Stationary distribution of the restricted class chain.
    std::unordered_map<StateIndex, std::size_t> slot;
    for (std::size_t i = 0; i < members.size(); ++i)
      slot.emplace(members[i], i);
    std::vector<linalg::Triplet> triplets;
    for (std::size_t i = 0; i < members.size(); ++i)
      chain.matrix().for_each_in_row(members[i],
                                     [&](std::size_t to, double p) {
                                       if (p > 0.0)
                                         triplets.push_back(
                                             {i, slot.at(to), p});
                                     });
    const Dtmc restricted(members.size(), std::move(triplets));
    const linalg::Vector pi = steady_state_direct(restricted);
    for (std::size_t i = 0; i < members.size(); ++i)
      result[members[i]] += capture[k] * pi[i];
  }
  return result;
}

}  // namespace whart::markov
