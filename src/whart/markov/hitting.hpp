// First-passage analysis for arbitrary target sets: hitting
// probabilities and expected hitting times, by linear solve on the
// reachable sub-system.  Generalizes the absorbing-chain analysis (whose
// targets must be absorbing) to any state set — e.g. "how long until the
// link is UP again" without rebuilding the chain.
#pragma once

#include <vector>

#include "whart/linalg/vector.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// h[s] = P(the chain started at s ever visits a target).  Targets get
/// 1; states with no path to a target get 0; the rest solve the minimal
/// non-negative solution of h = P h with those boundary conditions.
linalg::Vector hitting_probabilities(const Dtmc& chain,
                                     const std::vector<StateIndex>& targets);

/// k[s] = E[steps until the first visit to a target | start s].
/// Targets get 0; states whose hitting probability is below 1 get
/// +infinity (the standard convention: the expectation diverges).
linalg::Vector expected_hitting_times(
    const Dtmc& chain, const std::vector<StateIndex>& targets);

}  // namespace whart::markov
