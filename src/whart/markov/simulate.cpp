#include "whart/markov/simulate.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::markov {

StateIndex sample_step(const Dtmc& chain, StateIndex state,
                       numeric::Xoshiro256& rng) {
  expects(state < chain.num_states(), "state in range");
  const double u = rng.uniform();
  double cumulative = 0.0;
  StateIndex chosen = state;
  bool found = false;
  chain.matrix().for_each_in_row(state, [&](std::size_t to, double p) {
    if (found) return;
    cumulative += p;
    if (u < cumulative) {
      chosen = to;
      found = true;
    }
  });
  // Floating-point slack at the top of the cdf: stay on the last entry.
  if (!found) {
    chain.matrix().for_each_in_row(state,
                                   [&](std::size_t to, double) { chosen = to; });
  }
  return chosen;
}

std::vector<StateIndex> sample_trajectory(const Dtmc& chain,
                                          StateIndex start,
                                          std::uint64_t steps,
                                          numeric::Xoshiro256& rng) {
  expects(start < chain.num_states(), "start in range");
  std::vector<StateIndex> trajectory;
  trajectory.reserve(steps + 1);
  trajectory.push_back(start);
  for (std::uint64_t t = 0; t < steps; ++t)
    trajectory.push_back(sample_step(chain, trajectory.back(), rng));
  return trajectory;
}

linalg::Vector empirical_distribution(const Dtmc& chain, StateIndex start,
                                      std::uint64_t steps,
                                      std::uint64_t trajectories,
                                      numeric::Xoshiro256& rng) {
  expects(trajectories > 0, "at least one trajectory");
  linalg::Vector counts(chain.num_states());
  for (std::uint64_t run = 0; run < trajectories; ++run) {
    StateIndex state = start;
    for (std::uint64_t t = 0; t < steps; ++t)
      state = sample_step(chain, state, rng);
    counts[state] += 1.0;
  }
  counts *= 1.0 / static_cast<double>(trajectories);
  return counts;
}

std::optional<std::uint64_t> sample_hitting_time(
    const Dtmc& chain, StateIndex start,
    const std::vector<StateIndex>& targets, std::uint64_t max_steps,
    numeric::Xoshiro256& rng) {
  expects(!targets.empty(), "at least one target state");
  const auto is_target = [&](StateIndex s) {
    return std::find(targets.begin(), targets.end(), s) != targets.end();
  };
  if (is_target(start)) return 0;
  StateIndex state = start;
  for (std::uint64_t t = 1; t <= max_steps; ++t) {
    state = sample_step(chain, state, rng);
    if (is_target(state)) return t;
  }
  return std::nullopt;
}

}  // namespace whart::markov
