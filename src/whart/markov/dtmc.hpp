// General-purpose discrete-time Markov chain over a finite state space.
// The WirelessHART link and path models are both instances of this class.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "whart/linalg/sparse.hpp"
#include "whart/linalg/vector.hpp"

namespace whart::markov {

/// Index of a state in a chain.
using StateIndex = std::size_t;

/// A finite DTMC: a stochastic transition matrix plus optional state names.
///
/// Invariant: every row of the transition matrix sums to 1 (within
/// tolerance) and all entries are non-negative; enforced at construction.
class Dtmc {
 public:
  /// Build from transition triplets.  `num_states` fixes the state space;
  /// every row must be stochastic.  Optional `state_names` (empty, or one
  /// per state) are used for diagnostics.
  Dtmc(std::size_t num_states, std::vector<linalg::Triplet> transitions,
       std::vector<std::string> state_names = {});

  [[nodiscard]] std::size_t num_states() const noexcept {
    return matrix_.rows();
  }

  /// Transition probability from -> to.
  [[nodiscard]] double transition_probability(StateIndex from,
                                              StateIndex to) const {
    return matrix_.at(from, to);
  }

  /// The underlying sparse transition matrix.
  [[nodiscard]] const linalg::CsrMatrix& matrix() const noexcept {
    return matrix_;
  }

  /// Name of a state, or "s<i>" when unnamed.
  [[nodiscard]] std::string state_name(StateIndex state) const;

  /// Look up a state index by name.
  [[nodiscard]] std::optional<StateIndex> find_state(
      std::string_view state_name) const noexcept;

  /// True when `state` has a self-loop with probability 1.
  [[nodiscard]] bool is_absorbing(StateIndex state) const;

  /// All absorbing states.
  [[nodiscard]] std::vector<StateIndex> absorbing_states() const;

  /// One distribution step: p' = p * P.  p must be a distribution over the
  /// state space (checked by size only; callers may pass sub-distributions).
  [[nodiscard]] linalg::Vector step(const linalg::Vector& distribution) const;

 private:
  linalg::CsrMatrix matrix_;
  std::vector<std::string> state_names_;
};

/// A point distribution concentrated at `state`.
linalg::Vector point_distribution(std::size_t num_states, StateIndex state);

}  // namespace whart::markov
