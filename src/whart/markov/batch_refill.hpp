// Structure-of-arrays batched numeric refill (DESIGN.md §13): the
// numeric half of the symbolic/numeric split evaluated for N points at
// once.  A ChainProductSkeleton fixes one sparsity pattern per partial
// product; BatchRefill compiles that fixed chain into a flat multiply
// plan at construction — one (left entry, factor entry, output slot)
// triple per Gustavson visit, in the scalar refill's exact visit order —
// and replays the plan with N contiguous value lanes per stored nonzero.
// Replay carries no symbolic bookkeeping (no marker array, no sparse
// accumulator, no copy-out pass): each op is a single lane-wide multiply
// or multiply-add straight into the output entry, so one walk of the
// plan prices every evaluation point and the per-entry arithmetic
// vectorizes across lanes (linalg/simd.hpp).
//
// Lane layout is entry-major: the values of pattern entry k occupy
// [k * lanes, (k + 1) * lanes) of the value array, one double per lane.
// Each lane's multiply-add sequence is exactly the scalar refill's, so
// lane L of a batched refill agrees with a scalar refill of lane L's
// factors to rounding (bitwise on backends whose FMA contraction matches
// the scalar build; within ~1 ulp otherwise — the lane-equivalence
// battery in tests/markov/batch_refill_test.cpp holds it to 1e-12).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "whart/markov/structure.hpp"

namespace whart::markov {

/// Reusable SoA scratch of BatchRefill::refill — the ping-pong lane
/// buffers holding intermediate partial products
/// (max_partial_nonzeros x lanes each).  They grow to their high-water
/// mark on the first refill of a given (shape, lane count) and are only
/// rewritten afterwards, so warm batched refills allocate nothing.
struct BatchLaneArena {
  std::vector<double> partial_a;
  std::vector<double> partial_b;
};

/// Lane-parallel replay of ChainProductSkeleton::refill.  Construction
/// compiles the multiply plan from the skeleton's patterns (built once
/// per shape — PathModelSkeleton caches one instance); the instance
/// borrows the skeleton and the factor patterns, so both referents must
/// outlive it.
class BatchRefill {
 public:
  /// `factors` are the per-factor patterns the skeleton was built from
  /// (factors[k] must match partials()[0]'s shape for k == 0 and the
  /// k-th chain step otherwise).
  BatchRefill(const ChainProductSkeleton& chain,
              const std::vector<CsrPattern>& factors);

  /// Batched numeric pass: factor_values[k] holds the SoA values of
  /// factor k (factors[k].nonzeros() x lanes, entry-major) and the full
  /// product's SoA values land in `values_out`
  /// (chain.pattern().nonzeros() x lanes).  Allocation-free once
  /// `arena` is warm for this (shape, lanes).
  void refill(std::span<const std::vector<double>> factor_values,
              std::size_t lanes, BatchLaneArena& arena,
              std::span<double> values_out) const;

 private:
  /// One compiled multiply: out[slot] (+)= left[a] * factor[b], all
  /// lane-wide.  `out`'s top bit flags the first touch of the output
  /// entry within its row (a plain multiply instead of a multiply-add).
  struct Op {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t out = 0;
  };
  /// The ops of chain step k occupy [begin, end) of `ops_`.
  struct Step {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  static constexpr std::uint32_t kFirstTouch = 0x80000000u;

  /// Plan replay with the lane count as a template parameter (kLanes ==
  /// 0 is the runtime-width fallback) so the simd helpers run with
  /// compile-time trip counts; arithmetic and op order are identical in
  /// every instantiation.
  template <std::size_t kLanes>
  void replay(std::span<const std::vector<double>> factor_values,
              std::size_t runtime_lanes, BatchLaneArena& arena,
              std::span<double> values_out) const;

  const ChainProductSkeleton* chain_;
  const std::vector<CsrPattern>* factors_;
  std::vector<Op> ops_;
  std::vector<Step> steps_;
};

}  // namespace whart::markov
