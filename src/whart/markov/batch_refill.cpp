#include "whart/markov/batch_refill.hpp"

#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/linalg/simd.hpp"

namespace whart::markov {

namespace {

constexpr std::size_t kNoTag = std::numeric_limits<std::size_t>::max();

}  // namespace

BatchRefill::BatchRefill(const ChainProductSkeleton& chain,
                         const std::vector<CsrPattern>& factors)
    : chain_(&chain), factors_(&factors) {
  expects(factors.size() == chain.factor_count(),
          "one factor pattern per chain step");
  expects(factors.front().nonzeros() == chain.partials().front().nonzeros(),
          "first factor matches its captured pattern");
  const std::vector<CsrPattern>& partials = chain.partials();
  if (partials.size() == 1) return;  // single factor: refill is a copy

  // Compile the Gustavson replay once: the same row/entry walk the
  // scalar refill performs, recorded as a flat op list instead of
  // executed.  Replay then needs no marker array, no sparse accumulator
  // and no copy-out pass — each visit already knows its output slot.
  // Op order equals the scalar visit order, which keeps batched lanes
  // within rounding of their scalar refills.
  std::vector<std::uint32_t> col_slot(chain.max_cols(), 0);
  std::vector<std::size_t> col_tag(chain.max_cols(), kNoTag);
  std::size_t tag = 0;
  steps_.reserve(partials.size() - 1);
  for (std::size_t k = 1; k < partials.size(); ++k) {
    const CsrPattern& left = partials[k - 1];
    const CsrPattern& out = partials[k];
    const CsrPattern& b = factors[k];
    expects(b.rows == left.cols && b.cols == out.cols,
            "factor dimensions match the skeleton");
    const auto begin = static_cast<std::uint32_t>(ops_.size());
    for (std::size_t r = 0; r < out.rows; ++r) {
      // Column -> output entry slot of this row (the out pattern holds
      // exactly the columns the walk below reaches, by construction of
      // the skeleton).
      for (std::size_t ko = out.row_start[r]; ko < out.row_start[r + 1];
           ++ko)
        col_slot[out.col_index[ko]] = static_cast<std::uint32_t>(ko);
      const std::size_t row_tag = tag++;
      for (std::size_t ka = left.row_start[r]; ka < left.row_start[r + 1];
           ++ka) {
        const std::size_t ac = left.col_index[ka];
        for (std::size_t kb = b.row_start[ac]; kb < b.row_start[ac + 1];
             ++kb) {
          const std::size_t bc = b.col_index[kb];
          const bool first = col_tag[bc] != row_tag;
          col_tag[bc] = row_tag;
          ops_.push_back({static_cast<std::uint32_t>(ka),
                          static_cast<std::uint32_t>(kb),
                          col_slot[bc] | (first ? kFirstTouch : 0u)});
        }
      }
    }
    steps_.push_back({begin, static_cast<std::uint32_t>(ops_.size())});
  }
}

template <std::size_t kLanes>
void BatchRefill::replay(std::span<const std::vector<double>> factor_values,
                         std::size_t runtime_lanes, BatchLaneArena& arena,
                         std::span<double> values_out) const {
  const std::size_t lanes = kLanes == 0 ? runtime_lanes : kLanes;
  const std::size_t partial_count = chain_->partials().size();
  const double* left_values = factor_values.front().data();
  for (std::size_t k = 1; k < partial_count; ++k) {
    const double* b_values = factor_values[k].data();
    double* out_values = k + 1 == partial_count ? values_out.data()
                         : k % 2 == 1           ? arena.partial_a.data()
                                                : arena.partial_b.data();
    const Step step = steps_[k - 1];
    for (std::uint32_t i = step.begin; i < step.end; ++i) {
      const Op op = ops_[i];
      double* out = out_values + (op.out & ~kFirstTouch) * lanes;
      const double* av = left_values + op.a * lanes;
      const double* bv = b_values + op.b * lanes;
      if ((op.out & kFirstTouch) != 0)
        linalg::simd::mul(out, av, bv, lanes);
      else
        linalg::simd::mul_add(out, av, bv, lanes);
    }
    left_values = out_values;
  }
}

void BatchRefill::refill(std::span<const std::vector<double>> factor_values,
                         std::size_t lanes, BatchLaneArena& arena,
                         std::span<double> values_out) const {
  const std::vector<CsrPattern>& partials = chain_->partials();
  expects(lanes >= 1, "at least one lane");
  expects(factor_values.size() == partials.size(),
          "one value block per skeleton pattern");
  expects(values_out.size() == chain_->pattern().nonzeros() * lanes,
          "output sized to the product pattern times the lane count");
  for (std::size_t k = 0; k < factor_values.size(); ++k)
    expects(factor_values[k].size() == (*factors_)[k].nonzeros() * lanes,
            "factor values sized to their pattern times the lane count");

  const std::vector<double>& first = factor_values.front();
  if (partials.size() == 1) {
    linalg::simd::copy(values_out.data(), first.data(), values_out.size());
    return;
  }
  // Warm-up sizing only (no-ops once the arena saw this shape and lane
  // count).
  arena.partial_a.resize(chain_->max_partial_nonzeros() * lanes);
  arena.partial_b.resize(chain_->max_partial_nonzeros() * lanes);

  // Common lane counts dispatch to fixed-width instantiations
  // (flat-unrolled lane loops); anything else takes the runtime-width
  // fallback — same arithmetic either way.
  switch (lanes) {
    case 4:
      replay<4>(factor_values, lanes, arena, values_out);
      break;
    case 8:
      replay<8>(factor_values, lanes, arena, values_out);
      break;
    case 16:
      replay<16>(factor_values, lanes, arena, values_out);
      break;
    default:
      replay<0>(factor_values, lanes, arena, values_out);
      break;
  }
}

}  // namespace whart::markov
