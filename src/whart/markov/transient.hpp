// Transient analysis: the distribution of a DTMC after t steps, both for
// time-homogeneous chains (paper Eq. 3 for links) and time-inhomogeneous
// ones (paper Eq. 5 for paths, where per-slot transition probabilities
// follow the link models).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "whart/linalg/matrix.hpp"
#include "whart/linalg/vector.hpp"
#include "whart/markov/dtmc.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::markov {

/// Distribution after `steps` steps of a homogeneous chain: p0 * P^steps,
/// computed by iterated sparse products.  steps == 0 returns the initial
/// distribution unchanged.
linalg::Vector distribution_after(const Dtmc& chain,
                                  const linalg::Vector& initial,
                                  std::uint64_t steps);

/// Distributions after 0, 1, ..., steps steps (trajectory of Eq. 5).
std::vector<linalg::Vector> distribution_trajectory(
    const Dtmc& chain, const linalg::Vector& initial, std::uint64_t steps);

/// Time-inhomogeneous transient analysis: the transition matrix for step t
/// (1-based) is supplied by `matrix_for_step`.  Returns the distribution
/// after `steps` steps.
linalg::Vector distribution_after_inhomogeneous(
    const std::function<const linalg::CsrMatrix&(std::uint64_t step)>&
        matrix_for_step,
    linalg::Vector initial, std::uint64_t steps);

/// Time-inhomogeneous transient analysis for a *periodic* step sequence,
/// answered through the superframe-product collapse: floor(steps /
/// period) applications of the precomputed cycle matrix plus at most
/// period - 1 per-slot tail steps.  Equivalent (to rounding) to
/// distribution_after_inhomogeneous with matrix_for_step(t) =
/// kernel.slot_matrix((t - 1) % kernel.period()).
linalg::Vector distribution_after_periodic(const SuperframeKernel& kernel,
                                           const linalg::Vector& initial,
                                           std::uint64_t steps);

/// Batched periodic transient analysis: every row of `initials` advances
/// `steps` slots through the kernel in one cache-blocked pass.  Row i
/// equals distribution_after_periodic(kernel, row i, steps) exactly.
linalg::Matrix distributions_after_periodic(const SuperframeKernel& kernel,
                                            const linalg::Matrix& initials,
                                            std::uint64_t steps);

/// Probability of being in `state` after `steps` steps from `initial`.
double transient_probability(const Dtmc& chain, const linalg::Vector& initial,
                             StateIndex state, std::uint64_t steps);

}  // namespace whart::markov
