// DTMC export: Graphviz DOT for visual inspection and the PRISM explicit
// format (.tra / .lab) so the constructed chains can be verified with an
// external probabilistic model checker — the ecosystem the paper's
// original (closed-source) Java tool lived in.
#pragma once

#include <iosfwd>
#include <string>

#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// Options for the DOT rendering.
struct DotOptions {
  /// Graph name.
  std::string name = "dtmc";
  /// Left-to-right layout (matches the paper's Figs. 4-5).
  bool left_to_right = true;
  /// Draw absorbing states as double circles.
  bool highlight_absorbing = true;
  /// Omit edge labels below this probability... 0 keeps everything.
  double min_probability = 0.0;
};

/// Write the chain as a Graphviz digraph.
void write_dot(std::ostream& out, const Dtmc& chain,
               const DotOptions& options = {});

/// Write the PRISM explicit-engine transition file (.tra):
/// header "num_states num_transitions", then one "src dst prob" per line,
/// sources ascending.
void write_prism_transitions(std::ostream& out, const Dtmc& chain);

/// Write a PRISM label file (.lab) marking "init" (state `initial`) and
/// one label per absorbing state (its state name, quoted).
void write_prism_labels(std::ostream& out, const Dtmc& chain,
                        StateIndex initial = 0);

}  // namespace whart::markov
