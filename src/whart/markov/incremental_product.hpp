// Incremental numeric updates of a chain product (DESIGN.md §15): the
// low-rank counterpart of ChainProductSkeleton::refill.  A refill replays
// Gustavson's numeric pass over every row of every partial; when only a
// few factor entries moved (a what-if on one link's availability moves
// exactly two entries per firing slot), almost all of that work
// recomputes values that cannot have changed.  IncrementalProduct caches
// the values of every left-to-right partial, maps each changed factor
// entry to the partial rows it can reach, and replays only those rows —
// per row the arithmetic is the refill's own row body verbatim, so the
// propagated product is bitwise equal to a full refill (and hence to a
// fresh linalg::multiply chain build).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "whart/linalg/sparse.hpp"
#include "whart/markov/structure.hpp"

namespace whart::markov {

/// Cached numeric state of one chain product M_0 * ... * M_{F-1} over a
/// borrowed ChainProductSkeleton, supporting entry-targeted re-products.
///
/// Lifecycle: `refill` seeds the cache from a full factor set; `update`
/// records that one factor entry's value moved (the caller has already
/// written the new value into its factor matrix); `propagate` replays
/// the dirty rows of every downstream partial and leaves `values()`
/// holding the product — bitwise what a full `refill` against the same
/// factors would produce.  The skeleton (and the factor patterns it was
/// built from) must outlive this object.
class IncrementalProduct {
 public:
  /// Builds the propagation index: per-factor values-index -> row maps
  /// and, per intermediate partial, the column -> rows transpose that
  /// turns "factor k's row i changed" into "these rows of partial k must
  /// be re-accumulated".  `factors` are the patterns the skeleton was
  /// constructed from.
  IncrementalProduct(const ChainProductSkeleton& chain,
                     const std::vector<CsrPattern>& factors);

  /// Full numeric seed: replay the whole chain against `factors`
  /// (which must match the ctor patterns entry-for-entry), caching every
  /// partial's values.  Arithmetic matches ChainProductSkeleton::refill
  /// row for row.
  void refill(const std::vector<linalg::CsrMatrix>& factors);

  /// Record that entry `values_index` of factor `factor` holds a new
  /// value.  Cheap; the numeric work happens in `propagate`.
  void update(std::size_t factor, std::size_t values_index);

  /// Replay the rows reachable from the recorded updates, stage by
  /// stage, reading current factor values from `factors`.  Returns the
  /// number of partial rows re-accumulated (the work the full refill
  /// avoided is partials x rows minus this).  No-op when nothing was
  /// recorded.
  std::size_t propagate(const std::vector<linalg::CsrMatrix>& factors);

  /// Values of the full product, in the CSR order of
  /// chain().pattern().  Valid after `refill`.
  [[nodiscard]] std::span<const double> values() const noexcept {
    return partial_values_.back();
  }

  /// True once `refill` has seeded the cache.
  [[nodiscard]] bool seeded() const noexcept { return seeded_; }

  /// The borrowed symbolic chain.
  [[nodiscard]] const ChainProductSkeleton& chain() const noexcept {
    return *chain_;
  }

  /// Rows re-accumulated by propagate() since construction (the obs
  /// counterpart: `markov.incremental.rows_replayed`).
  [[nodiscard]] std::uint64_t rows_replayed() const noexcept {
    return rows_replayed_;
  }

 private:
  /// Re-accumulate row `r` of partial `k` (k >= 1) — the refill row body.
  void replay_row(std::size_t k, std::size_t r, const linalg::CsrMatrix& b);

  const ChainProductSkeleton* chain_;
  /// row_of_[k][vi]: row of entry vi in factor k.
  std::vector<std::vector<std::size_t>> row_of_;
  /// Column -> rows transpose of each intermediate partial: rows r with
  /// partials()[k](r, c) != 0 are transpose_rows_[k] in
  /// [transpose_start_[k][c], transpose_start_[k][c + 1]).
  std::vector<std::vector<std::size_t>> transpose_start_;
  std::vector<std::vector<std::size_t>> transpose_rows_;
  /// partial_values_[k]: cached values of partials()[k].
  std::vector<std::vector<double>> partial_values_;

  /// Recorded (factor, values index) updates awaiting propagation.
  std::vector<std::pair<std::size_t, std::size_t>> pending_;

  // Gustavson scratch (marker tags are monotonic across calls, so the
  // marker array is blanked once at construction, never per call).
  std::vector<double> accumulator_;
  std::vector<std::size_t> marker_;
  std::size_t next_tag_ = 0;
  std::vector<char> dirty_;

  bool seeded_ = false;
  std::uint64_t rows_replayed_ = 0;
};

}  // namespace whart::markov
