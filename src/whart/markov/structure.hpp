// Structural analysis of a DTMC's transition graph: communicating
// classes (Tarjan SCC), state classification (transient vs recurrent),
// irreducibility and periodicity.  These are the preconditions of the
// steady-state solvers — steady_state_direct assumes a unique stationary
// distribution, power iteration assumes convergence — made checkable.
//
// This header also hosts the *symbolic* side of the symbolic/numeric
// split (DESIGN.md §12): CsrPattern captures a sparse matrix's shape
// without its values, and ChainProductSkeleton captures the sparsity of
// every left-to-right partial product of a matrix chain so the cycle
// product of a SuperframeKernel can be refilled numerically — same
// pattern, new probabilities — without re-running the symbolic pass or
// allocating.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "whart/linalg/sparse.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// Sparsity pattern of a CSR matrix: everything but the values.
struct CsrPattern {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_start;  // size rows + 1
  std::vector<std::size_t> col_index;  // sorted within each row

  /// Capture the pattern of an assembled matrix.
  static CsrPattern of(const linalg::CsrMatrix& matrix);

  [[nodiscard]] std::size_t nonzeros() const noexcept {
    return col_index.size();
  }

  friend bool operator==(const CsrPattern&, const CsrPattern&) = default;
};

/// Reusable scratch of ChainProductSkeleton::refill.  All buffers grow
/// to their high-water mark on the first refill and are only rewritten
/// afterwards, so a warm refill performs no allocation.
struct ChainRefillArena {
  /// Dense per-column accumulator of the current output row.
  std::vector<double> accumulator;
  /// marker[c] == current row tag when column c is live in this row.
  std::vector<std::size_t> marker;
  /// Ping-pong value buffers of the intermediate partial products.
  std::vector<double> partial_a;
  std::vector<double> partial_b;
};

/// Symbolic skeleton of the chain product M_0 * M_1 * ... * M_{F-1}:
/// the sparsity pattern of every left-to-right partial product, computed
/// once.  `refill` then replays Gustavson's numeric pass against fresh
/// factor values, writing the final product's values in CSR order —
/// bitwise equal to rebuilding the chain through linalg::multiply,
/// because both visit the same nonzeros in the same order.
class ChainProductSkeleton {
 public:
  /// Symbolic chain collapse over the factor patterns (at least one;
  /// inner dimensions must agree).
  explicit ChainProductSkeleton(const std::vector<CsrPattern>& factors);

  /// Pattern of the full product M_0 ... M_{F-1}.
  [[nodiscard]] const CsrPattern& pattern() const noexcept {
    return partials_.back();
  }

  /// Number of chain factors.
  [[nodiscard]] std::size_t factor_count() const noexcept {
    return partials_.size();
  }

  /// Patterns of every left-to-right partial product (partials()[k] is
  /// the pattern of M_0 * ... * M_k) — the replay schedule that
  /// markov::BatchRefill walks lane-parallel.
  [[nodiscard]] const std::vector<CsrPattern>& partials() const noexcept {
    return partials_;
  }

  /// Widest column count across the partials (accumulator sizing).
  [[nodiscard]] std::size_t max_cols() const noexcept { return max_cols_; }

  /// Largest intermediate-partial nonzero count (ping-pong sizing).
  [[nodiscard]] std::size_t max_partial_nonzeros() const noexcept {
    return max_partial_nnz_;
  }

  /// Numeric pass: recompute the product's values from `factors` (which
  /// must match the ctor patterns entry-for-entry) into `values_out`
  /// (size pattern().nonzeros()).  Allocation-free once `arena` is warm.
  void refill(const std::vector<linalg::CsrMatrix>& factors,
              ChainRefillArena& arena, std::span<double> values_out) const;

 private:
  /// partials_[k]: pattern of M_0 * ... * M_k.
  std::vector<CsrPattern> partials_;
  std::size_t max_cols_ = 0;         // accumulator/marker size
  std::size_t max_partial_nnz_ = 0;  // ping-pong buffer size
};

/// The communicating classes of the chain.
struct ClassDecomposition {
  /// class_of[s]: index of the communicating class containing state s.
  std::vector<std::size_t> class_of;

  /// classes[c]: the states of class c, ascending.
  std::vector<std::vector<StateIndex>> classes;

  /// is_closed[c]: no transition leaves class c (its states are
  /// recurrent); open classes contain transient states.
  std::vector<bool> is_closed;

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes.size();
  }
};

/// Tarjan's strongly-connected components over the positive-probability
/// transition graph.
ClassDecomposition communicating_classes(const Dtmc& chain);

/// True when the whole chain is one communicating class.
bool is_irreducible(const Dtmc& chain);

/// Recurrent states: members of closed communicating classes.
std::vector<StateIndex> recurrent_states(const Dtmc& chain);

/// Transient states: members of open classes.
std::vector<StateIndex> transient_states(const Dtmc& chain);

/// The period of `state`: gcd of the lengths of all cycles through it
/// (1 = aperiodic).  Returns 0 when no cycle passes through the state
/// (possible only for transient states).
std::uint32_t period(const Dtmc& chain, StateIndex state);

/// True when the chain is irreducible and aperiodic — the regime where
/// the power iteration on P itself converges and the stationary
/// distribution is also the limit distribution.
bool is_ergodic(const Dtmc& chain);

/// Largest |1 - row sum| over all rows, accumulated in long double so
/// the residual measures the stored entries, not the measurement
/// arithmetic.  The construction-time stochasticity check tolerates
/// 1e-9; the verification subsystem holds constructed chains to 1e-12.
double max_row_sum_residual(const Dtmc& chain);

/// |1 - sum of entries|, accumulated in long double — the probability
/// mass drift of a distribution under transient stepping.
double distribution_mass_residual(const linalg::Vector& distribution);

}  // namespace whart::markov
