// Structural analysis of a DTMC's transition graph: communicating
// classes (Tarjan SCC), state classification (transient vs recurrent),
// irreducibility and periodicity.  These are the preconditions of the
// steady-state solvers — steady_state_direct assumes a unique stationary
// distribution, power iteration assumes convergence — made checkable.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// The communicating classes of the chain.
struct ClassDecomposition {
  /// class_of[s]: index of the communicating class containing state s.
  std::vector<std::size_t> class_of;

  /// classes[c]: the states of class c, ascending.
  std::vector<std::vector<StateIndex>> classes;

  /// is_closed[c]: no transition leaves class c (its states are
  /// recurrent); open classes contain transient states.
  std::vector<bool> is_closed;

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes.size();
  }
};

/// Tarjan's strongly-connected components over the positive-probability
/// transition graph.
ClassDecomposition communicating_classes(const Dtmc& chain);

/// True when the whole chain is one communicating class.
bool is_irreducible(const Dtmc& chain);

/// Recurrent states: members of closed communicating classes.
std::vector<StateIndex> recurrent_states(const Dtmc& chain);

/// Transient states: members of open classes.
std::vector<StateIndex> transient_states(const Dtmc& chain);

/// The period of `state`: gcd of the lengths of all cycles through it
/// (1 = aperiodic).  Returns 0 when no cycle passes through the state
/// (possible only for transient states).
std::uint32_t period(const Dtmc& chain, StateIndex state);

/// True when the chain is irreducible and aperiodic — the regime where
/// the power iteration on P itself converges and the stationary
/// distribution is also the limit distribution.
bool is_ergodic(const Dtmc& chain);

/// Largest |1 - row sum| over all rows, accumulated in long double so
/// the residual measures the stored entries, not the measurement
/// arithmetic.  The construction-time stochasticity check tolerates
/// 1e-9; the verification subsystem holds constructed chains to 1e-12.
double max_row_sum_residual(const Dtmc& chain);

/// |1 - sum of entries|, accumulated in long double — the probability
/// mass drift of a distribution under transient stepping.
double distribution_mass_residual(const linalg::Vector& distribution);

}  // namespace whart::markov
