#include "whart/markov/superframe_kernel.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::markov {

SuperframeKernel::SuperframeKernel(
    std::vector<linalg::CsrMatrix> slot_matrices)
    : slot_matrices_(std::move(slot_matrices)) {
  expects(!slot_matrices_.empty(), "at least one slot matrix per cycle");
  const std::size_t dim = slot_matrices_.front().rows();
  for (const linalg::CsrMatrix& m : slot_matrices_)
    expects(m.rows() == dim && m.cols() == dim,
            "slot matrices square with one common dimension");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto build_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  // Left-to-right product so the partial result is always the collapse
  // of a cycle prefix; one arena serves all period() - 1 multiplies.
  linalg::SparseProductArena arena;
  product_ = slot_matrices_.front();
  for (std::size_t i = 1; i < slot_matrices_.size(); ++i)
    product_ = linalg::multiply(product_, slot_matrices_[i], arena);
  WHART_COUNT("markov.superframe.builds");
  WHART_OBSERVE("markov.superframe.product_nnz", product_.nonzeros());
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - build_start;
    const auto elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    WHART_OBSERVE("markov.superframe.build_ns", elapsed_ns);
    // Stage-attribution alias: the product build is one of the named
    // pipeline stages reported by tools/obs_report.py.
    WHART_OBSERVE("hart.stage.product_build.ns", elapsed_ns);
  }
#endif
}

const linalg::CsrMatrix& SuperframeKernel::slot_matrix(
    std::size_t position) const {
  expects(position < slot_matrices_.size(), "cycle position in range");
  return slot_matrices_[position];
}

linalg::Vector SuperframeKernel::distribution_after(
    const linalg::Vector& initial, std::uint64_t steps) const {
  expects(initial.size() == dimension(),
          "initial distribution matches state space");
  const std::uint64_t cycles = steps / period();
  const std::uint64_t tail = steps % period();
  WHART_COUNT_N("markov.superframe.cycles", cycles);
  WHART_COUNT_N("markov.superframe.tail_steps", tail);
  WHART_COUNT_N("markov.superframe.steps_collapsed",
                cycles * (period() - 1));
  linalg::Vector p = initial;
  for (std::uint64_t c = 0; c < cycles; ++c) p = product_.left_multiply(p);
  for (std::uint64_t t = 0; t < tail; ++t)
    p = slot_matrices_[t].left_multiply(p);
  return p;
}

linalg::Matrix SuperframeKernel::distributions_after(
    const linalg::Matrix& initials, std::uint64_t steps,
    std::size_t block_rows) const {
  expects(initials.cols() == dimension(),
          "initial distributions match state space");
  const std::uint64_t cycles = steps / period();
  const std::uint64_t tail = steps % period();
  WHART_COUNT_N("markov.superframe.cycles",
                cycles * initials.rows());
  WHART_COUNT_N("markov.superframe.tail_steps", tail * initials.rows());
  linalg::Matrix p = initials;
  for (std::uint64_t c = 0; c < cycles; ++c)
    p = linalg::left_multiply_batch(p, product_, block_rows);
  for (std::uint64_t t = 0; t < tail; ++t)
    p = linalg::left_multiply_batch(p, slot_matrices_[t], block_rows);
  return p;
}

double SuperframeKernel::product_row_sum_residual() const {
  double worst = 0.0;
  for (std::size_t r = 0; r < product_.rows(); ++r)
    worst = std::max(worst, std::abs(1.0 - product_.row_sum(r)));
  return worst;
}

void SuperframeKernel::perturb_product_entry(std::size_t row,
                                             std::size_t col, double delta) {
  expects(row < dimension() && col < dimension(), "entry in range");
  std::vector<linalg::Triplet> entries;
  entries.reserve(product_.nonzeros() + 1);
  for (std::size_t r = 0; r < product_.rows(); ++r)
    product_.for_each_in_row(r, [&](std::size_t c, double v) {
      entries.push_back({r, c, v});
    });
  entries.push_back({row, col, delta});  // duplicate entries sum on assembly
  product_ =
      linalg::CsrMatrix(dimension(), dimension(), std::move(entries));
}

}  // namespace whart::markov
