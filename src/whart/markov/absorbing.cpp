#include "whart/markov/absorbing.hpp"

#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/linalg/lu.hpp"

namespace whart::markov {

AbsorbingAnalysis analyze_absorbing(const Dtmc& chain) {
  WHART_SPAN("absorbing_solve");
  AbsorbingAnalysis result;
  result.absorbing_states = chain.absorbing_states();
  expects(!result.absorbing_states.empty(),
          "chain has at least one absorbing state");

  std::unordered_map<StateIndex, std::size_t> absorbing_pos;
  for (std::size_t j = 0; j < result.absorbing_states.size(); ++j)
    absorbing_pos.emplace(result.absorbing_states[j], j);

  std::unordered_map<StateIndex, std::size_t> transient_pos;
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (!absorbing_pos.contains(s)) {
      transient_pos.emplace(s, result.transient_states.size());
      result.transient_states.push_back(s);
    }
  }

  const std::size_t nt = result.transient_states.size();
  const std::size_t na = result.absorbing_states.size();
  WHART_COUNT("markov.absorbing.solves");
  WHART_OBSERVE("markov.absorbing.transient_states", nt);
  WHART_OBSERVE("markov.absorbing.absorbing_states", na);

  // Extract Q (transient -> transient) and R (transient -> absorbing).
  linalg::Matrix q(nt, nt);
  linalg::Matrix r(nt, na);
  for (std::size_t i = 0; i < nt; ++i) {
    chain.matrix().for_each_in_row(
        result.transient_states[i], [&](std::size_t col, double value) {
          if (auto it = transient_pos.find(col); it != transient_pos.end())
            q(i, it->second) += value;
          else
            r(i, absorbing_pos.at(col)) += value;
        });
  }

  // N = (I - Q)^{-1}; B = N R; t = N 1.
  linalg::Matrix i_minus_q = linalg::Matrix::identity(nt) - q;
  linalg::LuDecomposition lu(std::move(i_minus_q));
  result.expected_visits = lu.solve(linalg::Matrix::identity(nt));
  result.absorption_probability = lu.solve(r);
  result.expected_steps = lu.solve(linalg::Vector(nt, 1.0));
  return result;
}

}  // namespace whart::markov
