#include "whart/markov/hitting.hpp"

#include <limits>
#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/linalg/lu.hpp"
#include "whart/linalg/matrix.hpp"

namespace whart::markov {

namespace {

/// States from which some target is reachable (backward BFS over the
/// positive-probability edges).
std::vector<bool> can_reach(const Dtmc& chain,
                            const std::vector<StateIndex>& targets) {
  // Build the reverse adjacency once.
  std::vector<std::vector<StateIndex>> predecessors(chain.num_states());
  for (StateIndex s = 0; s < chain.num_states(); ++s)
    chain.matrix().for_each_in_row(s, [&](std::size_t to, double p) {
      if (p > 0.0) predecessors[to].push_back(s);
    });

  std::vector<bool> reached(chain.num_states(), false);
  std::vector<StateIndex> queue;
  for (StateIndex t : targets) {
    expects(t < chain.num_states(), "target in range");
    if (!reached[t]) {
      reached[t] = true;
      queue.push_back(t);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head)
    for (StateIndex p : predecessors[queue[head]])
      if (!reached[p]) {
        reached[p] = true;
        queue.push_back(p);
      }
  return reached;
}

std::vector<bool> target_mask(const Dtmc& chain,
                              const std::vector<StateIndex>& targets) {
  std::vector<bool> mask(chain.num_states(), false);
  for (StateIndex t : targets) mask[t] = true;
  return mask;
}

/// Solve x_s = offset + sum_t P(s,t) x_t over the `unknown` states, with
/// x fixed to `boundary` elsewhere.  Returns the full vector.
linalg::Vector solve_restricted(const Dtmc& chain,
                                const std::vector<bool>& unknown,
                                const linalg::Vector& boundary,
                                double offset) {
  std::unordered_map<StateIndex, std::size_t> row_of;
  std::vector<StateIndex> rows;
  for (StateIndex s = 0; s < chain.num_states(); ++s)
    if (unknown[s]) {
      row_of.emplace(s, rows.size());
      rows.push_back(s);
    }
  linalg::Vector result = boundary;
  if (rows.empty()) return result;

  const std::size_t n = rows.size();
  linalg::Matrix system = linalg::Matrix::identity(n);
  linalg::Vector rhs(n, offset);
  for (std::size_t i = 0; i < n; ++i) {
    chain.matrix().for_each_in_row(rows[i], [&](std::size_t to, double p) {
      if (p <= 0.0) return;
      if (auto it = row_of.find(to); it != row_of.end())
        system(i, it->second) -= p;
      else
        rhs[i] += p * boundary[to];
    });
  }
  const linalg::Vector solution = linalg::solve(system, rhs);
  for (std::size_t i = 0; i < n; ++i) result[rows[i]] = solution[i];
  return result;
}

}  // namespace

linalg::Vector hitting_probabilities(
    const Dtmc& chain, const std::vector<StateIndex>& targets) {
  expects(!targets.empty(), "at least one target");
  const std::vector<bool> reachable = can_reach(chain, targets);
  const std::vector<bool> is_target = target_mask(chain, targets);

  linalg::Vector boundary(chain.num_states(), 0.0);
  std::vector<bool> unknown(chain.num_states(), false);
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (is_target[s])
      boundary[s] = 1.0;
    else if (reachable[s])
      unknown[s] = true;
  }
  return solve_restricted(chain, unknown, boundary, 0.0);
}

linalg::Vector expected_hitting_times(
    const Dtmc& chain, const std::vector<StateIndex>& targets) {
  const linalg::Vector h = hitting_probabilities(chain, targets);
  const std::vector<bool> is_target = target_mask(chain, targets);

  constexpr double kSureTolerance = 1e-12;
  linalg::Vector boundary(chain.num_states(), 0.0);
  std::vector<bool> unknown(chain.num_states(), false);
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    if (is_target[s]) continue;
    if (h[s] >= 1.0 - kSureTolerance)
      unknown[s] = true;
    else
      boundary[s] = std::numeric_limits<double>::infinity();
  }
  // States that transition into an infinite-boundary state with positive
  // probability would poison the rhs; but such states have h < 1 and are
  // already on the boundary themselves, so the restricted system only
  // references finite values.
  return solve_restricted(chain, unknown, boundary, 1.0);
}

}  // namespace whart::markov
