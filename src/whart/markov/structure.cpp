#include "whart/markov/structure.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "whart/common/contracts.hpp"

namespace whart::markov {

namespace {

/// Iterative Tarjan SCC (explicit stack — path DTMCs can be thousands of
/// states deep, so recursion is off the table).
struct Tarjan {
  const Dtmc& chain;
  std::vector<std::uint32_t> index;
  std::vector<std::uint32_t> low;
  std::vector<bool> on_stack;
  std::vector<StateIndex> stack;
  std::vector<std::vector<StateIndex>> components;
  std::uint32_t next_index = 1;  // 0 = unvisited

  explicit Tarjan(const Dtmc& c)
      : chain(c),
        index(c.num_states(), 0),
        low(c.num_states(), 0),
        on_stack(c.num_states(), false) {}

  struct Frame {
    StateIndex state;
    std::vector<StateIndex> successors;
    std::size_t next = 0;
  };

  void run(StateIndex root) {
    std::vector<Frame> frames;
    frames.push_back(make_frame(root));
    visit(root);

    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next < frame.successors.size()) {
        const StateIndex successor = frame.successors[frame.next++];
        if (index[successor] == 0) {
          visit(successor);
          frames.push_back(make_frame(successor));
        } else if (on_stack[successor]) {
          low[frame.state] = std::min(low[frame.state], index[successor]);
        }
      } else {
        if (low[frame.state] == index[frame.state]) pop_component(frame.state);
        const StateIndex finished = frame.state;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().state] =
              std::min(low[frames.back().state], low[finished]);
      }
    }
  }

  Frame make_frame(StateIndex state) {
    Frame frame;
    frame.state = state;
    chain.matrix().for_each_in_row(state, [&](std::size_t to, double p) {
      if (p > 0.0) frame.successors.push_back(to);
    });
    return frame;
  }

  void visit(StateIndex state) {
    index[state] = low[state] = next_index++;
    stack.push_back(state);
    on_stack[state] = true;
  }

  void pop_component(StateIndex root) {
    std::vector<StateIndex> component;
    for (;;) {
      const StateIndex s = stack.back();
      stack.pop_back();
      on_stack[s] = false;
      component.push_back(s);
      if (s == root) break;
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
};

}  // namespace

ClassDecomposition communicating_classes(const Dtmc& chain) {
  expects(chain.num_states() > 0, "chain is non-empty");
  Tarjan tarjan(chain);
  for (StateIndex s = 0; s < chain.num_states(); ++s)
    if (tarjan.index[s] == 0) tarjan.run(s);

  ClassDecomposition result;
  result.classes = std::move(tarjan.components);
  // Deterministic order: by smallest member.
  std::sort(result.classes.begin(), result.classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  result.class_of.assign(chain.num_states(), 0);
  for (std::size_t c = 0; c < result.classes.size(); ++c)
    for (StateIndex s : result.classes[c]) result.class_of[s] = c;

  result.is_closed.assign(result.classes.size(), true);
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    chain.matrix().for_each_in_row(s, [&](std::size_t to, double p) {
      if (p > 0.0 && result.class_of[to] != result.class_of[s])
        result.is_closed[result.class_of[s]] = false;
    });
  }
  return result;
}

bool is_irreducible(const Dtmc& chain) {
  return communicating_classes(chain).class_count() == 1;
}

std::vector<StateIndex> recurrent_states(const Dtmc& chain) {
  const ClassDecomposition decomposition = communicating_classes(chain);
  std::vector<StateIndex> result;
  for (std::size_t c = 0; c < decomposition.class_count(); ++c)
    if (decomposition.is_closed[c])
      result.insert(result.end(), decomposition.classes[c].begin(),
                    decomposition.classes[c].end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<StateIndex> transient_states(const Dtmc& chain) {
  const ClassDecomposition decomposition = communicating_classes(chain);
  std::vector<StateIndex> result;
  for (std::size_t c = 0; c < decomposition.class_count(); ++c)
    if (!decomposition.is_closed[c])
      result.insert(result.end(), decomposition.classes[c].begin(),
                    decomposition.classes[c].end());
  std::sort(result.begin(), result.end());
  return result;
}

std::uint32_t period(const Dtmc& chain, StateIndex state) {
  expects(state < chain.num_states(), "state in range");
  // BFS levels within the state's communicating class; the period is the
  // gcd of (level(u) + 1 - level(v)) over intra-class edges u -> v.
  const ClassDecomposition decomposition = communicating_classes(chain);
  const std::size_t cls = decomposition.class_of[state];

  std::vector<std::int64_t> level(chain.num_states(), -1);
  std::vector<StateIndex> queue{state};
  level[state] = 0;
  std::uint32_t gcd = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const StateIndex u = queue[head];
    chain.matrix().for_each_in_row(u, [&](std::size_t to, double p) {
      if (p <= 0.0 || decomposition.class_of[to] != cls) return;
      if (level[to] < 0) {
        level[to] = level[u] + 1;
        queue.push_back(to);
      } else {
        const std::int64_t difference = level[u] + 1 - level[to];
        gcd = std::gcd(gcd, static_cast<std::uint32_t>(
                                difference < 0 ? -difference : difference));
      }
    });
  }
  return gcd;
}

bool is_ergodic(const Dtmc& chain) {
  return is_irreducible(chain) && period(chain, 0) == 1;
}

double max_row_sum_residual(const Dtmc& chain) {
  long double worst = 0.0L;
  for (std::size_t row = 0; row < chain.num_states(); ++row) {
    long double sum = 0.0L;
    chain.matrix().for_each_in_row(
        row, [&](std::size_t, double value) { sum += value; });
    const long double residual = sum > 1.0L ? sum - 1.0L : 1.0L - sum;
    worst = std::max(worst, residual);
  }
  return static_cast<double>(worst);
}

double distribution_mass_residual(const linalg::Vector& distribution) {
  long double sum = 0.0L;
  for (double value : distribution) sum += value;
  const long double residual = sum > 1.0L ? sum - 1.0L : 1.0L - sum;
  return static_cast<double>(residual);
}

CsrPattern CsrPattern::of(const linalg::CsrMatrix& matrix) {
  CsrPattern pattern;
  pattern.rows = matrix.rows();
  pattern.cols = matrix.cols();
  pattern.row_start.reserve(matrix.rows() + 1);
  pattern.row_start.push_back(0);
  pattern.col_index.reserve(matrix.nonzeros());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    matrix.for_each_in_row(
        r, [&](std::size_t c, double) { pattern.col_index.push_back(c); });
    pattern.row_start.push_back(pattern.col_index.size());
  }
  return pattern;
}

namespace {

constexpr std::size_t kNoTag = std::numeric_limits<std::size_t>::max();

/// Pattern of a * b: the symbolic half of Gustavson's algorithm (the
/// same marker walk linalg::multiply runs, minus the arithmetic).
CsrPattern symbolic_multiply(const CsrPattern& a, const CsrPattern& b) {
  expects(a.cols == b.rows, "inner dimensions agree");
  CsrPattern out;
  out.rows = a.rows;
  out.cols = b.cols;
  out.row_start.reserve(a.rows + 1);
  out.row_start.push_back(0);
  std::vector<std::size_t> marker(b.cols, kNoTag);
  std::vector<std::size_t> scratch;
  for (std::size_t r = 0; r < a.rows; ++r) {
    scratch.clear();
    for (std::size_t ka = a.row_start[r]; ka < a.row_start[r + 1]; ++ka) {
      const std::size_t ac = a.col_index[ka];
      for (std::size_t kb = b.row_start[ac]; kb < b.row_start[ac + 1]; ++kb) {
        const std::size_t bc = b.col_index[kb];
        if (marker[bc] != r) {
          marker[bc] = r;
          scratch.push_back(bc);
        }
      }
    }
    std::sort(scratch.begin(), scratch.end());
    out.col_index.insert(out.col_index.end(), scratch.begin(), scratch.end());
    out.row_start.push_back(out.col_index.size());
  }
  return out;
}

}  // namespace

ChainProductSkeleton::ChainProductSkeleton(
    const std::vector<CsrPattern>& factors) {
  expects(!factors.empty(), "chain has at least one factor");
  partials_.reserve(factors.size());
  partials_.push_back(factors.front());
  for (std::size_t k = 1; k < factors.size(); ++k)
    partials_.push_back(symbolic_multiply(partials_.back(), factors[k]));
  for (const CsrPattern& p : partials_) max_cols_ = std::max(max_cols_, p.cols);
  for (std::size_t k = 0; k + 1 < partials_.size(); ++k)
    max_partial_nnz_ = std::max(max_partial_nnz_, partials_[k].nonzeros());
}

void ChainProductSkeleton::refill(
    const std::vector<linalg::CsrMatrix>& factors, ChainRefillArena& arena,
    std::span<double> values_out) const {
  expects(factors.size() == partials_.size(),
          "one factor per skeleton pattern");
  expects(values_out.size() == pattern().nonzeros(),
          "output sized to the product pattern");
  expects(factors.front().nonzeros() == partials_.front().nonzeros(),
          "first factor matches its captured pattern");
  const std::span<const double> first = factors.front().values();
  if (factors.size() == 1) {
    std::copy(first.begin(), first.end(), values_out.begin());
    return;
  }
  // Warm-up sizing only; a warm arena keeps its capacity and these
  // assigns/resizes allocate nothing.  The marker must be re-blanked
  // every refill — tags repeat across refills.
  arena.marker.assign(max_cols_, kNoTag);
  arena.accumulator.resize(max_cols_);
  arena.partial_a.resize(max_partial_nnz_);
  arena.partial_b.resize(max_partial_nnz_);

  // Replay the numeric pass of linalg::multiply for every chain step.
  // The left operand's pattern is the stored partial (whose columns are
  // sorted exactly as a fresh CSR partial would store them) and the
  // right operand is the fresh factor, so each multiply-add runs in the
  // very same order as a fresh chain build — the results are bitwise
  // identical, not merely close.
  const double* left_values = first.data();
  std::size_t tag = 0;
  for (std::size_t k = 1; k < partials_.size(); ++k) {
    const CsrPattern& left = partials_[k - 1];
    const CsrPattern& out = partials_[k];
    const linalg::CsrMatrix& b = factors[k];
    expects(b.rows() == left.cols && b.cols() == out.cols,
            "factor dimensions match the skeleton");
    double* out_values = k + 1 == partials_.size() ? values_out.data()
                         : k % 2 == 1             ? arena.partial_a.data()
                                                  : arena.partial_b.data();
    for (std::size_t r = 0; r < out.rows; ++r) {
      const std::size_t row_tag = tag++;
      for (std::size_t ka = left.row_start[r]; ka < left.row_start[r + 1];
           ++ka) {
        const std::size_t ac = left.col_index[ka];
        const double av = left_values[ka];
        b.for_each_in_row(ac, [&](std::size_t bc, double bv) {
          if (arena.marker[bc] != row_tag) {
            arena.marker[bc] = row_tag;
            arena.accumulator[bc] = av * bv;
          } else {
            arena.accumulator[bc] += av * bv;
          }
        });
      }
      for (std::size_t ko = out.row_start[r]; ko < out.row_start[r + 1]; ++ko)
        out_values[ko] = arena.accumulator[out.col_index[ko]];
    }
    left_values = out_values;
  }
}

}  // namespace whart::markov
