#include "whart/markov/structure.hpp"

#include <algorithm>
#include <numeric>

#include "whart/common/contracts.hpp"

namespace whart::markov {

namespace {

/// Iterative Tarjan SCC (explicit stack — path DTMCs can be thousands of
/// states deep, so recursion is off the table).
struct Tarjan {
  const Dtmc& chain;
  std::vector<std::uint32_t> index;
  std::vector<std::uint32_t> low;
  std::vector<bool> on_stack;
  std::vector<StateIndex> stack;
  std::vector<std::vector<StateIndex>> components;
  std::uint32_t next_index = 1;  // 0 = unvisited

  explicit Tarjan(const Dtmc& c)
      : chain(c),
        index(c.num_states(), 0),
        low(c.num_states(), 0),
        on_stack(c.num_states(), false) {}

  struct Frame {
    StateIndex state;
    std::vector<StateIndex> successors;
    std::size_t next = 0;
  };

  void run(StateIndex root) {
    std::vector<Frame> frames;
    frames.push_back(make_frame(root));
    visit(root);

    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next < frame.successors.size()) {
        const StateIndex successor = frame.successors[frame.next++];
        if (index[successor] == 0) {
          visit(successor);
          frames.push_back(make_frame(successor));
        } else if (on_stack[successor]) {
          low[frame.state] = std::min(low[frame.state], index[successor]);
        }
      } else {
        if (low[frame.state] == index[frame.state]) pop_component(frame.state);
        const StateIndex finished = frame.state;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().state] =
              std::min(low[frames.back().state], low[finished]);
      }
    }
  }

  Frame make_frame(StateIndex state) {
    Frame frame;
    frame.state = state;
    chain.matrix().for_each_in_row(state, [&](std::size_t to, double p) {
      if (p > 0.0) frame.successors.push_back(to);
    });
    return frame;
  }

  void visit(StateIndex state) {
    index[state] = low[state] = next_index++;
    stack.push_back(state);
    on_stack[state] = true;
  }

  void pop_component(StateIndex root) {
    std::vector<StateIndex> component;
    for (;;) {
      const StateIndex s = stack.back();
      stack.pop_back();
      on_stack[s] = false;
      component.push_back(s);
      if (s == root) break;
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
};

}  // namespace

ClassDecomposition communicating_classes(const Dtmc& chain) {
  expects(chain.num_states() > 0, "chain is non-empty");
  Tarjan tarjan(chain);
  for (StateIndex s = 0; s < chain.num_states(); ++s)
    if (tarjan.index[s] == 0) tarjan.run(s);

  ClassDecomposition result;
  result.classes = std::move(tarjan.components);
  // Deterministic order: by smallest member.
  std::sort(result.classes.begin(), result.classes.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  result.class_of.assign(chain.num_states(), 0);
  for (std::size_t c = 0; c < result.classes.size(); ++c)
    for (StateIndex s : result.classes[c]) result.class_of[s] = c;

  result.is_closed.assign(result.classes.size(), true);
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    chain.matrix().for_each_in_row(s, [&](std::size_t to, double p) {
      if (p > 0.0 && result.class_of[to] != result.class_of[s])
        result.is_closed[result.class_of[s]] = false;
    });
  }
  return result;
}

bool is_irreducible(const Dtmc& chain) {
  return communicating_classes(chain).class_count() == 1;
}

std::vector<StateIndex> recurrent_states(const Dtmc& chain) {
  const ClassDecomposition decomposition = communicating_classes(chain);
  std::vector<StateIndex> result;
  for (std::size_t c = 0; c < decomposition.class_count(); ++c)
    if (decomposition.is_closed[c])
      result.insert(result.end(), decomposition.classes[c].begin(),
                    decomposition.classes[c].end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<StateIndex> transient_states(const Dtmc& chain) {
  const ClassDecomposition decomposition = communicating_classes(chain);
  std::vector<StateIndex> result;
  for (std::size_t c = 0; c < decomposition.class_count(); ++c)
    if (!decomposition.is_closed[c])
      result.insert(result.end(), decomposition.classes[c].begin(),
                    decomposition.classes[c].end());
  std::sort(result.begin(), result.end());
  return result;
}

std::uint32_t period(const Dtmc& chain, StateIndex state) {
  expects(state < chain.num_states(), "state in range");
  // BFS levels within the state's communicating class; the period is the
  // gcd of (level(u) + 1 - level(v)) over intra-class edges u -> v.
  const ClassDecomposition decomposition = communicating_classes(chain);
  const std::size_t cls = decomposition.class_of[state];

  std::vector<std::int64_t> level(chain.num_states(), -1);
  std::vector<StateIndex> queue{state};
  level[state] = 0;
  std::uint32_t gcd = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const StateIndex u = queue[head];
    chain.matrix().for_each_in_row(u, [&](std::size_t to, double p) {
      if (p <= 0.0 || decomposition.class_of[to] != cls) return;
      if (level[to] < 0) {
        level[to] = level[u] + 1;
        queue.push_back(to);
      } else {
        const std::int64_t difference = level[u] + 1 - level[to];
        gcd = std::gcd(gcd, static_cast<std::uint32_t>(
                                difference < 0 ? -difference : difference));
      }
    });
  }
  return gcd;
}

bool is_ergodic(const Dtmc& chain) {
  return is_irreducible(chain) && period(chain, 0) == 1;
}

double max_row_sum_residual(const Dtmc& chain) {
  long double worst = 0.0L;
  for (std::size_t row = 0; row < chain.num_states(); ++row) {
    long double sum = 0.0L;
    chain.matrix().for_each_in_row(
        row, [&](std::size_t, double value) { sum += value; });
    const long double residual = sum > 1.0L ? sum - 1.0L : 1.0L - sum;
    worst = std::max(worst, residual);
  }
  return static_cast<double>(worst);
}

double distribution_mass_residual(const linalg::Vector& distribution) {
  long double sum = 0.0L;
  for (double value : distribution) sum += value;
  const long double residual = sum > 1.0L ? sum - 1.0L : 1.0L - sum;
  return static_cast<double>(residual);
}

}  // namespace whart::markov
