// Long-run behavior of arbitrary finite DTMCs.  For a reducible chain
// the trajectory is eventually captured by one of the closed
// communicating classes and equilibrates to that class's stationary
// distribution; the Cesàro (time-average) limit therefore always exists:
//
//   pi_long(s) = sum_c P(absorbed into class c | initial) * pi_c(s)
//
// For aperiodic chains this is also the plain limit of p(t).  Combines
// the structure analysis (closed classes), per-class stationary solves
// and the absorbing-chain analysis on the class-collapsed chain.
#pragma once

#include "whart/linalg/vector.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// The Cesàro limiting distribution from `initial` (sizes must match).
linalg::Vector long_run_distribution(const Dtmc& chain,
                                     const linalg::Vector& initial);

/// Probability, per closed communicating class (in the order
/// communicating_classes() lists the *closed* ones), that the chain
/// started from `initial` is eventually captured by it.  Sums to 1.
linalg::Vector capture_probabilities(const Dtmc& chain,
                                     const linalg::Vector& initial);

}  // namespace whart::markov
