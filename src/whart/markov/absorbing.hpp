// Absorbing-chain analysis.  The path model (paper Section IV) is an
// absorbing DTMC: the goal states and the Discard state are absorbing and
// every other state is transient.  The fundamental matrix N = (I - Q)^{-1}
// yields absorption probabilities and expected steps to absorption in
// closed form, which cross-validates the transient (Eq. 5) computation.
#pragma once

#include <vector>

#include "whart/linalg/matrix.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// Result of analyzing an absorbing DTMC.
struct AbsorbingAnalysis {
  /// Transient (non-absorbing) states in chain order.
  std::vector<StateIndex> transient_states;

  /// Absorbing states in chain order.
  std::vector<StateIndex> absorbing_states;

  /// absorption_probability[i][j]: probability that the chain started in
  /// transient_states[i] is eventually absorbed in absorbing_states[j]
  /// (the matrix B = N R).
  linalg::Matrix absorption_probability;

  /// expected_steps[i]: expected number of steps until absorption starting
  /// from transient_states[i] (t = N 1).
  linalg::Vector expected_steps;

  /// expected_visits (the fundamental matrix N): expected number of visits
  /// to transient_states[j] starting from transient_states[i].
  linalg::Matrix expected_visits;
};

/// Analyze an absorbing chain.  Throws whart::precondition_error when the
/// chain has no absorbing state; throws whart::invariant_error when some
/// transient state cannot reach any absorbing state (I - Q singular).
AbsorbingAnalysis analyze_absorbing(const Dtmc& chain);

}  // namespace whart::markov
