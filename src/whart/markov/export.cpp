#include "whart/markov/export.hpp"

#include <ostream>
#include <sstream>

#include "whart/common/contracts.hpp"

namespace whart::markov {

namespace {

std::string escape_quotes(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '"') escaped += '\\';
    escaped += c;
  }
  return escaped;
}

std::string format_probability(double p) {
  std::ostringstream out;
  out << p;  // shortest round-trippable-ish rendering is fine here
  return out.str();
}

}  // namespace

void write_dot(std::ostream& out, const Dtmc& chain,
               const DotOptions& options) {
  out << "digraph " << options.name << " {\n";
  if (options.left_to_right) out << "  rankdir=LR;\n";
  out << "  node [shape=circle];\n";
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    out << "  s" << s << " [label=\""
        << escape_quotes(chain.state_name(s)) << "\"";
    if (options.highlight_absorbing && chain.is_absorbing(s))
      out << ", shape=doublecircle";
    out << "];\n";
  }
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    chain.matrix().for_each_in_row(s, [&](std::size_t to, double p) {
      if (p < options.min_probability) return;
      if (chain.is_absorbing(s) && to == s) return;  // skip self-loops
      out << "  s" << s << " -> s" << to << " [label=\""
          << format_probability(p) << "\"];\n";
    });
  }
  out << "}\n";
}

void write_prism_transitions(std::ostream& out, const Dtmc& chain) {
  out << chain.num_states() << ' ' << chain.matrix().nonzeros() << '\n';
  for (StateIndex s = 0; s < chain.num_states(); ++s) {
    chain.matrix().for_each_in_row(s, [&](std::size_t to, double p) {
      out << s << ' ' << to << ' ' << format_probability(p) << '\n';
    });
  }
}

void write_prism_labels(std::ostream& out, const Dtmc& chain,
                        StateIndex initial) {
  expects(initial < chain.num_states(), "initial state in range");
  const std::vector<StateIndex> absorbing = chain.absorbing_states();
  out << "0=\"init\"";
  for (std::size_t i = 0; i < absorbing.size(); ++i)
    out << ' ' << i + 1 << "=\""
        << escape_quotes(chain.state_name(absorbing[i])) << '"';
  out << '\n';
  out << initial << ": 0\n";
  for (std::size_t i = 0; i < absorbing.size(); ++i)
    out << absorbing[i] << ": " << i + 1 << '\n';
}

}  // namespace whart::markov
