// Trajectory sampling for generic DTMCs: draw sample paths and empirical
// distributions.  Used to cross-validate the analytic machinery and as a
// fallback for measures with no closed form.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/markov/dtmc.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::markov {

/// Sample one trajectory of `steps` transitions starting at `start`;
/// returns the visited states (size steps + 1, trajectory[0] = start).
std::vector<StateIndex> sample_trajectory(const Dtmc& chain,
                                          StateIndex start,
                                          std::uint64_t steps,
                                          numeric::Xoshiro256& rng);

/// One transition from `state`.
StateIndex sample_step(const Dtmc& chain, StateIndex state,
                       numeric::Xoshiro256& rng);

/// Empirical distribution after `steps` transitions over `trajectories`
/// independent runs from `start` — a Monte-Carlo estimate of
/// distribution_after().
linalg::Vector empirical_distribution(const Dtmc& chain, StateIndex start,
                                      std::uint64_t steps,
                                      std::uint64_t trajectories,
                                      numeric::Xoshiro256& rng);

/// First-passage: the step at which a trajectory from `start` first hits
/// any state in `targets`, or nullopt within `max_steps`.
std::optional<std::uint64_t> sample_hitting_time(
    const Dtmc& chain, StateIndex start,
    const std::vector<StateIndex>& targets, std::uint64_t max_steps,
    numeric::Xoshiro256& rng);

}  // namespace whart::markov
