// Steady-state (stationary) distribution solvers: pi = pi P, sum(pi) = 1.
// Two methods are provided — a direct linear solve (exact, O(n^3)) and
// power iteration (matrix-free, for larger chains).
#pragma once

#include <cstdint>

#include "whart/linalg/vector.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::markov {

/// Direct solve of the stationary equations via LU.  Replaces one balance
/// equation with the normalization constraint.  Intended for irreducible
/// chains (unique stationary distribution); throws whart::invariant_error
/// when the system is singular beyond that replacement.
linalg::Vector steady_state_direct(const Dtmc& chain);

/// Power iteration from the uniform distribution until the L-inf change
/// drops below `tolerance` or `max_iterations` is reached.  For periodic
/// chains, iterates the lazy chain (P + I)/2, which has the same stationary
/// distribution and always converges.
linalg::Vector steady_state_power(const Dtmc& chain, double tolerance = 1e-13,
                                  std::uint64_t max_iterations = 200000);

}  // namespace whart::markov
