#include "whart/markov/transient.hpp"

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::markov {

linalg::Vector distribution_after(const Dtmc& chain,
                                  const linalg::Vector& initial,
                                  std::uint64_t steps) {
  expects(initial.size() == chain.num_states(),
          "initial distribution matches state space");
  WHART_COUNT("markov.transient.solves");
  WHART_COUNT_N("markov.transient.steps", steps);
  linalg::Vector p = initial;
  for (std::uint64_t t = 0; t < steps; ++t) p = chain.step(p);
  return p;
}

std::vector<linalg::Vector> distribution_trajectory(
    const Dtmc& chain, const linalg::Vector& initial, std::uint64_t steps) {
  expects(initial.size() == chain.num_states(),
          "initial distribution matches state space");
  std::vector<linalg::Vector> trajectory;
  trajectory.reserve(steps + 1);
  trajectory.push_back(initial);
  for (std::uint64_t t = 0; t < steps; ++t)
    trajectory.push_back(chain.step(trajectory.back()));
  return trajectory;
}

linalg::Vector distribution_after_inhomogeneous(
    const std::function<const linalg::CsrMatrix&(std::uint64_t step)>&
        matrix_for_step,
    linalg::Vector initial, std::uint64_t steps) {
  for (std::uint64_t t = 1; t <= steps; ++t) {
    const linalg::CsrMatrix& matrix = matrix_for_step(t);
    expects(matrix.rows() == initial.size() && matrix.cols() == initial.size(),
            "step matrix matches state space");
    initial = matrix.left_multiply(initial);
  }
  return initial;
}

linalg::Vector distribution_after_periodic(const SuperframeKernel& kernel,
                                           const linalg::Vector& initial,
                                           std::uint64_t steps) {
  WHART_COUNT("markov.transient.periodic_solves");
  WHART_COUNT_N("markov.transient.steps", steps);
  return kernel.distribution_after(initial, steps);
}

linalg::Matrix distributions_after_periodic(const SuperframeKernel& kernel,
                                            const linalg::Matrix& initials,
                                            std::uint64_t steps) {
  WHART_COUNT("markov.transient.periodic_batch_solves");
  WHART_COUNT_N("markov.transient.steps", steps * initials.rows());
  return kernel.distributions_after(initials, steps);
}

double transient_probability(const Dtmc& chain, const linalg::Vector& initial,
                             StateIndex state, std::uint64_t steps) {
  expects(state < chain.num_states(), "state in range");
  return distribution_after(chain, initial, steps)[state];
}

}  // namespace whart::markov
