#include "whart/markov/dtmc.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::markov {

namespace {
constexpr double kStochasticTolerance = 1e-9;
}

Dtmc::Dtmc(std::size_t num_states, std::vector<linalg::Triplet> transitions,
           std::vector<std::string> state_names)
    : matrix_(num_states, num_states, std::move(transitions)),
      state_names_(std::move(state_names)) {
  expects(state_names_.empty() || state_names_.size() == num_states,
          "state_names empty or one per state");
  for (std::size_t row = 0; row < num_states; ++row) {
    bool nonnegative = true;
    matrix_.for_each_in_row(row, [&](std::size_t, double value) {
      if (value < -kStochasticTolerance) nonnegative = false;
    });
    ensures(nonnegative, "transition probabilities are non-negative");
    const double row_sum = matrix_.row_sum(row);
    ensures(std::abs(row_sum - 1.0) <= kStochasticTolerance,
            "every row sums to 1");
  }
}

std::string Dtmc::state_name(StateIndex state) const {
  expects(state < num_states(), "state in range");
  if (state < state_names_.size() && !state_names_[state].empty())
    return state_names_[state];
  return "s" + std::to_string(state);
}

std::optional<StateIndex> Dtmc::find_state(
    std::string_view state_name) const noexcept {
  for (std::size_t i = 0; i < state_names_.size(); ++i)
    if (state_names_[i] == state_name) return i;
  return std::nullopt;
}

bool Dtmc::is_absorbing(StateIndex state) const {
  expects(state < num_states(), "state in range");
  return std::abs(matrix_.at(state, state) - 1.0) <= kStochasticTolerance;
}

std::vector<StateIndex> Dtmc::absorbing_states() const {
  std::vector<StateIndex> result;
  for (StateIndex s = 0; s < num_states(); ++s)
    if (is_absorbing(s)) result.push_back(s);
  return result;
}

linalg::Vector Dtmc::step(const linalg::Vector& distribution) const {
  expects(distribution.size() == num_states(),
          "distribution matches state space");
  return matrix_.left_multiply(distribution);
}

linalg::Vector point_distribution(std::size_t num_states, StateIndex state) {
  return linalg::unit(num_states, state);
}

}  // namespace whart::markov
