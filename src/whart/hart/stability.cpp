#include "whart/hart/stability.hpp"

#include <cmath>
#include <limits>

#include "whart/common/contracts.hpp"

namespace whart::hart {

StabilityAssessment assess_stability(
    double reachability, const StabilityRequirement& requirement,
    double min_intervals_between_violations) {
  expects(reachability >= 0.0 && reachability <= 1.0, "0 <= R <= 1");
  expects(requirement.max_consecutive_losses >= 1, "k >= 1");
  expects(min_intervals_between_violations > 0.0, "threshold > 0");

  StabilityAssessment a;
  a.reachability = reachability;
  const double q = 1.0 - reachability;  // per-interval loss probability
  const double k = requirement.max_consecutive_losses;
  const double qk = std::pow(q, k);
  a.violation_probability = qk;
  if (q == 0.0) {
    a.expected_intervals_to_violation =
        std::numeric_limits<double>::infinity();
    a.expected_intervals_to_first_loss =
        std::numeric_limits<double>::infinity();
  } else {
    a.expected_intervals_to_violation = (1.0 - qk) / ((1.0 - q) * qk);
    a.expected_intervals_to_first_loss = 1.0 / q;
  }
  a.meets_reachability = reachability >= requirement.min_reachability;
  a.meets_run_requirement =
      a.expected_intervals_to_violation >= min_intervals_between_violations;
  return a;
}

}  // namespace whart::hart
