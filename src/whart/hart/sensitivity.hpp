// Reachability sensitivity: dR / d(pi_h) for every hop h of a path —
// which link upgrade buys the most delivery probability.  Computed by an
// adjoint (forward-mass x backward-delivery-gap) sweep over the layered
// chain, so one analysis prices every link simultaneously; a
// finite-difference cross-check lives in the tests.
//
// This makes the paper's advice quantitative: "the longest path with the
// lowest link availability forms the bottleneck of the network and
// improving the bottleneck can considerably improve the network
// performance" (Section VI-A).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// dR/dps per hop: how much the path's reachability rises per unit
/// increase of hop h's per-attempt success probability (all attempts of
/// that hop move together, as they do when its stationary availability
/// improves).  All entries are >= 0.  kSuperframeProduct folds the
/// adjoint cycle-by-cycle through the superframe product (one bilinear
/// form per cycle instead of a per-slot sweep) when `links` is
/// cycle-stationary, agreeing with the per-slot sweep to rounding;
/// otherwise it falls back to per-slot.
std::vector<double> reachability_sensitivity(
    const PathModel& model, const LinkProbabilityProvider& links,
    TransientKernel kernel = TransientKernel::kPerSlot);

/// Batched sensitivity (DESIGN.md §13): one adjoint sweep over the
/// skeleton's shared patterns prices every provider at once, SoA
/// lane-parallel.  Returns one dR/dps vector per provider, in order.
/// Lanes the batch sweep cannot take (kernel != kSuperframeProduct or a
/// non-cycle-stationary provider) run the scalar sweep instead, as does
/// the whole call when fewer than two lanes qualify; batched lanes agree
/// with their scalar sweeps to rounding (~1e-15 relative).
std::vector<std::vector<double>> reachability_sensitivity_batch(
    const PathModelSkeleton& skeleton,
    std::span<const LinkProbabilityProvider* const> links,
    TransientKernel kernel = TransientKernel::kPerSlot);

/// Network-level link ranking: for every link, the summed dR/dpi over
/// all paths using it — the total reachability (expected delivered
/// messages per interval) gained per unit of availability improvement.
struct LinkSensitivity {
  net::LinkId link;
  double total_dR_dpi = 0.0;
  std::size_t paths_using = 0;
};

/// Rank all links of a scheduled network, most valuable upgrade first.
/// Per-path sensitivities are computed concurrently (`threads` as in
/// common::parallel_for); the ranking is independent of the thread count.
/// Paths sharing a schedule shape (equal skeleton fingerprints, DESIGN.md
/// §12) share one symbolic model build — the adjoint sweep reads only
/// the shape, so the ranking is bitwise-identical to per-path builds.
/// `batch_lanes > 1` additionally groups same-shape paths into SoA
/// batches of at most that many lanes priced through
/// reachability_sensitivity_batch (the ranking then agrees with the
/// scalar path to rounding rather than bitwise).
std::vector<LinkSensitivity> rank_link_upgrades(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, unsigned threads = 0,
    TransientKernel kernel = TransientKernel::kPerSlot,
    std::size_t batch_lanes = 1);

class WhatIfEngine;

/// Exact what-if pricing of one candidate link upgrade: every link's
/// finite reachability/delay impact, not its derivative.
struct LinkUpgradeImpact {
  net::LinkId link;

  /// Exact summed reachability gain over the paths using the link when
  /// its availability moves to the evaluated target.
  double reachability_delta = 0.0;

  /// Network-wide worst expected path delay after the upgrade, ms.
  double worst_expected_delay_ms = 0.0;

  std::size_t paths_using = 0;
};

/// The exact complement of rank_link_upgrades (DESIGN.md §15): move every
/// link's availability to `target_availability` one at a time through the
/// incremental what-if engine — only the paths using each link are
/// re-solved; every other path's cached measures are reused — and rank
/// the finite gains, largest first (ties keep ascending link-id order).
/// Where rank_link_upgrades prices the *derivative* dR/dpi, this prices
/// the actual candidate upgrade; the two orders agree in the small-delta
/// limit and the derivative ranking is the cheaper screen for the
/// what-if pricing of the survivors.  Links already at or above the
/// target still get evaluated (their delta is then typically <= 0).
std::vector<LinkUpgradeImpact> evaluate_link_upgrades(
    WhatIfEngine& engine, double target_availability);

}  // namespace whart::hart
