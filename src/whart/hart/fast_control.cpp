#include "whart/hart/fast_control.hpp"

#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/hart/analytic.hpp"

namespace whart::hart {

std::vector<ReportingIntervalPoint> sweep_reporting_interval(
    PathModelConfig base_config, double ps,
    const std::vector<std::uint32_t>& reporting_intervals) {
  expects(!reporting_intervals.empty(), "at least one reporting interval");
  std::vector<ReportingIntervalPoint> points;
  points.reserve(reporting_intervals.size());
  for (std::uint32_t is : reporting_intervals) {
    expects(is >= 1, "Is >= 1");
    PathModelConfig config = base_config;
    config.reporting_interval = is;
    config.ttl.reset();
    const PathModel model(config);
    const SteadyStateLinks links(config.hop_count(),
                                 link::LinkModel::from_availability(ps));
    ReportingIntervalPoint point;
    point.reporting_interval = is;
    point.measures = compute_path_measures(model, links);
    point.delivered_per_cycle = point.measures.reachability / is;
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<MessageBlock> one_hop_message_blocks(double ps,
                                                 std::uint32_t window_cycles,
                                                 std::uint32_t Is) {
  expects(Is >= 1, "Is >= 1");
  expects(window_cycles % Is == 0, "window is a multiple of Is");
  expects(ps >= 0.0 && ps <= 1.0, "0 <= ps <= 1");
  double reach = 0.0;
  double miss = 1.0;
  for (std::uint32_t c = 0; c < Is; ++c) {
    reach += miss * ps;
    miss *= 1.0 - ps;
  }
  std::vector<MessageBlock> blocks;
  for (std::uint32_t born = 0; born < window_cycles; born += Is)
    blocks.push_back(MessageBlock{born, Is, reach});
  return blocks;
}

std::optional<std::uint32_t> minimum_reporting_interval(
    std::uint32_t hops, double ps, double target_reachability,
    std::uint32_t max_interval) {
  expects(hops >= 1, "hops >= 1");
  expects(ps >= 0.0 && ps <= 1.0, "0 <= ps <= 1");
  expects(target_reachability >= 0.0 && target_reachability <= 1.0,
          "0 <= target <= 1");
  expects(max_interval >= 1, "max_interval >= 1");
  // Reachability is monotone in Is, so scan the (short) ladder once.
  const std::vector<double> cycles =
      analytic_cycle_probabilities(hops, ps, max_interval);
  double reach = 0.0;
  for (std::uint32_t is = 1; is <= max_interval; ++is) {
    reach += cycles[is - 1];
    if (reach >= target_reachability) return is;
  }
  return std::nullopt;
}

}  // namespace whart::hart
