#include "whart/hart/sensitivity.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::hart {

namespace {

std::optional<std::size_t> hop_in_slot(const PathModelConfig& config,
                                       std::uint32_t global_slot) {
  const net::SlotNumber in_frame =
      ((global_slot - 1) % config.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config.hop_slots.size(); ++h)
    if (config.hop_slots[h] == in_frame) return h;
  return std::nullopt;
}

std::vector<double> sensitivity_per_slot(const PathModel& model,
                                         const LinkProbabilityProvider& links);

/// Collapsed adjoint over the compact message chain: the per-slot sum
/// mass * (beta_success - beta_failure) for hop h over one full cycle is
/// the bilinear form p G_h b with
///   G_h = sum over slots j firing hop h of
///         (column h of Prefix_{j-1}) ((e_target - e_h)^T Suffix_{j+1}),
/// p the cycle-entry distribution and b the eventual-delivery vector at
/// the cycle's end.  Full pre-TTL cycles then cost one form each (p and b
/// advance through the cycle product); only the cycle the TTL cuts runs
/// per-slot.
std::vector<double> sensitivity_superframe(
    const PathModel& model, const LinkProbabilityProvider& links) {
  const PathModelConfig& config = model.config();
  const std::size_t hops = config.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config.superframe.uplink_slots;
  const std::uint32_t ttl = config.effective_ttl();

  const std::vector<linalg::CsrMatrix> slots = model.slot_matrices(links);
  struct Firing {
    std::uint32_t slot;
    std::size_t hop;
    double ps;
  };
  std::vector<Firing> firings;
  firings.reserve(hops);
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = hop_in_slot(config, slot); h.has_value())
      firings.push_back(
          {slot, *h,
           links.up_probability(
               *h, config.superframe.absolute_slot_of_uplink(slot))});

  linalg::Matrix prefix = linalg::Matrix::identity(dim);
  std::vector<linalg::Vector> prefix_columns;
  prefix_columns.reserve(firings.size());
  for (const Firing& f : firings) {
    linalg::Vector column(dim);
    for (std::size_t r = 0; r < dim; ++r) column[r] = prefix(r, f.hop);
    prefix_columns.push_back(std::move(column));
    prefix = linalg::left_multiply_batch(prefix, slots[f.slot - 1]);
  }

  std::vector<linalg::Matrix> adjoint(hops, linalg::Matrix(dim, dim));
  linalg::Matrix suffix = linalg::Matrix::identity(dim);
  for (std::size_t i = firings.size(); i-- > 0;) {
    const Firing& f = firings[i];
    // Here suffix == Suffix_{slot+1}: beta right after this slot fires.
    const std::size_t target = f.hop + 1 == hops ? goal : f.hop + 1;
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        adjoint[f.hop](r, c) += prefix_columns[i][r] *
                                (suffix(target, c) - suffix(f.hop, c));
    const linalg::CsrMatrix& step = slots[f.slot - 1];
    linalg::Matrix next(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      step.for_each_in_row(r, [&](std::size_t k, double v) {
        for (std::size_t c = 0; c < dim; ++c) next(r, c) += v * suffix(k, c);
      });
    suffix = std::move(next);
  }
  const linalg::CsrMatrix product = [&] {
    linalg::SparseProductArena arena;
    linalg::CsrMatrix acc = slots.front();
    for (std::size_t i = 1; i < slots.size(); ++i)
      acc = linalg::multiply(acc, slots[i], arena);
    return acc;
  }();

  // Delivery vectors at the end of each full pre-TTL cycle, backward
  // from the TTL cycle (whose interior runs per-slot from e_goal — the
  // transient mass alive at the TTL slot is lost, delivery 0).
  const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
  linalg::Vector b(dim);
  b[goal] = 1.0;
  std::vector<linalg::Vector> beta_in_ttl_cycle;  // per slot, newest first
  for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
    beta_in_ttl_cycle.push_back(b);
    if (const auto firing = hop_in_slot(config, slot); firing.has_value()) {
      const std::size_t h = *firing;
      const double ps = links.up_probability(
          h, config.superframe.absolute_slot_of_uplink(slot));
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      b[h] = ps * b[target] + (1.0 - ps) * b[h];
    }
  }
  std::vector<linalg::Vector> cycle_end_delivery(ttl_cycle);
  if (ttl_cycle > 0) {
    cycle_end_delivery[ttl_cycle - 1] = b;
    for (std::uint32_t c = ttl_cycle - 1; c-- > 0;) {
      linalg::Vector next(dim);
      for (std::size_t r = 0; r < dim; ++r)
        product.for_each_in_row(r, [&](std::size_t k, double v) {
          next[r] += v * cycle_end_delivery[c + 1][k];
        });
      cycle_end_delivery[c] = std::move(next);
    }
  }

  std::vector<double> sensitivity(hops, 0.0);
  linalg::Vector p(dim);
  p[0] = 1.0;
  for (std::uint32_t cycle = 0; cycle < ttl_cycle; ++cycle) {
    for (std::size_t h = 0; h < hops; ++h) {
      double form = 0.0;
      for (std::size_t r = 0; r < dim; ++r) {
        double row = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
          row += adjoint[h](r, c) * cycle_end_delivery[cycle][c];
        form += p[r] * row;
      }
      sensitivity[h] += form;
    }
    p = product.left_multiply(p);
  }
  // The cycle the TTL cuts, per-slot (beta vectors recorded above are in
  // reverse slot order: entry k corresponds to slot ttl - k, i.e. beta
  // right after that slot fires).
  for (std::uint32_t slot = ttl_cycle * frame + 1; slot <= ttl; ++slot) {
    if (const auto firing = hop_in_slot(config, slot); firing.has_value()) {
      const std::size_t h = *firing;
      const double ps = links.up_probability(
          h, config.superframe.absolute_slot_of_uplink(slot));
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      const linalg::Vector& beta_after = beta_in_ttl_cycle[ttl - slot];
      sensitivity[h] += p[h] * (beta_after[target] - beta_after[h]);
      const double moved = p[h] * ps;
      p[h] -= moved;
      if (h + 1 == hops)
        p[goal] += moved;
      else
        p[h + 1] += moved;
    }
  }
  return sensitivity;
}

std::vector<double> sensitivity_per_slot(const PathModel& model,
                                         const LinkProbabilityProvider& links) {
  const PathModelConfig& config = model.config();
  expects(links.hop_count() >= config.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config.hop_count();
  const std::uint32_t ttl = config.effective_ttl();

  // Backward pass: beta[t][h] = P(delivery | at (t, h)).
  std::vector<std::vector<double>> beta(ttl + 1,
                                        std::vector<double>(hops, 0.0));
  for (std::uint32_t t = ttl; t-- > 0;) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const double continue_beta = slot == ttl ? 0.0 : beta[t + 1][h];
      if (firing == h) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[t + 1][h + 1]);
        beta[t][h] = ps * success_beta + (1.0 - ps) * continue_beta;
      } else {
        beta[t][h] = continue_beta;
      }
    }
  }

  // Forward pass accumulating the adjoint: each attempt of hop h at slot
  // s contributes mass * (beta_success - beta_failure) to dR/dps_h.
  std::vector<double> sensitivity(hops, 0.0);
  std::vector<double> mass(hops, 0.0);
  mass[0] = 1.0;
  for (std::uint32_t slot = 1; slot <= ttl; ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    if (firing.has_value()) {
      const std::size_t h = *firing;
      if (mass[h] > 0.0) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[slot][h + 1]);
        const double failure_beta = slot == ttl ? 0.0 : beta[slot][h];
        sensitivity[h] += mass[h] * (success_beta - failure_beta);
        const double moved = mass[h] * ps;
        mass[h] -= moved;
        if (h + 1 < hops) mass[h + 1] += moved;
        // Delivered mass leaves the transient system.
      }
    }
    if (slot == ttl) break;
  }
  return sensitivity;
}

}  // namespace

std::vector<double> reachability_sensitivity(
    const PathModel& model, const LinkProbabilityProvider& links,
    TransientKernel kernel) {
  expects(links.hop_count() >= model.config().hop_count(),
          "provider covers every hop");
  if (kernel == TransientKernel::kSuperframeProduct &&
      links.cycle_stationary())
    return sensitivity_superframe(model, links);
  return sensitivity_per_slot(model, links);
}

std::vector<LinkSensitivity> rank_link_upgrades(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, unsigned threads,
    TransientKernel kernel) {
  expects(!paths.empty(), "at least one path");
  std::vector<LinkSensitivity> ranking;
  for (net::LinkId id : network.links())
    ranking.push_back(LinkSensitivity{id, 0.0, 0});

  // Paths of identical schedule shape share one symbolic build: the
  // adjoint sweep reads only shape fields (all covered by the skeleton
  // fingerprint), so reusing the shared skeleton's model is bitwise the
  // same as constructing a PathModel per path.
  std::vector<std::string> shape_keys(paths.size());
  std::unordered_map<std::string, std::shared_ptr<const PathModelSkeleton>>
      skeletons;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathModelConfig config = PathModelConfig::from_schedule(
        schedule, p, superframe, reporting_interval);
    shape_keys[p] = PathAnalysisCache::skeleton_fingerprint(config, kernel);
    auto& slot = skeletons[shape_keys[p]];
    if (slot == nullptr)
      slot = std::make_shared<const PathModelSkeleton>(config);
  }

  // Per-path adjoint sweeps fan out; the accumulation over shared links
  // stays serial and in path order so the sums are reproducible.
  std::vector<std::vector<double>> per_hop_all(paths.size());
  common::parallel_for(
      paths.size(),
      [&](std::size_t p) {
        const PathModelSkeleton& skeleton = *skeletons.at(shape_keys[p]);
        const SteadyStateLinks provider(paths[p].hop_models(network));
        per_hop_all[p] =
            reachability_sensitivity(skeleton.model(), provider, kernel);
      },
      threads);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const std::vector<net::LinkId> hop_links =
        paths[p].resolve_links(network);
    for (std::size_t h = 0; h < hop_links.size(); ++h) {
      ranking[hop_links[h].value].total_dR_dpi += per_hop_all[p][h];
      ++ranking[hop_links[h].value].paths_using;
    }
  }

  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const LinkSensitivity& a, const LinkSensitivity& b) {
                     return a.total_dR_dpi > b.total_dR_dpi;
                   });
  return ranking;
}

}  // namespace whart::hart
