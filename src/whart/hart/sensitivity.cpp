#include "whart/hart/sensitivity.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/hart/what_if.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/linalg/simd.hpp"
#include "whart/markov/batch_refill.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::hart {

namespace {

std::optional<std::size_t> hop_in_slot(const PathModelConfig& config,
                                       std::uint32_t global_slot) {
  const net::SlotNumber in_frame =
      ((global_slot - 1) % config.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config.hop_slots.size(); ++h)
    if (config.hop_slots[h] == in_frame) return h;
  return std::nullopt;
}

std::vector<double> sensitivity_per_slot(const PathModel& model,
                                         const LinkProbabilityProvider& links);

/// Collapsed adjoint over the compact message chain: the per-slot sum
/// mass * (beta_success - beta_failure) for hop h over one full cycle is
/// the bilinear form p G_h b with
///   G_h = sum over slots j firing hop h of
///         (column h of Prefix_{j-1}) ((e_target - e_h)^T Suffix_{j+1}),
/// p the cycle-entry distribution and b the eventual-delivery vector at
/// the cycle's end.  Full pre-TTL cycles then cost one form each (p and b
/// advance through the cycle product); only the cycle the TTL cuts runs
/// per-slot.
std::vector<double> sensitivity_superframe(
    const PathModel& model, const LinkProbabilityProvider& links) {
  const PathModelConfig& config = model.config();
  const std::size_t hops = config.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config.superframe.uplink_slots;
  const std::uint32_t ttl = config.effective_ttl();

  const std::vector<linalg::CsrMatrix> slots = model.slot_matrices(links);
  struct Firing {
    std::uint32_t slot;
    std::size_t hop;
    double ps;
  };
  std::vector<Firing> firings;
  firings.reserve(hops);
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = hop_in_slot(config, slot); h.has_value())
      firings.push_back(
          {slot, *h,
           links.up_probability(
               *h, config.superframe.absolute_slot_of_uplink(slot))});

  linalg::Matrix prefix = linalg::Matrix::identity(dim);
  std::vector<linalg::Vector> prefix_columns;
  prefix_columns.reserve(firings.size());
  for (const Firing& f : firings) {
    linalg::Vector column(dim);
    for (std::size_t r = 0; r < dim; ++r) column[r] = prefix(r, f.hop);
    prefix_columns.push_back(std::move(column));
    prefix = linalg::left_multiply_batch(prefix, slots[f.slot - 1]);
  }

  std::vector<linalg::Matrix> adjoint(hops, linalg::Matrix(dim, dim));
  linalg::Matrix suffix = linalg::Matrix::identity(dim);
  for (std::size_t i = firings.size(); i-- > 0;) {
    const Firing& f = firings[i];
    // Here suffix == Suffix_{slot+1}: beta right after this slot fires.
    const std::size_t target = f.hop + 1 == hops ? goal : f.hop + 1;
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        adjoint[f.hop](r, c) += prefix_columns[i][r] *
                                (suffix(target, c) - suffix(f.hop, c));
    const linalg::CsrMatrix& step = slots[f.slot - 1];
    linalg::Matrix next(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      step.for_each_in_row(r, [&](std::size_t k, double v) {
        for (std::size_t c = 0; c < dim; ++c) next(r, c) += v * suffix(k, c);
      });
    suffix = std::move(next);
  }
  const linalg::CsrMatrix product = [&] {
    linalg::SparseProductArena arena;
    linalg::CsrMatrix acc = slots.front();
    for (std::size_t i = 1; i < slots.size(); ++i)
      acc = linalg::multiply(acc, slots[i], arena);
    return acc;
  }();

  // Delivery vectors at the end of each full pre-TTL cycle, backward
  // from the TTL cycle (whose interior runs per-slot from e_goal — the
  // transient mass alive at the TTL slot is lost, delivery 0).
  const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
  linalg::Vector b(dim);
  b[goal] = 1.0;
  std::vector<linalg::Vector> beta_in_ttl_cycle;  // per slot, newest first
  for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
    beta_in_ttl_cycle.push_back(b);
    if (const auto firing = hop_in_slot(config, slot); firing.has_value()) {
      const std::size_t h = *firing;
      const double ps = links.up_probability(
          h, config.superframe.absolute_slot_of_uplink(slot));
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      b[h] = ps * b[target] + (1.0 - ps) * b[h];
    }
  }
  std::vector<linalg::Vector> cycle_end_delivery(ttl_cycle);
  if (ttl_cycle > 0) {
    cycle_end_delivery[ttl_cycle - 1] = b;
    for (std::uint32_t c = ttl_cycle - 1; c-- > 0;) {
      linalg::Vector next(dim);
      for (std::size_t r = 0; r < dim; ++r)
        product.for_each_in_row(r, [&](std::size_t k, double v) {
          next[r] += v * cycle_end_delivery[c + 1][k];
        });
      cycle_end_delivery[c] = std::move(next);
    }
  }

  std::vector<double> sensitivity(hops, 0.0);
  linalg::Vector p(dim);
  p[0] = 1.0;
  for (std::uint32_t cycle = 0; cycle < ttl_cycle; ++cycle) {
    for (std::size_t h = 0; h < hops; ++h) {
      double form = 0.0;
      for (std::size_t r = 0; r < dim; ++r) {
        double row = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
          row += adjoint[h](r, c) * cycle_end_delivery[cycle][c];
        form += p[r] * row;
      }
      sensitivity[h] += form;
    }
    p = product.left_multiply(p);
  }
  // The cycle the TTL cuts, per-slot (beta vectors recorded above are in
  // reverse slot order: entry k corresponds to slot ttl - k, i.e. beta
  // right after that slot fires).
  for (std::uint32_t slot = ttl_cycle * frame + 1; slot <= ttl; ++slot) {
    if (const auto firing = hop_in_slot(config, slot); firing.has_value()) {
      const std::size_t h = *firing;
      const double ps = links.up_probability(
          h, config.superframe.absolute_slot_of_uplink(slot));
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      const linalg::Vector& beta_after = beta_in_ttl_cycle[ttl - slot];
      sensitivity[h] += p[h] * (beta_after[target] - beta_after[h]);
      const double moved = p[h] * ps;
      p[h] -= moved;
      if (h + 1 == hops)
        p[goal] += moved;
      else
        p[h + 1] += moved;
    }
  }
  return sensitivity;
}

std::vector<double> sensitivity_per_slot(const PathModel& model,
                                         const LinkProbabilityProvider& links) {
  const PathModelConfig& config = model.config();
  expects(links.hop_count() >= config.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config.hop_count();
  const std::uint32_t ttl = config.effective_ttl();

  // Backward pass: beta[t][h] = P(delivery | at (t, h)).
  std::vector<std::vector<double>> beta(ttl + 1,
                                        std::vector<double>(hops, 0.0));
  for (std::uint32_t t = ttl; t-- > 0;) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const double continue_beta = slot == ttl ? 0.0 : beta[t + 1][h];
      if (firing == h) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[t + 1][h + 1]);
        beta[t][h] = ps * success_beta + (1.0 - ps) * continue_beta;
      } else {
        beta[t][h] = continue_beta;
      }
    }
  }

  // Forward pass accumulating the adjoint: each attempt of hop h at slot
  // s contributes mass * (beta_success - beta_failure) to dR/dps_h.
  std::vector<double> sensitivity(hops, 0.0);
  std::vector<double> mass(hops, 0.0);
  mass[0] = 1.0;
  for (std::uint32_t slot = 1; slot <= ttl; ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    if (firing.has_value()) {
      const std::size_t h = *firing;
      if (mass[h] > 0.0) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[slot][h + 1]);
        const double failure_beta = slot == ttl ? 0.0 : beta[slot][h];
        sensitivity[h] += mass[h] * (success_beta - failure_beta);
        const double moved = mass[h] * ps;
        mass[h] -= moved;
        if (h + 1 < hops) mass[h + 1] += moved;
        // Delivered mass leaves the transient system.
      }
    }
    if (slot == ttl) break;
  }
  return sensitivity;
}

/// SoA mirror of sensitivity_superframe over a shared skeleton: every
/// numeric structure of the adjoint sweep is widened by a lane dimension
/// (entry-major, as in the batch solve core) and the per-lane arithmetic
/// order matches the scalar sweep, so lane L agrees with the scalar
/// sweep of provider L to rounding.  All providers must be
/// cycle-stationary.  Degenerate firing probabilities (0 or 1) need no
/// fallback here: the skeleton's generic pattern merely carries entries
/// a fresh build would drop, and those contribute exact zeros.
std::vector<std::vector<double>> sensitivity_superframe_batch(
    const PathModelSkeleton& skeleton,
    std::span<const LinkProbabilityProvider* const> links) {
  namespace simd = linalg::simd;
  const PathModelConfig& config = skeleton.config();
  const std::size_t lanes = links.size();
  const std::size_t hops = config.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config.superframe.uplink_slots;
  const std::uint32_t ttl = config.effective_ttl();
  const std::vector<markov::CsrPattern>& patterns = skeleton.slot_patterns();

  // SoA slot values over the skeleton's patterns: constant entries hold
  // 1.0, every transmission opportunity (retry slots included) gets its
  // per-lane failure/success probabilities.
  std::vector<std::vector<double>> slot_values(patterns.size());
  for (std::size_t s = 0; s < patterns.size(); ++s)
    slot_values[s].assign(patterns[s].nonzeros() * lanes, 1.0);
  for (const auto& prov : skeleton.provenance()) {
    std::vector<double>& values = slot_values[prov.slot - 1];
    for (std::size_t l = 0; l < lanes; ++l) {
      const double ps = links[l]->up_probability(
          prov.hop, config.superframe.absolute_slot_of_uplink(prov.slot));
      values[prov.failure_index * lanes + l] = 1.0 - ps;
      values[prov.success_index * lanes + l] = ps;
    }
  }

  // The adjoint firing list mirrors the scalar sweep: dedicated hop
  // slots only (hop_in_slot above ignores retry slots, so retries shape
  // the products but accrue no adjoint of their own).
  struct Firing {
    std::uint32_t slot = 0;
    std::size_t hop = 0;
  };
  std::vector<Firing> firings;
  std::vector<double> ps;  // firings x lanes
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = hop_in_slot(config, slot); h.has_value()) {
      firings.push_back({slot, *h});
      for (std::size_t l = 0; l < lanes; ++l)
        ps.push_back(links[l]->up_probability(
            *h, config.superframe.absolute_slot_of_uplink(slot)));
    }
  // Lane ps of the adjoint firing scheduled in global uplink slot `slot`
  // (nullptr when that slot carries none).
  const auto firing_lanes = [&](std::uint32_t slot) -> const double* {
    const std::uint32_t in_frame = ((slot - 1) % frame) + 1;
    for (std::size_t i = 0; i < firings.size(); ++i)
      if (firings[i].slot == in_frame) return ps.data() + i * lanes;
    return nullptr;
  };
  const auto firing_hop = [&](std::uint32_t slot) {
    return hop_in_slot(config, slot);
  };

  // Prefix sweep: record each firing's entry column, then advance.
  std::vector<double> prefix(dim * dim * lanes, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    simd::fill(prefix.data() + (i * dim + i) * lanes, 1.0, lanes);
  std::vector<double> prefix_next(dim * dim * lanes, 0.0);
  std::vector<double> prefix_columns(firings.size() * dim * lanes);
  for (std::size_t i = 0; i < firings.size(); ++i) {
    const Firing& f = firings[i];
    double* column = prefix_columns.data() + i * dim * lanes;
    for (std::size_t r = 0; r < dim; ++r)
      simd::copy(column + r * lanes,
                 prefix.data() + (r * dim + f.hop) * lanes, lanes);
    const markov::CsrPattern& step = patterns[f.slot - 1];
    const std::vector<double>& step_values = slot_values[f.slot - 1];
    simd::fill(prefix_next.data(), 0.0, dim * dim * lanes);
    for (std::size_t k = 0; k < dim; ++k)
      for (std::size_t idx = step.row_start[k]; idx < step.row_start[k + 1];
           ++idx) {
        const std::size_t c = step.col_index[idx];
        for (std::size_t r = 0; r < dim; ++r)
          simd::mul_add(prefix_next.data() + (r * dim + c) * lanes,
                        prefix.data() + (r * dim + k) * lanes,
                        step_values.data() + idx * lanes, lanes);
      }
    std::swap(prefix, prefix_next);
  }

  // Suffix sweep accumulating the per-hop adjoint.
  std::vector<std::vector<double>> adjoint(
      hops, std::vector<double>(dim * dim * lanes, 0.0));
  std::vector<double> suffix(dim * dim * lanes, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    simd::fill(suffix.data() + (i * dim + i) * lanes, 1.0, lanes);
  std::vector<double> suffix_next(dim * dim * lanes, 0.0);
  for (std::size_t i = firings.size(); i-- > 0;) {
    const Firing& f = firings[i];
    const std::size_t target = f.hop + 1 == hops ? goal : f.hop + 1;
    const double* column = prefix_columns.data() + i * dim * lanes;
    std::vector<double>& acc = adjoint[f.hop];
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        for (std::size_t l = 0; l < lanes; ++l)
          acc[(r * dim + c) * lanes + l] +=
              column[r * lanes + l] *
              (suffix[(target * dim + c) * lanes + l] -
               suffix[(f.hop * dim + c) * lanes + l]);
    const markov::CsrPattern& step = patterns[f.slot - 1];
    const std::vector<double>& step_values = slot_values[f.slot - 1];
    simd::fill(suffix_next.data(), 0.0, dim * dim * lanes);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t idx = step.row_start[r]; idx < step.row_start[r + 1];
           ++idx) {
        const std::size_t k = step.col_index[idx];
        for (std::size_t c = 0; c < dim; ++c)
          simd::mul_add(suffix_next.data() + (r * dim + c) * lanes,
                        step_values.data() + idx * lanes,
                        suffix.data() + (k * dim + c) * lanes, lanes);
      }
    std::swap(suffix, suffix_next);
  }

  // Cycle product, one SoA refill for all lanes.
  const markov::CsrPattern& product = skeleton.chain().pattern();
  std::vector<double> product_values(product.nonzeros() * lanes);
  markov::BatchLaneArena arena;
  markov::BatchRefill(skeleton.chain(), patterns)
      .refill(slot_values, lanes, arena,
              std::span<double>(product_values));

  // Delivery vectors backward from the TTL cycle.
  const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
  std::vector<double> b(dim * lanes, 0.0);
  simd::fill(b.data() + goal * lanes, 1.0, lanes);
  std::vector<std::vector<double>> beta_in_ttl_cycle;  // newest first
  for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
    beta_in_ttl_cycle.push_back(b);
    if (const double* ps_lanes = firing_lanes(slot); ps_lanes != nullptr) {
      const std::size_t h = firing_hop(slot).value();
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      for (std::size_t l = 0; l < lanes; ++l)
        b[h * lanes + l] = ps_lanes[l] * b[target * lanes + l] +
                           (1.0 - ps_lanes[l]) * b[h * lanes + l];
    }
  }
  std::vector<std::vector<double>> cycle_end_delivery(ttl_cycle);
  if (ttl_cycle > 0) {
    cycle_end_delivery[ttl_cycle - 1] = b;
    for (std::uint32_t c = ttl_cycle - 1; c-- > 0;) {
      std::vector<double> next(dim * lanes, 0.0);
      for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t idx = product.row_start[r];
             idx < product.row_start[r + 1]; ++idx)
          simd::mul_add(next.data() + r * lanes,
                        product_values.data() + idx * lanes,
                        cycle_end_delivery[c + 1].data() +
                            product.col_index[idx] * lanes,
                        lanes);
      cycle_end_delivery[c] = std::move(next);
    }
  }

  // Forward pass: one bilinear form per hop per full pre-TTL cycle.
  std::vector<std::vector<double>> sensitivity(
      lanes, std::vector<double>(hops, 0.0));
  std::vector<double> p(dim * lanes, 0.0);
  simd::fill(p.data(), 1.0, lanes);
  std::vector<double> p_next(dim * lanes, 0.0);
  std::vector<double> row(lanes, 0.0);
  std::vector<double> form(lanes, 0.0);
  for (std::uint32_t cycle = 0; cycle < ttl_cycle; ++cycle) {
    for (std::size_t h = 0; h < hops; ++h) {
      simd::fill(form.data(), 0.0, lanes);
      for (std::size_t r = 0; r < dim; ++r) {
        simd::fill(row.data(), 0.0, lanes);
        for (std::size_t c = 0; c < dim; ++c)
          simd::mul_add(row.data(),
                        adjoint[h].data() + (r * dim + c) * lanes,
                        cycle_end_delivery[cycle].data() + c * lanes, lanes);
        simd::mul_add(form.data(), p.data() + r * lanes, row.data(), lanes);
      }
      for (std::size_t l = 0; l < lanes; ++l) sensitivity[l][h] += form[l];
    }
    simd::fill(p_next.data(), 0.0, dim * lanes);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t idx = product.row_start[r];
           idx < product.row_start[r + 1]; ++idx)
        simd::mul_add(p_next.data() + product.col_index[idx] * lanes,
                      p.data() + r * lanes,
                      product_values.data() + idx * lanes, lanes);
    std::swap(p, p_next);
  }
  // The cycle the TTL cuts, per-slot.
  for (std::uint32_t slot = ttl_cycle * frame + 1; slot <= ttl; ++slot) {
    if (const double* ps_lanes = firing_lanes(slot); ps_lanes != nullptr) {
      const std::size_t h = firing_hop(slot).value();
      const std::size_t target = h + 1 == hops ? goal : h + 1;
      const std::vector<double>& beta_after = beta_in_ttl_cycle[ttl - slot];
      for (std::size_t l = 0; l < lanes; ++l) {
        sensitivity[l][h] += p[h * lanes + l] *
                             (beta_after[target * lanes + l] -
                              beta_after[h * lanes + l]);
        const double moved = p[h * lanes + l] * ps_lanes[l];
        p[h * lanes + l] -= moved;
        p[target * lanes + l] += moved;
      }
    }
  }
  return sensitivity;
}

}  // namespace

std::vector<double> reachability_sensitivity(
    const PathModel& model, const LinkProbabilityProvider& links,
    TransientKernel kernel) {
  expects(links.hop_count() >= model.config().hop_count(),
          "provider covers every hop");
  if (kernel == TransientKernel::kSuperframeProduct &&
      links.cycle_stationary())
    return sensitivity_superframe(model, links);
  return sensitivity_per_slot(model, links);
}

std::vector<std::vector<double>> reachability_sensitivity_batch(
    const PathModelSkeleton& skeleton,
    std::span<const LinkProbabilityProvider* const> links,
    TransientKernel kernel) {
  std::vector<std::vector<double>> results(links.size());
  std::vector<std::size_t> batched;
  for (std::size_t i = 0; i < links.size(); ++i) {
    expects(links[i]->hop_count() >= skeleton.config().hop_count(),
            "provider covers every hop");
    if (kernel == TransientKernel::kSuperframeProduct &&
        links[i]->cycle_stationary())
      batched.push_back(i);
    else
      results[i] =
          reachability_sensitivity(skeleton.model(), *links[i], kernel);
  }
  if (batched.size() < 2) {
    for (std::size_t i : batched)
      results[i] =
          reachability_sensitivity(skeleton.model(), *links[i], kernel);
    return results;
  }
  std::vector<const LinkProbabilityProvider*> lane_links;
  lane_links.reserve(batched.size());
  for (std::size_t i : batched) lane_links.push_back(links[i]);
  std::vector<std::vector<double>> lane_results =
      sensitivity_superframe_batch(skeleton, lane_links);
  for (std::size_t j = 0; j < batched.size(); ++j)
    results[batched[j]] = std::move(lane_results[j]);
  return results;
}

std::vector<LinkSensitivity> rank_link_upgrades(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, unsigned threads,
    TransientKernel kernel, std::size_t batch_lanes) {
  expects(!paths.empty(), "at least one path");
  std::vector<LinkSensitivity> ranking;
  for (net::LinkId id : network.links())
    ranking.push_back(LinkSensitivity{id, 0.0, 0});

  // Paths of identical schedule shape share one symbolic build: the
  // adjoint sweep reads only shape fields (all covered by the skeleton
  // fingerprint), so reusing the shared skeleton's model is bitwise the
  // same as constructing a PathModel per path.
  std::vector<std::string> shape_keys(paths.size());
  std::unordered_map<std::string, std::shared_ptr<const PathModelSkeleton>>
      skeletons;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathModelConfig config = PathModelConfig::from_schedule(
        schedule, p, superframe, reporting_interval);
    shape_keys[p] = PathAnalysisCache::skeleton_fingerprint(config, kernel);
    auto& slot = skeletons[shape_keys[p]];
    if (slot == nullptr)
      slot = std::make_shared<const PathModelSkeleton>(config);
  }

  // Same-shape paths chunk into groups of at most batch_lanes lanes —
  // singletons when batching is off — priced by one SoA adjoint sweep
  // per group (DESIGN.md §13).  Groups fan out across threads; the
  // accumulation over shared links stays serial and in path order so the
  // sums are reproducible.
  std::vector<std::vector<std::size_t>> groups;
  {
    const std::size_t width = std::max<std::size_t>(batch_lanes, 1);
    std::unordered_map<std::string, std::size_t> open;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      const auto [it, inserted] = open.try_emplace(shape_keys[p],
                                                   groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(p);
      if (groups[it->second].size() == width) open.erase(it);
    }
  }
  std::vector<std::vector<double>> per_hop_all(paths.size());
  common::parallel_for(
      groups.size(),
      [&](std::size_t g) {
        const std::vector<std::size_t>& group = groups[g];
        const PathModelSkeleton& skeleton =
            *skeletons.at(shape_keys[group.front()]);
        // Reserve before taking element pointers — emplace_back must not
        // reallocate under the provider span.
        std::vector<SteadyStateLinks> providers;
        providers.reserve(group.size());
        std::vector<const LinkProbabilityProvider*> ptrs;
        ptrs.reserve(group.size());
        for (std::size_t p : group) {
          providers.emplace_back(paths[p].hop_models(network));
          ptrs.push_back(&providers.back());
        }
        std::vector<std::vector<double>> group_results =
            reachability_sensitivity_batch(skeleton, ptrs, kernel);
        for (std::size_t j = 0; j < group.size(); ++j)
          per_hop_all[group[j]] = std::move(group_results[j]);
      },
      threads);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const std::vector<net::LinkId> hop_links =
        paths[p].resolve_links(network);
    for (std::size_t h = 0; h < hop_links.size(); ++h) {
      ranking[hop_links[h].value].total_dR_dpi += per_hop_all[p][h];
      ++ranking[hop_links[h].value].paths_using;
    }
  }

  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const LinkSensitivity& a, const LinkSensitivity& b) {
                     return a.total_dR_dpi > b.total_dR_dpi;
                   });
  return ranking;
}

std::vector<LinkUpgradeImpact> evaluate_link_upgrades(
    WhatIfEngine& engine, double target_availability) {
  expects(target_availability >= 0.0 && target_availability <= 1.0,
          "availability in [0, 1]");
  // The all-links what-if sweep: one incremental query per link.  The
  // base vector is in ascending link-id order (Network::links), so the
  // stable sort leaves equal-delta links id-ordered — the same
  // tie-breaking rank_link_upgrades applies.
  std::vector<LinkUpgradeImpact> ranking;
  ranking.reserve(engine.links().size());
  for (net::LinkId link : engine.links()) {
    const WhatIfDelta delta = engine.what_if_delta(link, target_availability);
    ranking.push_back({link, delta.reachability_delta,
                       delta.worst_expected_delay_ms, delta.paths_resolved});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const LinkUpgradeImpact& a, const LinkUpgradeImpact& b) {
                     return a.reachability_delta > b.reachability_delta;
                   });
  return ranking;
}

}  // namespace whart::hart
