#include "whart/hart/sensitivity.hpp"

#include <algorithm>
#include <optional>

#include "whart/common/contracts.hpp"
#include "whart/common/parallel.hpp"

namespace whart::hart {

namespace {

std::optional<std::size_t> hop_in_slot(const PathModelConfig& config,
                                       std::uint32_t global_slot) {
  const net::SlotNumber in_frame =
      ((global_slot - 1) % config.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config.hop_slots.size(); ++h)
    if (config.hop_slots[h] == in_frame) return h;
  return std::nullopt;
}

}  // namespace

std::vector<double> reachability_sensitivity(
    const PathModel& model, const LinkProbabilityProvider& links) {
  const PathModelConfig& config = model.config();
  expects(links.hop_count() >= config.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config.hop_count();
  const std::uint32_t ttl = config.effective_ttl();

  // Backward pass: beta[t][h] = P(delivery | at (t, h)).
  std::vector<std::vector<double>> beta(ttl + 1,
                                        std::vector<double>(hops, 0.0));
  for (std::uint32_t t = ttl; t-- > 0;) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const double continue_beta = slot == ttl ? 0.0 : beta[t + 1][h];
      if (firing == h) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[t + 1][h + 1]);
        beta[t][h] = ps * success_beta + (1.0 - ps) * continue_beta;
      } else {
        beta[t][h] = continue_beta;
      }
    }
  }

  // Forward pass accumulating the adjoint: each attempt of hop h at slot
  // s contributes mass * (beta_success - beta_failure) to dR/dps_h.
  std::vector<double> sensitivity(hops, 0.0);
  std::vector<double> mass(hops, 0.0);
  mass[0] = 1.0;
  for (std::uint32_t slot = 1; slot <= ttl; ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(config, slot);
    if (firing.has_value()) {
      const std::size_t h = *firing;
      if (mass[h] > 0.0) {
        const double ps = links.up_probability(
            h, config.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops ? 1.0
                          : (slot == ttl ? 0.0 : beta[slot][h + 1]);
        const double failure_beta = slot == ttl ? 0.0 : beta[slot][h];
        sensitivity[h] += mass[h] * (success_beta - failure_beta);
        const double moved = mass[h] * ps;
        mass[h] -= moved;
        if (h + 1 < hops) mass[h + 1] += moved;
        // Delivered mass leaves the transient system.
      }
    }
    if (slot == ttl) break;
  }
  return sensitivity;
}

std::vector<LinkSensitivity> rank_link_upgrades(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, unsigned threads) {
  expects(!paths.empty(), "at least one path");
  std::vector<LinkSensitivity> ranking;
  for (net::LinkId id : network.links())
    ranking.push_back(LinkSensitivity{id, 0.0, 0});

  // Per-path adjoint sweeps fan out; the accumulation over shared links
  // stays serial and in path order so the sums are reproducible.
  std::vector<std::vector<double>> per_hop_all(paths.size());
  common::parallel_for(
      paths.size(),
      [&](std::size_t p) {
        const PathModelConfig config = PathModelConfig::from_schedule(
            schedule, p, superframe, reporting_interval);
        const PathModel model(config);
        const SteadyStateLinks provider(paths[p].hop_models(network));
        per_hop_all[p] = reachability_sensitivity(model, provider);
      },
      threads);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const std::vector<net::LinkId> hop_links =
        paths[p].resolve_links(network);
    for (std::size_t h = 0; h < hop_links.size(); ++h) {
      ranking[hop_links[h].value].total_dR_dpi += per_hop_all[p][h];
      ++ranking[hop_links[h].value].paths_using;
    }
  }

  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const LinkSensitivity& a, const LinkSensitivity& b) {
                     return a.total_dR_dpi > b.total_dR_dpi;
                   });
  return ranking;
}

}  // namespace whart::hart
