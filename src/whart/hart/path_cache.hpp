// Memoized path-analysis cache.  Large generated plants contain many
// structurally identical paths (the 30/50/20 hop-count mix of the HART
// plant statistics): a 1-hop path scheduled in slot 7 behaves exactly
// like a 1-hop path scheduled in slot 1, apart from a constant delay
// offset that the measure derivation reapplies anyway.  The cache keys
// each solve by a canonical fingerprint of (PathModelConfig, per-hop
// steady-state availabilities) and stores the solver outputs (cycle
// probabilities, expected transmissions), so structurally identical
// paths are solved once and shared.
//
// Exactness: with steady-state links the per-attempt success
// probability is slot-independent, and translating every transmission
// opportunity by the same offset toward slot 1 keeps each firing event
// in the same superframe cycle (slots are congruent mod Fup and stay
// within [1, Fup]) — the forward/backward passes perform the identical
// arithmetic sequence, so the canonical solve is bit-identical to the
// direct one.  Translation is only applied when the effective TTL is
// the full horizon (a mid-frame TTL is not translation invariant).
// Cached results are therefore exactly equal to uncached ones.
//
// Observability: hit/miss/eviction counts live on per-instance
// obs::Counter cells (exact per-cache accounting for tests and benches)
// and are mirrored into the process-wide registry under
// hart.path_cache.{hits,misses,evictions} with a hart.path_cache.size
// gauge, so a --metrics dump reports the cumulative cache behaviour of
// the whole run.
//
// Thread safety: all members are safe to call concurrently; the cache is
// shared by the parallel per-path workers of hart::analyze_network.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <mutex>
#include <vector>

#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

class PathAnalysisCache {
 public:
  /// Unbounded cache (every distinct fingerprint is kept).
  PathAnalysisCache() = default;

  /// Cache holding at most `max_entries` solves (0 = unbounded).  When
  /// full, an arbitrary entry is evicted to make room — correctness is
  /// unaffected (an evicted fingerprint is simply re-solved), only the
  /// hit rate.
  explicit PathAnalysisCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// Measures of `config` under steady-state links with the given
  /// per-hop UP probabilities, solving (and memoizing) on a miss.
  /// Bit-identical to compute_path_measures on a SteadyStateLinks
  /// provider with the same availabilities and kernel (the translation
  /// argument in the header holds for the superframe-product kernel too:
  /// identity factors commute bitwise through the cycle product).
  /// `reuse_skeleton` routes miss solves through a shared
  /// PathModelSkeleton per schedule shape (symbolic phase amortized,
  /// numeric refill per availability point) — bitwise-identical to a
  /// fresh solve, so the cache contract is unchanged; pass false to
  /// solve every miss from scratch (the differential oracle's baseline).
  PathMeasures measures(const PathModelConfig& config,
                        const std::vector<double>& hop_availability,
                        TransientKernel kernel = TransientKernel::kPerSlot,
                        bool reuse_skeleton = true);

  /// Canonical fingerprint of (config, availabilities, kernel); two
  /// calls with the same fingerprint share one solve.  Solves by
  /// different kernels never share an entry — they agree only to
  /// rounding, and the cache promises bit-identical replay.  Exposed for
  /// tests.
  [[nodiscard]] static std::string fingerprint(
      const PathModelConfig& config,
      const std::vector<double>& hop_availability,
      TransientKernel kernel = TransientKernel::kPerSlot);

  /// Shape-only prefix of `fingerprint`: everything the symbolic phase
  /// of a solve depends on (kernel, frame length, reporting interval,
  /// effective TTL, firing pattern) and nothing the numeric phase refills
  /// (availabilities).  Two configs with equal skeleton fingerprints
  /// share one PathModelSkeleton.  No canonicalization is applied here —
  /// callers pass an already-canonical config when translation sharing
  /// is wanted.  Exposed for tests and for skeleton grouping in
  /// sensitivity/network analysis.
  [[nodiscard]] static std::string skeleton_fingerprint(
      const PathModelConfig& config,
      TransientKernel kernel = TransientKernel::kPerSlot);

  /// Lookups served from a stored entry (this instance only).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.value(); }

  /// Lookups that required a fresh solve (this instance only).
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.value();
  }

  /// Entries discarded to respect the capacity bound.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.value();
  }

  /// Capacity bound (0 = unbounded).
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  /// The solver outputs a measure reconstruction needs; everything else
  /// in PathMeasures is derived from these plus the (uncanonicalized)
  /// config.
  struct Entry {
    std::vector<double> cycle_probabilities;
    double expected_transmissions = 0.0;
    double expected_transmissions_delivered = 0.0;
    SolverDiagnostics diagnostics;
  };

  /// The shared skeleton for the (already canonical) config's shape,
  /// building and storing it on first use.  Never evicted: skeletons are
  /// small (patterns only, no values) and there are few distinct shapes.
  [[nodiscard]] std::shared_ptr<const PathModelSkeleton> skeleton_for(
      const PathModelConfig& canonical, TransientKernel kernel);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t max_entries_ = 0;
  common::obs::Counter hits_;
  common::obs::Counter misses_;
  common::obs::Counter evictions_;

  mutable std::mutex skeleton_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const PathModelSkeleton>>
      skeletons_;
  common::WorkspacePool<SolveWorkspace> workspaces_;
};

}  // namespace whart::hart
