// Memoized path-analysis cache.  Large generated plants contain many
// structurally identical paths (the 30/50/20 hop-count mix of the HART
// plant statistics): a 1-hop path scheduled in slot 7 behaves exactly
// like a 1-hop path scheduled in slot 1, apart from a constant delay
// offset that the measure derivation reapplies anyway.  The cache keys
// each solve by a canonical fingerprint of (PathModelConfig, per-hop
// steady-state availabilities) and stores the solver outputs (cycle
// probabilities, expected transmissions), so structurally identical
// paths are solved once and shared.
//
// Exactness: with steady-state links the per-attempt success
// probability is slot-independent, and translating every transmission
// opportunity by the same offset toward slot 1 keeps each firing event
// in the same superframe cycle (slots are congruent mod Fup and stay
// within [1, Fup]) — the forward/backward passes perform the identical
// arithmetic sequence, so the canonical solve is bit-identical to the
// direct one.  Translation is only applied when the effective TTL is
// the full horizon (a mid-frame TTL is not translation invariant).
// Cached results are therefore exactly equal to uncached ones.
//
// Thread safety: all members are safe to call concurrently; the cache is
// shared by the parallel per-path workers of hart::analyze_network.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <mutex>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

class PathAnalysisCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Measures of `config` under steady-state links with the given
  /// per-hop UP probabilities, solving (and memoizing) on a miss.
  /// Bit-identical to compute_path_measures on a SteadyStateLinks
  /// provider with the same availabilities.
  PathMeasures measures(const PathModelConfig& config,
                        const std::vector<double>& hop_availability);

  /// Canonical fingerprint of (config, availabilities); two calls with
  /// the same fingerprint share one solve.  Exposed for tests.
  [[nodiscard]] static std::string fingerprint(
      const PathModelConfig& config,
      const std::vector<double>& hop_availability);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  /// The solver outputs a measure reconstruction needs; everything else
  /// in PathMeasures is derived from these plus the (uncanonicalized)
  /// config.
  struct Entry {
    std::vector<double> cycle_probabilities;
    double expected_transmissions = 0.0;
    double expected_transmissions_delivered = 0.0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace whart::hart
