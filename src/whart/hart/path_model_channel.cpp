// Channel-enlarged path solver (DESIGN.md §14).  When any hop carries a
// multi-state link::ChannelModel, the compact message chain ("waiting at
// hop h" + Goal + Discard) is widened so each hop's waiting state splits
// into that hop's channel states: state off[h] + s means "waiting at hop
// h with the channel in state s", off[h] = sum of earlier hops' state
// counts.  Tracking only the *current* hop's channel state is exact:
// per-link chains are independent and started stationary, so the channel
// a message arrives at is a fresh draw from its stationary distribution
// regardless of the message's history.
//
// Two cores mirror the i.i.d. solvers: a per-slot forward pass with a
// stored backward delivery vector (any provider), and the superframe-
// product collapse through markov::SuperframeKernel over the enlarged
// cycle matrices (cycle-stationary providers).  Unlike the i.i.d. chain,
// idle uplink slots and downlink slots are *not* identities here — the
// channel mixes in every 10 ms slot — so the prefix/suffix accounting
// sweeps and the TTL tail advance through every slot matrix of the
// cycle, not just the firing ones.
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::hart {

namespace {

/// Block layout of the enlarged chain: per-hop channel pointers (null =
/// per-slot independent, one state), state counts, block offsets.
struct ChannelLayout {
  std::vector<const link::ChannelModel*> channel;
  std::vector<std::size_t> k;
  std::vector<std::size_t> off;
  std::size_t transient = 0;
  std::size_t goal = 0;
  std::size_t discard = 0;
  std::size_t dim = 0;

  /// Stationary probability of state `s` of hop `h` (1 for k = 1 hops).
  [[nodiscard]] double stationary(std::size_t h, std::size_t s) const {
    return channel[h] != nullptr ? channel[h]->stationary()[s] : 1.0;
  }

  /// Channel transition probability s -> s2 on hop `h`.
  [[nodiscard]] double transition(std::size_t h, std::size_t s,
                                  std::size_t s2) const {
    return channel[h] != nullptr ? channel[h]->transition(s, s2) : 1.0;
  }
};

ChannelLayout make_layout(const PathModelConfig& config,
                          const LinkProbabilityProvider& links) {
  const std::size_t hops = config.hop_count();
  ChannelLayout layout;
  layout.channel.resize(hops);
  layout.k.resize(hops);
  layout.off.resize(hops);
  std::size_t offset = 0;
  for (std::size_t h = 0; h < hops; ++h) {
    layout.channel[h] = links.channel_model(h);
    layout.k[h] =
        layout.channel[h] != nullptr ? layout.channel[h]->state_count() : 1;
    layout.off[h] = offset;
    offset += layout.k[h];
  }
  layout.transient = offset;
  layout.goal = offset;
  layout.discard = offset + 1;
  layout.dim = offset + 2;
  return layout;
}

/// Success probability of an attempt on hop `h` in channel state `s`
/// (uplink slot `slot`, frozen from the first cycle like slot_matrices).
double success_probability(const ChannelLayout& layout,
                           const LinkProbabilityProvider& links,
                           const PathModelConfig& config, std::size_t h,
                           std::size_t s, std::uint32_t slot) {
  if (layout.channel[h] != nullptr)
    return layout.channel[h]->success_in_state(s);
  return links.up_probability(h,
                              config.superframe.absolute_slot_of_uplink(slot));
}

void init_result(PathTransientResult& result, const ChannelLayout& layout,
                 const PathModelConfig& config, std::uint32_t stride,
                 std::size_t trajectory_entries) {
  result.cycle_probabilities.assign(config.reporting_interval, 0.0);
  result.expected_transmissions_per_hop.assign(config.hop_count(), 0.0);
  result.discard_probability = 0.0;
  result.expected_transmissions = 0.0;
  result.expected_transmissions_delivered = 0.0;
  result.trajectory_stride = stride;
  result.diagnostics = SolverDiagnostics{};
  result.goal_trajectory.resize(trajectory_entries);
  result.diagnostics.dtmc_states = layout.dim;
  result.diagnostics.transient_states = layout.transient;
  result.diagnostics.absorbing_states = 2;
  result.diagnostics.forward_steps = config.horizon();
}

void finish_result(PathTransientResult& result) {
  const double goal_mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(), 0.0);
  result.diagnostics.mass_residual =
      std::abs(1.0 - goal_mass - result.discard_probability);
}

/// p <- p^T M into `next` (the vector-through-CSR advance of the
/// superframe core, over the enlarged dimension).
void advance(const linalg::CsrMatrix& matrix, std::vector<double>& p,
             std::vector<double>& next) {
  std::fill(next.begin(), next.end(), 0.0);
  for (std::size_t r = 0; r < p.size(); ++r) {
    const double xr = p[r];
    if (xr == 0.0) continue;
    matrix.for_each_in_row(
        r, [&](std::size_t c, double v) { next[c] += xr * v; });
  }
  std::swap(p, next);
}

}  // namespace

std::vector<linalg::CsrMatrix> PathModel::channel_slot_matrices(
    const LinkProbabilityProvider& links, bool inject_state_leak) const {
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config_.hop_count();
  const ChannelLayout layout = make_layout(config_, links);
  std::vector<linalg::CsrMatrix> matrices;
  matrices.reserve(config_.superframe.cycle_slots());

  const auto push_mixing_row = [&](std::vector<linalg::Triplet>& entries,
                                   std::size_t h, std::size_t s) {
    const std::size_t r = layout.off[h] + s;
    for (std::size_t s2 = 0; s2 < layout.k[h]; ++s2) {
      const double v = layout.transition(h, s, s2);
      if (v > 0.0) entries.push_back({r, layout.off[h] + s2, v});
    }
  };

  for (std::uint32_t slot = 1; slot <= config_.superframe.uplink_slots;
       ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    std::vector<linalg::Triplet> entries;
    for (std::size_t h = 0; h < hops; ++h) {
      if (firing != h) {
        for (std::size_t s = 0; s < layout.k[h]; ++s)
          push_mixing_row(entries, h, s);
        continue;
      }
      for (std::size_t s = 0; s < layout.k[h]; ++s) {
        const std::size_t r = layout.off[h] + s;
        const double q =
            success_probability(layout, links, config_, h, s, slot);
        if (q > 0.0) {
          if (h + 1 == hops) {
            entries.push_back({r, layout.goal, q});
          } else {
            for (std::size_t s2 = 0; s2 < layout.k[h + 1]; ++s2) {
              const double v = q * layout.stationary(h + 1, s2);
              if (v > 0.0) entries.push_back({r, layout.off[h + 1] + s2, v});
            }
          }
        }
        if (q < 1.0) {
          for (std::size_t s2 = 0; s2 < layout.k[h]; ++s2) {
            const double conditioned = inject_state_leak
                                           ? layout.stationary(h, s2)
                                           : layout.transition(h, s, s2);
            const double v = (1.0 - q) * conditioned;
            if (v > 0.0) entries.push_back({r, layout.off[h] + s2, v});
          }
        }
      }
    }
    entries.push_back({layout.goal, layout.goal, 1.0});
    entries.push_back({layout.discard, layout.discard, 1.0});
    matrices.emplace_back(layout.dim, layout.dim, std::move(entries));
  }
  for (std::uint32_t s = 0; s < config_.superframe.downlink_slots; ++s) {
    std::vector<linalg::Triplet> entries;
    for (std::size_t h = 0; h < hops; ++h)
      for (std::size_t cs = 0; cs < layout.k[h]; ++cs)
        push_mixing_row(entries, h, cs);
    entries.push_back({layout.goal, layout.goal, 1.0});
    entries.push_back({layout.discard, layout.discard, 1.0});
    matrices.emplace_back(layout.dim, layout.dim, std::move(entries));
  }
  return matrices;
}

namespace {

/// Per-slot channel core: forward propagation over every absolute slot
/// of the interval with a stored backward delivery vector v_a = P(final
/// delivery | chain state at absolute slot a), so attempt mass at a
/// firing can be attributed to delivered messages exactly as the i.i.d.
/// core's beta recursion does.
void analyze_channel_per_slot(const PathModel& model,
                              const LinkProbabilityProvider& links,
                              const std::vector<linalg::CsrMatrix>& matrices,
                              PathTransientResult& result) {
  WHART_SPAN("path_solve");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const PathModelConfig& config = model.config();
  const ChannelLayout layout = make_layout(config, links);
  const std::size_t dim = layout.dim;
  const std::uint32_t frame = config.superframe.uplink_slots;
  const std::uint32_t cycle_slots = config.superframe.cycle_slots();
  const std::uint32_t ttl = config.effective_ttl();
  const std::uint32_t horizon = config.horizon();

  init_result(result, layout, config, 1, horizon + 1);
  std::size_t trajectory_entry = 0;
  const auto record_trajectory = [&] {
    result.goal_trajectory[trajectory_entry++].assign(
        result.cycle_probabilities.begin(), result.cycle_probabilities.end());
  };

  // Backward pass, stored: v[a] for absolute slots a = 0..ttl_end, where
  // ttl_end is the boundary right after uplink slot `ttl` fired (and its
  // discard swept every transient state, so transient delivery
  // probability at the boundary is 0 and Goal's is 1).
  const std::size_t ttl_end =
      static_cast<std::size_t>(
          config.superframe.absolute_slot_of_uplink(ttl)) +
      1;
  std::vector<double> v((ttl_end + 1) * dim, 0.0);
  v[ttl_end * dim + layout.goal] = 1.0;
  for (std::size_t a = ttl_end; a-- > 0;) {
    const linalg::CsrMatrix& matrix = matrices[a % cycle_slots];
    double* va = v.data() + a * dim;
    const double* vnext = v.data() + (a + 1) * dim;
    for (std::size_t r = 0; r < dim; ++r) {
      double acc = 0.0;
      matrix.for_each_in_row(
          r, [&](std::size_t c, double val) { acc += val * vnext[c]; });
      va[r] = acc;
    }
  }

  // Forward pass over every absolute slot; the message starts at hop 0
  // with its channel stationary.
  std::vector<double> p(dim, 0.0);
  for (std::size_t s = 0; s < layout.k[0]; ++s)
    p[layout.off[0] + s] = layout.stationary(0, s);
  std::vector<double> p_next(dim, 0.0);
  double goal_seen = 0.0;
  record_trajectory();
  const std::uint64_t total_abs =
      static_cast<std::uint64_t>(config.reporting_interval) * cycle_slots;
  for (std::uint64_t a = 0; a < total_abs; ++a) {
    const std::uint32_t pos = static_cast<std::uint32_t>(a % cycle_slots);
    const bool uplink = pos < frame;
    const std::uint32_t slot =
        uplink ? static_cast<std::uint32_t>(a / cycle_slots) * frame + pos + 1
               : 0;
    if (uplink && slot <= ttl) {
      if (const auto firing = model.hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        const double* va = v.data() + a * dim;
        for (std::size_t s = 0; s < layout.k[h]; ++s) {
          const double m = p[layout.off[h] + s];
          if (m == 0.0) continue;
          result.expected_transmissions += m;
          result.expected_transmissions_per_hop[h] += m;
          result.expected_transmissions_delivered +=
              m * va[layout.off[h] + s];
        }
      }
    }
    advance(matrices[pos], p, p_next);
    if (uplink && slot == ttl) {
      for (std::size_t x = 0; x < layout.transient; ++x) {
        result.discard_probability += p[x];
        p[x] = 0.0;
      }
    }
    if (uplink) {
      const std::uint32_t cycle = (slot - 1) / frame;
      result.cycle_probabilities[cycle] += p[layout.goal] - goal_seen;
      goal_seen = p[layout.goal];
      record_trajectory();
    }
  }

  finish_result(result);
  WHART_COUNT("hart.path_solve.count");
  WHART_COUNT("hart.path_solve.channel");
  WHART_OBSERVE("hart.path_solve.states", dim);
  WHART_EVENT(kSolveDone, "hart.path_solve", dim, 0);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
}

/// Superframe-product channel core: the enlarged cycle matrices collapse
/// through markov::SuperframeKernel and full pre-TTL cycles advance in
/// one product step, with the same one-cycle accounting structures as
/// the i.i.d. collapse — except that attempts/delivered bookkeeping sums
/// a firing hop's whole channel block, and the prefix/suffix sweeps
/// advance through *every* slot matrix because idle slots mix.
void analyze_channel_superframe(const PathModel& model,
                                const LinkProbabilityProvider& links,
                                const PathAnalysisOptions& options,
                                const std::vector<linalg::CsrMatrix>& matrices,
                                PathTransientResult& result) {
  WHART_SPAN("path_solve");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const PathModelConfig& config = model.config();
  const ChannelLayout layout = make_layout(config, links);
  const std::size_t hops = config.hop_count();
  const std::size_t dim = layout.dim;
  const std::uint32_t frame = config.superframe.uplink_slots;
  const std::uint32_t cycle_slots = config.superframe.cycle_slots();
  const std::uint32_t ttl = config.effective_ttl();
  const std::uint32_t interval = config.reporting_interval;

  markov::SuperframeKernel kernel(matrices);
  if (options.inject_product_error != 0.0)
    kernel.perturb_product_entry(0, 0, options.inject_product_error);
  const linalg::CsrMatrix& product = kernel.cycle_product();

  // Column storage of the prefix sweep: for each firing j (hop h), the
  // k_h prefix columns of hop h's channel block, flattened.  column_of
  // maps frame position -> offset into the flat buffer (SIZE_MAX = no
  // firing in that slot).
  std::vector<std::size_t> column_of(frame, SIZE_MAX);
  std::size_t column_doubles = 0;
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = model.hop_in_slot(slot); h.has_value()) {
      column_of[slot - 1] = column_doubles;
      column_doubles += layout.k[*h] * dim;
    }
  std::vector<double> prefix_columns(column_doubles, 0.0);

  linalg::Matrix prefix(dim, dim);
  linalg::Matrix prefix_next(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) prefix(i, i) = 1.0;
  linalg::Matrix attempts(dim, hops);
  for (std::uint32_t j = 0; j < cycle_slots; ++j) {
    if (j < frame && column_of[j] != SIZE_MAX) {
      const std::size_t h = model.hop_in_slot(j + 1).value();
      for (std::size_t s = 0; s < layout.k[h]; ++s) {
        double* column = prefix_columns.data() + column_of[j] + s * dim;
        for (std::size_t r = 0; r < dim; ++r) {
          column[r] = prefix(r, layout.off[h] + s);
          attempts(r, h) += column[r];
        }
      }
    }
    linalg::left_multiply_batch_into(prefix, matrices[j], prefix_next);
    std::swap(prefix, prefix_next);
  }

  linalg::Matrix delivered_kernel(dim, dim);
  linalg::Matrix suffix(dim, dim);
  linalg::Matrix suffix_next(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) suffix(i, i) = 1.0;
  for (std::uint32_t j = cycle_slots; j-- > 0;) {
    const linalg::CsrMatrix& step = matrices[j];
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c) suffix_next(r, c) = 0.0;
    for (std::size_t r = 0; r < dim; ++r)
      step.for_each_in_row(r, [&](std::size_t k, double val) {
        for (std::size_t c = 0; c < dim; ++c)
          suffix_next(r, c) += val * suffix(k, c);
      });
    std::swap(suffix, suffix_next);
    if (j < frame && column_of[j] != SIZE_MAX) {
      const std::size_t h = model.hop_in_slot(j + 1).value();
      for (std::size_t s = 0; s < layout.k[h]; ++s) {
        const double* column = prefix_columns.data() + column_of[j] + s * dim;
        for (std::size_t r = 0; r < dim; ++r)
          for (std::size_t c = 0; c < dim; ++c)
            delivered_kernel(r, c) +=
                column[r] * suffix(layout.off[h] + s, c);
      }
    }
  }

  init_result(result, layout, config, frame, interval + 1);
  result.diagnostics.kernel = TransientKernel::kSuperframeProduct;
  std::size_t trajectory_entry = 0;
  const auto record_trajectory = [&] {
    result.goal_trajectory[trajectory_entry++].assign(
        result.cycle_probabilities.begin(), result.cycle_probabilities.end());
  };
  record_trajectory();

  std::vector<double> p(dim, 0.0);
  for (std::size_t s = 0; s < layout.k[0]; ++s)
    p[layout.off[0] + s] = layout.stationary(0, s);
  std::vector<double> p_next(dim, 0.0);
  double goal_seen = 0.0;
  for (std::uint32_t cycle = 0; cycle < interval; ++cycle) {
    if (static_cast<std::uint64_t>(cycle + 1) * frame <= ttl) {
      for (std::size_t h = 0; h < hops; ++h) {
        double a = 0.0;
        for (std::size_t x = 0; x < dim; ++x) a += p[x] * attempts(x, h);
        result.expected_transmissions_per_hop[h] += a;
        result.expected_transmissions += a;
      }
      advance(product, p, p_next);
    } else {
      // The cycle the TTL cuts through runs per-slot; slots past the
      // discard sweep only mix zeroed transient mass, so they (and the
      // cycle's downlink) are skipped exactly.
      for (std::uint32_t s = 1; s <= frame; ++s) {
        const std::uint32_t slot = cycle * frame + s;
        if (slot > ttl) break;
        if (const auto firing = model.hop_in_slot(slot);
            firing.has_value()) {
          const std::size_t h = *firing;
          for (std::size_t cs = 0; cs < layout.k[h]; ++cs) {
            const double m = p[layout.off[h] + cs];
            result.expected_transmissions += m;
            result.expected_transmissions_per_hop[h] += m;
          }
        }
        advance(matrices[s - 1], p, p_next);
        if (slot == ttl) {
          for (std::size_t x = 0; x < layout.transient; ++x) {
            result.discard_probability += p[x];
            p[x] = 0.0;
          }
        }
      }
    }
    result.cycle_probabilities[cycle] = p[layout.goal] - goal_seen;
    goal_seen = p[layout.goal];
    record_trajectory();
  }
  // TTL on a product-advanced cycle boundary: the expired mass never
  // passed a per-slot discard; sweep it now.
  for (std::size_t x = 0; x < layout.transient; ++x) {
    result.discard_probability += p[x];
    p[x] = 0.0;
  }

  // Delivered-attempt accounting, folded backward exactly as in the
  // i.i.d. collapse: b = delivery probability at the cycle's end, u =
  // delivered-attempt mass accrued after it; the TTL cycle runs
  // per-slot (through every matrix — idle slots mix), earlier cycles
  // collapse as u <- K b + P u, b <- P b.  b starts as the Goal
  // indicator after uplink slot `ttl`: later matrices leave it
  // invariant (transient rows carry no mass into Goal under mixing).
  {
    WHART_TIMER("hart.stage.tail_solve.ns");
    std::vector<double> b(dim, 0.0);
    b[layout.goal] = 1.0;
    std::vector<double> u(dim, 0.0);
    std::vector<double> b_next(dim, 0.0);
    std::vector<double> u_next(dim, 0.0);
    const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
    for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
      const linalg::CsrMatrix& step = matrices[(slot - 1) % frame];
      for (std::size_t r = 0; r < dim; ++r) {
        double bacc = 0.0;
        double uacc = 0.0;
        step.for_each_in_row(r, [&](std::size_t c, double val) {
          bacc += val * b[c];
          uacc += val * u[c];
        });
        b_next[r] = bacc;
        u_next[r] = uacc;
      }
      if (const auto firing = model.hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        for (std::size_t s = 0; s < layout.k[h]; ++s)
          u_next[layout.off[h] + s] += b_next[layout.off[h] + s];
      }
      std::swap(b, b_next);
      std::swap(u, u_next);
    }
    for (std::uint32_t cycle = ttl_cycle; cycle-- > 0;) {
      for (std::size_t r = 0; r < dim; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
          acc += delivered_kernel(r, c) * b[c];
        u_next[r] = acc;
        b_next[r] = 0.0;
      }
      for (std::size_t r = 0; r < dim; ++r)
        product.for_each_in_row(r, [&](std::size_t c, double val) {
          u_next[r] += val * u[c];
          b_next[r] += val * b[c];
        });
      std::swap(u, u_next);
      std::swap(b, b_next);
    }
    double delivered = 0.0;
    for (std::size_t s = 0; s < layout.k[0]; ++s)
      delivered += layout.stationary(0, s) * u[layout.off[0] + s];
    result.expected_transmissions_delivered = delivered;
  }

  finish_result(result);
  WHART_COUNT("hart.path_solve.count");
  WHART_COUNT("hart.path_solve.superframe");
  WHART_COUNT("hart.path_solve.channel");
  WHART_OBSERVE("hart.path_solve.states", dim);
  WHART_EVENT(kSolveDone, "hart.path_solve", dim, 0);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
}

}  // namespace

PathTransientResult PathModel::analyze_channel(
    const LinkProbabilityProvider& links,
    const PathAnalysisOptions& options) const {
  const std::vector<linalg::CsrMatrix> matrices =
      channel_slot_matrices(links, options.inject_channel_state_leak);
  PathTransientResult result;
  if (options.kernel == TransientKernel::kSuperframeProduct &&
      links.cycle_stationary()) {
    analyze_channel_superframe(*this, links, options, matrices, result);
    return result;
  }
  if (options.kernel == TransientKernel::kSuperframeProduct)
    WHART_COUNT("hart.path_solve.kernel_fallback");
  analyze_channel_per_slot(*this, links, matrices, result);
  return result;
}

}  // namespace whart::hart
