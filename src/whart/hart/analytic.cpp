#include "whart/hart/analytic.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"
#include "whart/numeric/distributions.hpp"

namespace whart::hart {

std::vector<double> analytic_cycle_probabilities(std::uint32_t hops,
                                                 double ps,
                                                 std::uint32_t cycles) {
  return numeric::negative_binomial_cycles(hops, ps, cycles);
}

std::vector<double> analytic_cycle_probabilities(
    const std::vector<double>& per_hop_ps, std::uint32_t cycles) {
  expects(!per_hop_ps.empty(), "at least one hop");
  for (double ps : per_hop_ps)
    expects(ps >= 0.0 && ps <= 1.0, "0 <= ps <= 1");

  // state[h]: probability that the message sits before hop h (0-based)
  // at the start of a cycle; delivered[m]: delivery in cycle m.
  // Within one cycle the message advances through consecutive hops until
  // the first failure (slots are ordered along the chain).
  std::vector<double> delivered(cycles, 0.0);
  std::vector<double> waiting(per_hop_ps.size(), 0.0);
  waiting[0] = 1.0;
  for (std::uint32_t m = 0; m < cycles; ++m) {
    std::vector<double> next(per_hop_ps.size(), 0.0);
    for (std::size_t h = 0; h < per_hop_ps.size(); ++h) {
      double advancing = waiting[h];
      if (advancing == 0.0) continue;
      for (std::size_t k = h; k < per_hop_ps.size(); ++k) {
        const double succeed = advancing * per_hop_ps[k];
        const double fail = advancing - succeed;
        next[k] += fail;  // stuck before hop k until the next cycle
        advancing = succeed;
      }
      delivered[m] += advancing;  // made it through every remaining hop
    }
    waiting = std::move(next);
  }
  return delivered;
}

PathMeasures analytic_path_measures(const PathModelConfig& config,
                                    const std::vector<double>& per_hop_ps) {
  expects(per_hop_ps.size() == config.hop_count(),
          "one success probability per hop");
  expects(std::is_sorted(config.hop_slots.begin(), config.hop_slots.end()),
          "hop slots increase along the chain",
          "out-of-order schedules require the exact DTMC (PathModel)");
  expects(config.retry_slots.empty(),
          "no retry slots", "retry slots require the exact DTMC (PathModel)");
  expects(config.effective_ttl() == config.horizon(),
          "default TTL", "custom TTLs require the exact DTMC (PathModel)");
  std::vector<double> cycles =
      analytic_cycle_probabilities(per_hop_ps, config.reporting_interval);
  const double transmissions = closed_form_transmissions(
      cycles, config.hop_count(), config.reporting_interval);
  return measures_from_cycles(config, std::move(cycles), transmissions);
}

PathMeasures analytic_path_measures(const PathModelConfig& config,
                                    double ps) {
  return analytic_path_measures(
      config, std::vector<double>(config.hop_count(), ps));
}

}  // namespace whart::hart
