// Closed control loops over WirelessHART (paper Sections II and V-A).
//
// A loop iteration is: sensor sample -> uplink path -> PID at the
// controller -> downlink path -> actuator.  With a symmetric setup the
// downlink mirrors the uplink; since the two directions use disjoint
// slot halves their cycle counts are independent and the loop's cycle
// distribution is the convolution of the two (the paper's remark that
// the loop closes in one cycle with probability 0.4219^2 = 0.178).
#pragma once

#include <cstdint>
#include <vector>

#include "whart/hart/path_analysis.hpp"

namespace whart::hart {

/// Measures of one closed control loop.
struct ControlLoopMeasures {
  /// P(the loop completes in combined cycle m), m = 1..Is.  A loop that
  /// takes a uplink cycles and b downlink cycles completes in cycle
  /// a + b - 1.
  std::vector<double> loop_cycle_probabilities;

  /// Probability that the loop closes within the reporting interval.
  double loop_reachability = 0.0;

  /// P(loop closes in the very first cycle) — the paper's 0.178 for the
  /// example path.
  double first_cycle_probability = 0.0;

  /// Expected end-to-end latency of *closed* loops: E[uplink delay] +
  /// controller processing + E[downlink delay], in milliseconds.  (The
  /// paper notes AI/AO/PID execution is negligible next to a 10 ms
  /// slot.)
  double expected_latency_ms = 0.0;

  /// Expected reporting intervals until the first unclosed loop:
  /// 1 / (1 - loop_reachability); infinity when every loop closes.
  double expected_intervals_to_first_open_loop = 0.0;
};

/// Combine independently-analyzed uplink and downlink path measures into
/// loop measures.  Both must cover the same reporting interval.
/// `controller_processing_ms` defaults to 0 (negligible per the paper).
ControlLoopMeasures analyze_control_loop(const PathMeasures& uplink,
                                         const PathMeasures& downlink,
                                         double controller_processing_ms = 0.0);

/// Symmetric shorthand: downlink mirrors the uplink (same path, same
/// links, downlink half of each superframe).
ControlLoopMeasures analyze_symmetric_control_loop(
    const PathMeasures& uplink, double controller_processing_ms = 0.0);

/// Exact closed-loop analysis with an explicit downlink model.
///
/// `uplink` ages over the uplink half (superframe Fup/Fdown as usual);
/// `downlink` is a PathModelConfig whose hop slots are numbered within
/// the *downlink* half (1..Fdown) and whose superframe is the swapped
/// (Fdown, Fup) — build it from net::build_downlink_schedule.  The loop
/// is driven per cycle: a sample delivered in uplink cycle a enters the
/// downlink in the same cycle's downlink half, so a loop taking a uplink
/// and b downlink cycles closes in combined cycle a+b−1 at wall-clock
///   latency = (Fup + d0 + (a+b−2)·(Fup+Fdown)) · 10 ms + processing,
/// where d0 is the downlink chain's last slot within its half.  This is
/// exact where the symmetric shorthand approximates the latency.
ControlLoopMeasures analyze_control_loop_exact(
    const PathModel& uplink, const LinkProbabilityProvider& uplink_links,
    const PathModel& downlink, const LinkProbabilityProvider& downlink_links,
    double controller_processing_ms = 0.0);

}  // namespace whart::hart
