// Path compositionality (paper Sections V-D and VI-E).  When a peer path
// (field device -> field device) is concatenated with an existing path to
// the gateway, the cycle probabilities of the composed path are the
// time-shifted convolution of the component cycle probabilities (Eq. 12):
//
//   gc(k) = sum_i ge(i) gp(k - 1 - i)   (a message that takes m cycles on
//   the peer path and n on the existing one arrives in cycle m + n - 1).
//
// This predicts the performance of candidate routes without rebuilding a
// DTMC — the basis of the paper's routing suggestions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/link/link_model.hpp"
#include "whart/phy/snr.hpp"

namespace whart::hart {

/// Eq. 12: compose peer-path and existing-path cycle probabilities,
/// truncated to `out_cycles` (the reporting interval of the composed
/// path).
std::vector<double> compose_cycle_probabilities(
    std::span<const double> peer, std::span<const double> existing,
    std::uint32_t out_cycles);

/// Cycle probabilities of a one-hop peer path whose link is in steady
/// state: g(m) = (1 - pi)^(m-1) * pi.
std::vector<double> one_hop_cycle_probabilities(const link::LinkModel& link,
                                                std::uint32_t cycles);

/// A candidate route evaluated by composition.
struct RoutePrediction {
  /// gc: composed cycle probabilities (size = reporting interval).
  std::vector<double> composed_cycles;

  /// Reachability of the composed path (Eq. 6 applied to gc).
  double reachability = 0.0;

  /// Expected delay penalty rank: the number of hops of the composed
  /// path (each extra hop costs one extra slot in the schedule, i.e.
  /// +10 ms expected delay at equal reachability — Section VI-E).
  std::size_t total_hops = 0;
};

/// Predict the performance of joining via a new 1-hop peer link (measured
/// by its SNR) to an existing path with known cycle probabilities.
RoutePrediction predict_route(phy::EbN0 measured_snr,
                              std::span<const double> existing_cycles,
                              std::size_t existing_hops,
                              std::uint32_t reporting_interval,
                              double recovery_probability =
                                  link::LinkModel::kDefaultRecovery);

/// Among candidate routes, the best one: highest reachability; routes
/// whose reachabilities differ by at most `reachability_tolerance` count
/// as equal and the one with fewer hops wins (each extra hop costs one
/// more schedule slot, hence ~10 ms of expected delay — the paper's
/// Section VI-E decision rule, which prefers the 99.45% 3-hop route over
/// the 99.46% 4-hop one).
std::size_t best_route(const std::vector<RoutePrediction>& candidates,
                       double reachability_tolerance = 1e-3);

}  // namespace whart::hart
