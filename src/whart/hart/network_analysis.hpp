// Whole-network evaluation (paper Section VI): per-path measures, the
// overall delay distribution Gamma and its mean (Eq. 13), the network
// utilization (Eq. 11) and bottleneck identification.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/link/channel_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// Execution knobs of analyze_network.  Neither threading nor caching
/// changes the result: per-path measures land by index and the cache's
/// canonical solves are bit-identical to direct ones.
struct AnalysisOptions {
  /// Worker threads for the per-path fan-out; 0 consults WHART_THREADS
  /// and falls back to the hardware concurrency, 1 runs serially.
  unsigned threads = 0;

  /// Share solves between structurally identical paths (on by default;
  /// purely a speedup).
  bool use_cache = true;

  /// Optional caller-owned cache reused across calls (e.g. across the
  /// repeated analyses of a sweep or benchmark).  When null and
  /// use_cache is true, a fresh per-call cache still deduplicates within
  /// the call.
  PathAnalysisCache* cache = nullptr;

  /// Transient solver for the per-path solves.  Steady-state links (the
  /// only regime this entry point uses) satisfy the superframe-product
  /// kernel's cycle-stationarity precondition, so the choice is purely a
  /// speed/rounding trade-off; measures agree to ~1e-12.
  TransientKernel kernel = TransientKernel::kPerSlot;

  /// Share the symbolic solve phase between paths of identical schedule
  /// shape (DESIGN.md §12): paths with equal skeleton fingerprints run
  /// Algorithm 1 once and each perform only a numeric refill.  Bitwise
  /// identical to fresh per-path solves; off is the differential
  /// oracle's baseline.  Forwarded to the cache when one is in use.
  bool reuse_skeleton = true;

  /// Correlated-channel overlay.  When set, every hop of every path runs
  /// this channel rescaled so its stationary marginal success equals the
  /// hop's steady-state availability (ChannelModel::with_marginal_success)
  /// and the per-path solves go through the channel-enlarged DTMC
  /// (hart/path_model_channel.cpp).  Channel paths always solve fresh:
  /// the cache and the skeleton store key the i.i.d. shape, not the
  /// enlarged one, so neither is consulted.  A one-state (i.i.d.)
  /// channel reproduces the plain analysis to rounding.
  std::optional<link::ChannelModel> channel;
};

/// One point of the network-wide delay distribution.
struct DelayProbability {
  double delay_ms = 0.0;
  double probability = 0.0;

  friend bool operator==(const DelayProbability&,
                         const DelayProbability&) = default;
};

/// Roll-up of the per-path SolverDiagnostics blocks: where the run's
/// DTMC work went.  Paths analyzed without diagnostics (analytic
/// derivations) contribute nothing.
struct NetworkDiagnostics {
  /// Paths whose measures required a fresh DTMC solve.
  std::uint64_t dtmc_solves = 0;

  /// Paths served from the path-analysis cache.
  std::uint64_t cache_hits = 0;

  /// Total chain states across the fresh solves.
  std::uint64_t states_solved = 0;

  /// Wall-clock summed over fresh solves, ns (0 when metrics are off).
  std::uint64_t solve_ns_total = 0;

  /// Worst probability-mass residual seen across all solves.
  double max_mass_residual = 0.0;
};

/// Aggregated network measures.
struct NetworkMeasures {
  /// Per-path measures, in path order.
  std::vector<PathMeasures> per_path;

  /// Gamma: the average of all path delay distributions, sorted by delay.
  std::vector<DelayProbability> overall_delay_distribution;

  /// E[Gamma]: the average of the expected path delays (Eq. 13), ms.
  double mean_delay_ms = 0.0;

  /// U = sum over paths of U_p (Eq. 11), counting all attempts.
  double network_utilization = 0.0;

  /// U summed from the delivered-only per-path utilization — the
  /// accounting that reproduces the paper's Table II.
  double network_utilization_delivered = 0.0;

  /// Path with the largest expected delay (0-based index).
  std::size_t bottleneck_by_delay = 0;

  /// Path with the smallest reachability (0-based index).
  std::size_t bottleneck_by_reachability = 0;

  /// Solver roll-up over the per-path diagnostics blocks.
  NetworkDiagnostics diagnostics;
};

/// Exact DTMC analysis of every path with steady-state links taken from
/// the network's link models.  Paths are solved concurrently (see
/// AnalysisOptions); the result is identical to the serial loop.
NetworkMeasures analyze_network(const net::Network& network,
                                const std::vector<net::Path>& paths,
                                const net::Schedule& schedule,
                                net::SuperframeConfig superframe,
                                std::uint32_t reporting_interval,
                                const AnalysisOptions& options = {});

/// Aggregate precomputed per-path measures (used when paths were analyzed
/// under non-steady regimes, e.g. failure scripts).
NetworkMeasures aggregate_measures(std::vector<PathMeasures> per_path);

}  // namespace whart::hart
