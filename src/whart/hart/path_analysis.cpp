#include "whart/hart/path_analysis.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/phy/frame.hpp"

namespace whart::hart {

PathMeasures compute_path_measures(const PathModel& model,
                                   const LinkProbabilityProvider& links) {
  return compute_path_measures(model, links, PathAnalysisOptions{});
}

PathMeasures compute_path_measures(const PathModel& model,
                                   const LinkProbabilityProvider& links,
                                   const PathAnalysisOptions& options) {
  return measures_from_transient(model.config(),
                                 model.analyze(links, options));
}

PathMeasures measures_from_transient(const PathModelConfig& config,
                                     const PathTransientResult& transient) {
  PathMeasures m = measures_from_cycles(config, transient.cycle_probabilities,
                                        transient.expected_transmissions);
  // Replace the closed-form delivered-only estimate (exact only for
  // in-order schedules) with the exact backward-pass count.
  m.utilization_delivered =
      transient.expected_transmissions_delivered /
      (static_cast<double>(config.reporting_interval) *
       config.superframe.uplink_slots);
  m.diagnostics = transient.diagnostics;
  return m;
}

PathMeasures measures_from_cycles(const PathModelConfig& config,
                                  std::vector<double> cycle_probabilities,
                                  double expected_transmissions) {
  expects(cycle_probabilities.size() == config.reporting_interval,
          "one cycle probability per cycle of the reporting interval");
  PathMeasures m;
  m.cycle_probabilities = std::move(cycle_probabilities);
  m.reachability = std::accumulate(m.cycle_probabilities.begin(),
                                   m.cycle_probabilities.end(), 0.0);
  m.discard_probability = 1.0 - m.reachability;

  const double cycle_ms = config.superframe.cycle_milliseconds();
  m.delays_ms.reserve(config.reporting_interval);
  m.delay_distribution.reserve(config.reporting_interval);
  for (std::uint32_t i = 0; i < config.reporting_interval; ++i) {
    const double delay =
        config.gateway_slot() * phy::kSlotMilliseconds + i * cycle_ms;
    m.delays_ms.push_back(delay);
    m.delay_distribution.push_back(
        m.reachability > 0.0 ? m.cycle_probabilities[i] / m.reachability
                             : 0.0);
    m.expected_delay_ms += delay * m.delay_distribution.back();
  }

  const double schedule_slots =
      static_cast<double>(config.reporting_interval) *
      config.superframe.uplink_slots;
  m.expected_transmissions = expected_transmissions;
  m.utilization = expected_transmissions / schedule_slots;
  m.utilization_delivered =
      delivered_transmissions(m.cycle_probabilities, config.hop_count(),
                              config.reporting_interval) /
      schedule_slots;
  m.expected_intervals_to_first_loss =
      m.discard_probability > 0.0
          ? 1.0 / m.discard_probability
          : std::numeric_limits<double>::infinity();

  double second_moment = 0.0;
  for (std::uint32_t i = 0; i < config.reporting_interval; ++i)
    second_moment +=
        m.delays_ms[i] * m.delays_ms[i] * m.delay_distribution[i];
  const double variance =
      second_moment - m.expected_delay_ms * m.expected_delay_ms;
  m.delay_jitter_ms = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return m;
}

double PathMeasures::delay_percentile_ms(double quantile) const {
  expects(quantile >= 0.0 && quantile <= 1.0, "0 <= quantile <= 1");
  double cumulative = 0.0;
  for (std::size_t i = 0; i < delays_ms.size(); ++i) {
    cumulative += delay_distribution[i];
    if (cumulative >= quantile - 1e-12) return delays_ms[i];
  }
  return delays_ms.empty() ? 0.0 : delays_ms.back();
}

double PathMeasures::delay_cdf(double delay_ms) const {
  double cumulative = 0.0;
  for (std::size_t i = 0; i < delays_ms.size(); ++i)
    if (delays_ms[i] <= delay_ms + 1e-12) cumulative += delay_distribution[i];
  return cumulative;
}

double closed_form_transmissions(const std::vector<double>& cycle_probs,
                                 std::size_t hops,
                                 std::uint32_t reporting_interval) {
  expects(cycle_probs.size() == reporting_interval,
          "one probability per cycle");
  double attempts = 0.0;
  double reachability = 0.0;
  for (std::uint32_t i = 0; i < reporting_interval; ++i) {
    attempts += cycle_probs[i] * static_cast<double>(hops + i);
    reachability += cycle_probs[i];
  }
  attempts += (1.0 - reachability) *
              static_cast<double>(hops + reporting_interval - 1);
  return attempts;
}

double delivered_transmissions(const std::vector<double>& cycle_probs,
                               std::size_t hops,
                               std::uint32_t reporting_interval) {
  expects(cycle_probs.size() == reporting_interval,
          "one probability per cycle");
  double attempts = 0.0;
  for (std::uint32_t i = 0; i < reporting_interval; ++i)
    attempts += cycle_probs[i] * static_cast<double>(hops + i);
  return attempts;
}

}  // namespace whart::hart
