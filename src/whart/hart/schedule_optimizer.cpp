#include "whart/hart/schedule_optimizer.hpp"

#include <algorithm>
#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/analytic.hpp"
#include "whart/hart/what_if.hpp"
#include "whart/net/schedule_builder.hpp"

namespace whart::hart {

std::vector<double> expected_extra_cycles(
    const net::Network& network, const std::vector<net::Path>& paths,
    std::uint32_t reporting_interval, unsigned threads) {
  WHART_SPAN("expected_extra_cycles");
  expects(!paths.empty(), "at least one path");
  return common::parallel_map(
      paths,
      [&](const net::Path& path) {
        std::vector<double> per_hop_ps;
        for (const link::LinkModel& model : path.hop_models(network))
          per_hop_ps.push_back(model.steady_state_availability());
        const std::vector<double> cycles =
            analytic_cycle_probabilities(per_hop_ps, reporting_interval);
        const double reach =
            std::accumulate(cycles.begin(), cycles.end(), 0.0);
        double mean_extra = 0.0;
        if (reach > 0.0) {
          for (std::uint32_t i = 0; i < reporting_interval; ++i)
            mean_extra += static_cast<double>(i) * cycles[i] / reach;
        }
        return mean_extra;
      },
      threads);
}

net::Schedule build_min_worst_delay_schedule(
    const net::Network& network, const std::vector<net::Path>& paths,
    net::SuperframeConfig superframe, std::uint32_t reporting_interval) {
  WHART_REQUEST_SPAN("schedule_optimize");
  expects(net::required_uplink_slots(paths) <= superframe.uplink_slots,
          "paths fit into the uplink frame");
  const std::vector<double> extra =
      expected_extra_cycles(network, paths, reporting_interval);
  const double cycle_slots = superframe.cycle_slots();

  std::vector<std::size_t> order(paths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double penalty_a = cycle_slots * extra[a];
                     const double penalty_b = cycle_slots * extra[b];
                     if (penalty_a != penalty_b)
                       return penalty_a > penalty_b;
                     return paths[a].hop_count() > paths[b].hop_count();
                   });

  net::Schedule schedule(superframe.uplink_slots, paths.size());
  net::SlotNumber next_slot = 1;
  for (std::size_t path_index : order) {
    for (std::size_t h = 0; h < paths[path_index].hop_count(); ++h) {
      const auto [from, to] = paths[path_index].hop(h);
      schedule.assign(next_slot++, path_index, h, from, to);
    }
  }
  schedule.validate_complete(paths);
  return schedule;
}

double worst_expected_delay(const net::Network& network,
                            const std::vector<net::Path>& paths,
                            const net::Schedule& schedule,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            const AnalysisOptions& options) {
  const NetworkMeasures measures = analyze_network(
      network, paths, schedule, superframe, reporting_interval, options);
  double worst = 0.0;
  for (const PathMeasures& m : measures.per_path)
    worst = std::max(worst, m.expected_delay_ms);
  return worst;
}

double worst_expected_delay(WhatIfEngine& engine, net::LinkId link,
                            double availability) {
  return engine.what_if_delta(link, availability).worst_expected_delay_ms;
}

}  // namespace whart::hart
