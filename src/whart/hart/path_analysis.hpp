// Quality-of-service measures of a path (paper Section V): reachability R
// (Eq. 6), delay distribution tau and expected delay E[tau] (Eqs. 7-9),
// slot utilization U (Eq. 10), and the expected number of reporting
// intervals until the first message loss (geometric, E[N] = 1/(1-R)).
#pragma once

#include <optional>
#include <vector>

#include "whart/hart/link_probability.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

/// All per-path measures of paper Section V.
struct PathMeasures {
  /// g(i): probability that the message is delivered in cycle i (1-based).
  std::vector<double> cycle_probabilities;

  /// R = sum_i g(i)  (Eq. 6).
  double reachability = 0.0;

  /// 1 - R: the message is discarded (TTL expiry / "package loss").
  double discard_probability = 0.0;

  /// d_i = (a0 + (i-1) (Fup + Fdown)) * 10 ms  (Eq. 7: the age at the
  /// gateway plus the downlink half of every elapsed superframe).
  std::vector<double> delays_ms;

  /// tau(d_i) = g(i) / R: delay distribution over *received* messages
  /// (Eq. 8).  All zeros when R = 0.
  std::vector<double> delay_distribution;

  /// E[tau] = sum_i d_i tau(d_i)  (Eq. 9), in milliseconds.
  double expected_delay_ms = 0.0;

  /// Expected number of transmission attempts during the interval.
  double expected_transmissions = 0.0;

  /// U_p = E[transmissions] / (Is * Fup)  (Eq. 10: the fraction of the
  /// path's schedule slots that actually carried a transmission),
  /// counting every attempt including those of eventually-discarded
  /// messages.
  double utilization = 0.0;

  /// The paper's Table II accounting: only messages that reach the
  /// gateway are charged (n + i - 1 attempts for a cycle-i delivery);
  /// discarded messages contribute nothing.  Reproduces Table II exactly.
  double utilization_delivered = 0.0;

  /// E[N] = 1 / (1 - R): expected reporting intervals until the first
  /// loss (infinite when R = 1).
  double expected_intervals_to_first_loss = 0.0;

  /// Standard deviation of the delay over received messages, ms — the
  /// control engineer's jitter figure.
  double delay_jitter_ms = 0.0;

  /// Solver provenance: present when the measures came from an exact DTMC
  /// solve (directly or through the cache); absent for measures derived
  /// analytically from known cycle probabilities.
  std::optional<SolverDiagnostics> diagnostics;

  /// Smallest delay d with P(delay <= d | received) >= q.  Returns the
  /// last delay when R = 0.  q in [0, 1].
  [[nodiscard]] double delay_percentile_ms(double quantile) const;

  /// P(delay <= d | received).
  [[nodiscard]] double delay_cdf(double delay_ms) const;
};

/// Exact measures from the path DTMC under the given link regime.
PathMeasures compute_path_measures(const PathModel& model,
                                   const LinkProbabilityProvider& links);

/// Exact measures with solver selection (PathAnalysisOptions::kernel);
/// both kernels agree on every measure to rounding.
PathMeasures compute_path_measures(const PathModel& model,
                                   const LinkProbabilityProvider& links,
                                   const PathAnalysisOptions& options);

/// Reduce a transient solve to measures — the exact reduction
/// compute_path_measures applies (measures_from_cycles plus the exact
/// delivered-only utilization override).  Shared with the skeleton
/// refill path, so fresh and refilled solves yield bitwise-identical
/// measures whenever their transients agree bitwise.
PathMeasures measures_from_transient(const PathModelConfig& config,
                                     const PathTransientResult& transient);

/// Derive the measures implied by known per-cycle delivery probabilities
/// (used by the analytic model and by path composition, where no DTMC is
/// re-solved).  `expected_transmissions` may be the exact count or the
/// closed-form estimate below.
PathMeasures measures_from_cycles(const PathModelConfig& config,
                                  std::vector<double> cycle_probabilities,
                                  double expected_transmissions);

/// Closed-form expected transmissions: a message absorbed in cycle i has
/// made n + i - 1 attempts (n successes, i-1 retries); a discarded message
/// is charged n + Is - 1 (the calibrated variant of paper Eq. 10 — see
/// DESIGN.md).
double closed_form_transmissions(const std::vector<double>& cycle_probs,
                                 std::size_t hops,
                                 std::uint32_t reporting_interval);

/// Expected transmissions of *delivered* messages only — the accounting
/// that reproduces the paper's Table II (discarded messages are ignored).
double delivered_transmissions(const std::vector<double>& cycle_probs,
                               std::size_t hops,
                               std::uint32_t reporting_interval);

}  // namespace whart::hart
