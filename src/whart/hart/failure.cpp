#include "whart/hart/failure.hpp"

#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/hart/analytic.hpp"
#include "whart/link/failure_script.hpp"

namespace whart::hart {

double cycle_shift_reachability(std::uint32_t hops, double ps,
                                std::uint32_t reporting_interval,
                                std::uint32_t lost_cycles) {
  if (lost_cycles >= reporting_interval) return 0.0;
  const std::vector<double> cycles = analytic_cycle_probabilities(
      hops, ps, reporting_interval - lost_cycles);
  return std::accumulate(cycles.begin(), cycles.end(), 0.0);
}

double scripted_failure_reachability(const PathModelConfig& config,
                                     const std::vector<link::LinkModel>& hops,
                                     std::size_t failed_hop,
                                     std::uint32_t failure_cycles) {
  expects(failed_hop < hops.size(), "failed hop in range");
  const ScriptedLinks links(
      hops, failed_hop,
      {link::cycle_window(0, failure_cycles,
                          config.superframe.cycle_slots())});
  const PathModel model(config);
  const PathTransientResult result = model.analyze(links);
  return std::accumulate(result.cycle_probabilities.begin(),
                         result.cycle_probabilities.end(), 0.0);
}

double random_duration_failure_reachability(std::uint32_t hops, double ps,
                                            std::uint32_t reporting_interval,
                                            double continue_probability,
                                            std::uint32_t max_cycles) {
  expects(continue_probability >= 0.0 && continue_probability < 1.0,
          "0 <= q < 1");
  expects(max_cycles >= 1, "max_cycles >= 1");
  double mixed = 0.0;
  double mass_left = 1.0;
  for (std::uint32_t k = 1; k <= max_cycles; ++k) {
    const double weight = k == max_cycles
                              ? mass_left
                              : mass_left * (1.0 - continue_probability);
    mixed += weight *
             cycle_shift_reachability(hops, ps, reporting_interval, k);
    mass_left -= weight;
  }
  return mixed;
}

std::vector<LinkFailureImpact> one_cycle_link_failure(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, net::LinkId failed_link) {
  std::vector<LinkFailureImpact> impacts;
  impacts.reserve(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    LinkFailureImpact impact;
    impact.path_index = p;

    const PathModelConfig config = PathModelConfig::from_schedule(
        schedule, p, superframe, reporting_interval);
    const std::vector<link::LinkModel> hop_models =
        paths[p].hop_models(network);
    const std::vector<net::LinkId> hop_links =
        paths[p].resolve_links(network);

    const PathModel model(config);
    const SteadyStateLinks steady(hop_models);
    const PathTransientResult nominal = model.analyze(steady);
    impact.reachability_nominal =
        std::accumulate(nominal.cycle_probabilities.begin(),
                        nominal.cycle_probabilities.end(), 0.0);

    std::size_t failed_hop = hop_links.size();
    for (std::size_t h = 0; h < hop_links.size(); ++h)
      if (hop_links[h] == failed_link) failed_hop = h;
    impact.affected = failed_hop < hop_links.size();

    if (!impact.affected) {
      impact.reachability_cycle_shift = impact.reachability_nominal;
      impact.reachability_exact = impact.reachability_nominal;
    } else {
      // The paper's Table III uses homogeneous links; use the failed
      // hop's availability as the per-attempt success probability.
      const double ps =
          hop_models[failed_hop].steady_state_availability();
      impact.reachability_cycle_shift = cycle_shift_reachability(
          static_cast<std::uint32_t>(config.hop_count()), ps,
          reporting_interval, 1);
      impact.reachability_exact = scripted_failure_reachability(
          config, hop_models, failed_hop, 1);
    }
    impacts.push_back(std::move(impact));
  }
  return impacts;
}

std::vector<std::optional<net::Path>> reroute_after_permanent_failure(
    const net::Network& network, const std::vector<net::Path>& paths,
    net::LinkId failed_link) {
  std::vector<std::optional<net::Path>> rerouted;
  rerouted.reserve(paths.size());
  for (const net::Path& path : paths) {
    if (!path.uses_link(network, failed_link)) {
      rerouted.emplace_back(path);
      continue;
    }
    rerouted.push_back(net::shortest_uplink_path_avoiding(
        network, path.source(), {failed_link}));
  }
  return rerouted;
}

}  // namespace whart::hart
