#include "whart/hart/composition.hpp"

#include "whart/common/contracts.hpp"
#include "whart/linalg/convolution.hpp"
#include "whart/phy/frame.hpp"

namespace whart::hart {

std::vector<double> compose_cycle_probabilities(
    std::span<const double> peer, std::span<const double> existing,
    std::uint32_t out_cycles) {
  expects(!peer.empty() && !existing.empty(),
          "both component distributions are non-empty");
  // With 0-based arrays (index a = cycle a+1), a peer delivery in cycle
  // a+1 and an existing delivery in cycle b+1 compose to cycle a+b+1,
  // which is 0-based index a+b — plain convolution.
  return linalg::convolve_truncated(peer, existing, out_cycles);
}

std::vector<double> one_hop_cycle_probabilities(const link::LinkModel& link,
                                                std::uint32_t cycles) {
  const double pi = link.steady_state_availability();
  std::vector<double> g;
  g.reserve(cycles);
  double miss = 1.0;
  for (std::uint32_t m = 0; m < cycles; ++m) {
    g.push_back(miss * pi);
    miss *= 1.0 - pi;
  }
  return g;
}

RoutePrediction predict_route(phy::EbN0 measured_snr,
                              std::span<const double> existing_cycles,
                              std::size_t existing_hops,
                              std::uint32_t reporting_interval,
                              double recovery_probability) {
  const link::LinkModel peer_link = link::LinkModel::from_snr(
      measured_snr, phy::kMessageBits, recovery_probability);
  const std::vector<double> peer =
      one_hop_cycle_probabilities(peer_link, reporting_interval);
  RoutePrediction prediction;
  prediction.composed_cycles = compose_cycle_probabilities(
      peer, existing_cycles, reporting_interval);
  for (double g : prediction.composed_cycles)
    prediction.reachability += g;
  prediction.total_hops = existing_hops + 1;
  return prediction;
}

std::size_t best_route(const std::vector<RoutePrediction>& candidates,
                       double reachability_tolerance) {
  expects(!candidates.empty(), "at least one candidate route");
  expects(reachability_tolerance >= 0.0, "tolerance >= 0");
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const RoutePrediction& challenger = candidates[i];
    const RoutePrediction& champion = candidates[best];
    const double gap = challenger.reachability - champion.reachability;
    if (gap > reachability_tolerance ||
        (gap >= -reachability_tolerance &&
         challenger.total_hops < champion.total_hops))
      best = i;
  }
  return best;
}

}  // namespace whart::hart
