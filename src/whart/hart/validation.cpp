#include "whart/hart/validation.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::hart {

ValidationReport validate_against_simulation(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, const ValidationConfig& config) {
  expects(config.intervals > 0, "at least one interval");
  expects(config.reachability_z > 0.0 && config.max_delay_z > 0.0,
          "positive tolerances");

  ValidationReport report;
  AnalysisOptions analysis_options;
  analysis_options.threads = config.threads;
  report.model = analyze_network(network, paths, schedule, superframe,
                                 reporting_interval, analysis_options);

  sim::SimulatorConfig sim_config;
  sim_config.superframe = superframe;
  sim_config.reporting_interval = reporting_interval;
  sim_config.intervals = config.intervals;
  sim_config.seed = config.seed;
  sim_config.shards = config.shards;
  sim_config.threads = config.threads;
  sim::NetworkSimulator simulator(network, paths, schedule, sim_config);
  report.simulation = simulator.run();

  report.passed = true;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathMeasures& m = report.model.per_path[p];
    const sim::PathStatistics& s = report.simulation.per_path[p];
    PathValidation v;
    v.path_index = p;
    v.model_reachability = m.reachability;
    v.simulated_reachability = s.reachability();
    v.reachability_interval =
        s.reachability_interval(config.reachability_z);
    v.reachability_within =
        v.reachability_interval.contains(m.reachability);

    v.model_delay_ms = m.expected_delay_ms;
    v.simulated_delay_ms = s.delay_ms.mean();
    const double se = s.delay_ms.standard_error();
    v.delay_z_score =
        se > 0.0 ? std::abs(v.simulated_delay_ms - v.model_delay_ms) / se
                 : 0.0;

    v.model_utilization = m.utilization;
    v.simulated_utilization =
        s.utilization(superframe.uplink_slots, reporting_interval);

    if (!v.reachability_within || v.delay_z_score > config.max_delay_z)
      report.passed = false;
    report.per_path.push_back(v);
  }
  return report;
}

}  // namespace whart::hart
