// Per-node energy estimation.  The paper (Section VI-A, citing
// Heinzelman's microsensor work) uses the utilization U as a proxy for
// energy because radio transmission dominates node power draw.  This
// module refines that: the exact DTMC yields the expected number of
// transmission attempts of every hop, and each attempt charges the
// sender's transmitter and the receiver's receiver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// Radio energy parameters.  Defaults approximate an 802.15.4 radio
/// sending one 127-byte frame in a 10 ms slot (~30 mW for ~4 ms air
/// time) — adjust to the actual hardware.
struct EnergyParameters {
  /// Energy to transmit one message attempt, millijoules.
  double tx_mj_per_attempt = 0.12;
  /// Energy to receive (or idle-listen for) one attempt, millijoules.
  double rx_mj_per_attempt = 0.10;
  /// Usable battery capacity, joules (two AA lithium ~ 18 kJ usable).
  double battery_joules = 18000.0;
};

/// Expected energy use of one node.
struct NodeEnergy {
  net::NodeId node;
  double tx_attempts_per_interval = 0.0;
  double rx_attempts_per_interval = 0.0;
  double mj_per_interval = 0.0;

  /// Battery life in days given the reporting-interval duration.
  [[nodiscard]] double battery_life_days(
      const EnergyParameters& params,
      double interval_milliseconds) const;
};

/// Expected per-node energy for a scheduled network at steady state.
/// Relay nodes pay for both their own reports and the traffic they
/// forward — the paper's reason why bad links "introduce more
/// communication overhead and power consumption".
std::vector<NodeEnergy> estimate_node_energy(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, const EnergyParameters& params = {});

/// The node with the highest energy draw (the first battery to die).
std::size_t hottest_node(const std::vector<NodeEnergy>& energies);

}  // namespace whart::hart
