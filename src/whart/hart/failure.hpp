// Stability and robustness analysis (paper Section VI-C).  Three failure
// classes are modeled:
//   * transient errors — one bad slot; channel hopping recovers the link
//     almost immediately (Fig. 17), negligible impact;
//   * random-duration failures — e.g. temporary loss of line of sight;
//     the link is DOWN for a number of cycles (fixed, or geometrically
//     distributed), Table III;
//   * permanent failures — the link must be removed from the routing
//     graph and affected paths rerouted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/net/path.hpp"
#include "whart/net/routing.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// The paper's Table III model: a link failure lasting `lost_cycles`
/// superframe cycles costs the whole path those cycles — reachability is
/// evaluated over the remaining Is - lost_cycles cycles with the
/// steady-state closed form.  Returns 0 when nothing remains.
double cycle_shift_reachability(std::uint32_t hops, double ps,
                                std::uint32_t reporting_interval,
                                std::uint32_t lost_cycles = 1);

/// Exact refinement: the failed hop's link is forced DOWN during the
/// first `failure_cycles` superframe cycles (in absolute slots) and then
/// recovers transiently from DOWN; other hops stay in steady state.  The
/// exact DTMC lets hops before the failed one keep progressing, so this
/// is an upper bound on the paper's cycle-shift numbers.
double scripted_failure_reachability(const PathModelConfig& config,
                                     const std::vector<link::LinkModel>& hops,
                                     std::size_t failed_hop,
                                     std::uint32_t failure_cycles);

/// Random-duration failure: the failure lasts k cycles with geometric
/// probability (1-q) q^(k-1), truncated at `max_cycles` (remaining mass
/// assigned to max_cycles).  Returns the mixed reachability using the
/// cycle-shift model per duration.
double random_duration_failure_reachability(std::uint32_t hops, double ps,
                                            std::uint32_t reporting_interval,
                                            double continue_probability,
                                            std::uint32_t max_cycles);

/// Impact of a failure of `failed_link` on every path of a network.
struct LinkFailureImpact {
  std::size_t path_index = 0;
  bool affected = false;
  double reachability_nominal = 0.0;      ///< no failure, steady state
  double reachability_cycle_shift = 0.0;  ///< paper's Table III model
  double reachability_exact = 0.0;        ///< scripted-DTMC refinement
};

/// Evaluate a one-cycle failure of `failed_link` for all paths (paths not
/// using the link keep their nominal reachability).
std::vector<LinkFailureImpact> one_cycle_link_failure(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, net::LinkId failed_link);

/// Permanent failure: reroute every affected source around the failed
/// link.  Returns the new path per affected source, or nullopt when no
/// alternative route exists.
std::vector<std::optional<net::Path>> reroute_after_permanent_failure(
    const net::Network& network, const std::vector<net::Path>& paths,
    net::LinkId failed_link);

}  // namespace whart::hart
