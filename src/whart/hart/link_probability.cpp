#include "whart/hart/link_probability.hpp"

#include "whart/common/contracts.hpp"

namespace whart::hart {

SteadyStateLinks::SteadyStateLinks(std::vector<link::LinkModel> links) {
  expects(!links.empty(), "at least one link");
  availability_.reserve(links.size());
  for (const link::LinkModel& l : links)
    availability_.push_back(l.steady_state_availability());
}

SteadyStateLinks::SteadyStateLinks(std::vector<double> availabilities)
    : availability_(std::move(availabilities)) {
  expects(!availability_.empty(), "at least one link");
  for (double a : availability_)
    expects(a >= 0.0 && a <= 1.0, "0 <= availability <= 1");
}

SteadyStateLinks::SteadyStateLinks(std::size_t hops, link::LinkModel model)
    : SteadyStateLinks(std::vector<link::LinkModel>(hops, model)) {}

double SteadyStateLinks::up_probability(std::size_t hop,
                                        std::uint64_t) const {
  expects(hop < availability_.size(), "hop in range");
  return availability_[hop];
}

std::size_t SteadyStateLinks::hop_count() const {
  return availability_.size();
}

TransientLinks::TransientLinks(std::vector<link::LinkModel> links,
                               std::vector<double> initial_up)
    : links_(std::move(links)), initial_up_(std::move(initial_up)) {
  expects(!links_.empty(), "at least one link");
  expects(links_.size() == initial_up_.size(),
          "one initial UP probability per link");
  for (double p : initial_up_)
    expects(p >= 0.0 && p <= 1.0, "0 <= initial up probability <= 1");
}

double TransientLinks::up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot) const {
  expects(hop < links_.size(), "hop in range");
  return links_[hop].up_probability_after(initial_up_[hop], absolute_slot);
}

std::size_t TransientLinks::hop_count() const { return links_.size(); }

ScriptedLinks::ScriptedLinks(std::vector<link::ScriptedLink> links)
    : links_(std::move(links)) {
  expects(!links_.empty(), "at least one link");
}

namespace {

std::vector<link::ScriptedLink> make_scripted(
    std::vector<link::LinkModel> links, std::size_t failed_hop,
    std::vector<link::FailureWindow> windows) {
  expects(failed_hop < links.size(), "failed hop in range");
  std::vector<link::ScriptedLink> scripted;
  scripted.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    scripted.emplace_back(links[i],
                          i == failed_hop
                              ? windows
                              : std::vector<link::FailureWindow>{});
  }
  return scripted;
}

}  // namespace

ScriptedLinks::ScriptedLinks(std::vector<link::LinkModel> links,
                             std::size_t failed_hop,
                             std::vector<link::FailureWindow> windows)
    : ScriptedLinks(make_scripted(std::move(links), failed_hop,
                                  std::move(windows))) {}

double ScriptedLinks::up_probability(std::size_t hop,
                                     std::uint64_t absolute_slot) const {
  expects(hop < links_.size(), "hop in range");
  return links_[hop].up_probability(absolute_slot);
}

std::size_t ScriptedLinks::hop_count() const { return links_.size(); }

}  // namespace whart::hart
