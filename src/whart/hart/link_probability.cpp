#include "whart/hart/link_probability.hpp"

#include "whart/common/contracts.hpp"

namespace whart::hart {

SteadyStateLinks::SteadyStateLinks(std::vector<link::LinkModel> links) {
  expects(!links.empty(), "at least one link");
  availability_.reserve(links.size());
  for (const link::LinkModel& l : links)
    availability_.push_back(l.steady_state_availability());
}

SteadyStateLinks::SteadyStateLinks(std::vector<double> availabilities)
    : availability_(std::move(availabilities)) {
  expects(!availability_.empty(), "at least one link");
  for (double a : availability_)
    expects(a >= 0.0 && a <= 1.0, "0 <= availability <= 1");
}

SteadyStateLinks::SteadyStateLinks(std::size_t hops, link::LinkModel model)
    : SteadyStateLinks(std::vector<link::LinkModel>(hops, model)) {}

double SteadyStateLinks::up_probability(std::size_t hop,
                                        std::uint64_t) const {
  expects(hop < availability_.size(), "hop in range");
  return availability_[hop];
}

std::size_t SteadyStateLinks::hop_count() const {
  return availability_.size();
}

ChannelLinks::ChannelLinks(std::vector<link::ChannelModel> channels)
    : channels_(std::move(channels)) {
  expects(!channels_.empty(), "at least one link");
  marginal_.reserve(channels_.size());
  for (const link::ChannelModel& c : channels_)
    marginal_.push_back(c.marginal_success());
}

ChannelLinks::ChannelLinks(std::size_t hops, link::ChannelModel channel)
    : ChannelLinks(std::vector<link::ChannelModel>(hops, channel)) {}

double ChannelLinks::up_probability(std::size_t hop, std::uint64_t) const {
  expects(hop < marginal_.size(), "hop in range");
  return marginal_[hop];
}

std::size_t ChannelLinks::hop_count() const { return channels_.size(); }

const link::ChannelModel* ChannelLinks::channel_model(std::size_t hop) const {
  expects(hop < channels_.size(), "hop in range");
  return &channels_[hop];
}

bool channel_enlarged(const LinkProbabilityProvider& links,
                      std::size_t hops) {
  for (std::size_t h = 0; h < hops; ++h) {
    const link::ChannelModel* channel = links.channel_model(h);
    if (channel != nullptr && channel->state_count() > 1) return true;
  }
  return false;
}

TransientLinks::TransientLinks(std::vector<link::LinkModel> links,
                               std::vector<double> initial_up)
    : links_(std::move(links)), initial_up_(std::move(initial_up)) {
  expects(!links_.empty(), "at least one link");
  expects(links_.size() == initial_up_.size(),
          "one initial UP probability per link");
  for (double p : initial_up_)
    expects(p >= 0.0 && p <= 1.0, "0 <= initial up probability <= 1");
}

double TransientLinks::up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot) const {
  expects(hop < links_.size(), "hop in range");
  return links_[hop].up_probability_after(initial_up_[hop], absolute_slot);
}

std::size_t TransientLinks::hop_count() const { return links_.size(); }

ScriptedLinks::ScriptedLinks(std::vector<link::ScriptedLink> links)
    : links_(std::move(links)) {
  expects(!links_.empty(), "at least one link");
}

namespace {

std::vector<link::ScriptedLink> make_scripted(
    std::vector<link::LinkModel> links, std::size_t failed_hop,
    std::vector<link::FailureWindow> windows) {
  expects(failed_hop < links.size(), "failed hop in range");
  std::vector<link::ScriptedLink> scripted;
  scripted.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    scripted.emplace_back(links[i],
                          i == failed_hop
                              ? windows
                              : std::vector<link::FailureWindow>{});
  }
  return scripted;
}

}  // namespace

ScriptedLinks::ScriptedLinks(std::vector<link::LinkModel> links,
                             std::size_t failed_hop,
                             std::vector<link::FailureWindow> windows)
    : ScriptedLinks(make_scripted(std::move(links), failed_hop,
                                  std::move(windows))) {}

double ScriptedLinks::up_probability(std::size_t hop,
                                     std::uint64_t absolute_slot) const {
  expects(hop < links_.size(), "hop in range");
  return links_[hop].up_probability(absolute_slot);
}

std::size_t ScriptedLinks::hop_count() const { return links_.size(); }

}  // namespace whart::hart
