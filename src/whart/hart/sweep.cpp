#include "whart/hart/sweep.hpp"

#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/report/csv.hpp"

namespace whart::hart {

namespace {

PathMeasures measure_with_links(const PathModelConfig& config,
                                const link::LinkModel& model,
                                TransientKernel kernel) {
  const PathModel path_model(config);
  const SteadyStateLinks links(config.hop_count(), model);
  PathAnalysisOptions options;
  options.kernel = kernel;
  return compute_path_measures(path_model, links, options);
}

/// Channel counterpart of measure_with_links: the overlay rescaled so
/// its stationary marginal success equals the point's availability,
/// solved through the channel-enlarged DTMC.  Always a fresh solve —
/// the skeleton/batch refill patterns key the i.i.d. shape.
PathMeasures measure_with_channel(const PathModelConfig& config,
                                  const link::LinkModel& model,
                                  const link::ChannelModel& channel,
                                  TransientKernel kernel) {
  const PathModel path_model(config);
  const ChannelLinks links(
      config.hop_count(),
      channel.with_marginal_success(model.steady_state_availability()));
  PathAnalysisOptions options;
  options.kernel = kernel;
  return compute_path_measures(path_model, links, options);
}

/// Numeric-refill counterpart of measure_with_links: the skeleton holds
/// the symbolic phase, the pooled workspace the warm buffers.  Bitwise
/// equal to measure_with_links on the skeleton's config (shared numeric
/// core — see DESIGN.md §12).
PathMeasures measure_with_skeleton(
    const PathModelSkeleton& skeleton,
    common::WorkspacePool<SolveWorkspace>& workspaces,
    const link::LinkModel& model, TransientKernel kernel) {
  const SteadyStateLinks links(skeleton.config().hop_count(), model);
  PathAnalysisOptions options;
  options.kernel = kernel;
  auto workspace = workspaces.acquire();
  skeleton.analyze_into(links, options, *workspace,
                        workspace->scratch_result);
  return measures_from_transient(skeleton.config(),
                                 workspace->scratch_result);
}

/// Shapes the process-wide skeleton store keeps warm; the 65th distinct
/// shape evicts the least recently used one.  Far above any single
/// sweep's shape count (hop-count sweeps span a few dozen shapes), so
/// eviction only triggers across long multi-shape sessions.
constexpr std::size_t kSkeletonStoreCapacity = 64;

/// LRU-bounded fingerprint-keyed skeleton store.  Calls are serialized
/// by the caller's mutex.
class SkeletonStore {
 public:
  /// The stored skeleton for `key`, building (and storing) one from
  /// `config` on a miss; either way the entry becomes most recent.
  std::shared_ptr<const PathModelSkeleton> acquire(
      const std::string& key, const PathModelConfig& config) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second.position);
      return it->second.skeleton;
    }
    auto skeleton = std::make_shared<const PathModelSkeleton>(config);
    recency_.push_front(key);
    entries_.emplace(key, Entry{skeleton, recency_.begin()});
    if (entries_.size() > kSkeletonStoreCapacity) {
      entries_.erase(recency_.back());
      recency_.pop_back();
      WHART_COUNT("hart.skeleton.store_evictions");
    }
    return skeleton;
  }

 private:
  struct Entry {
    std::shared_ptr<const PathModelSkeleton> skeleton;
    std::list<std::string>::iterator position;
  };
  std::list<std::string> recency_;  ///< most recent first
  std::unordered_map<std::string, Entry> entries_;
};

/// One grid point of any sweep: the swept parameter, the model shape it
/// evaluates, and the link model supplying its availabilities.
struct PointSpec {
  double parameter = 0.0;
  PathModelConfig config;
  link::LinkModel model;
};

/// Shared sweep runner.  Solves every spec (in parallel across points or
/// batches) and returns SweepPoints in spec order.  With skeleton reuse,
/// points with equal skeleton fingerprints share one symbolic build; with
/// batch_lanes > 1 they are additionally chunked — preserving
/// first-appearance order, contiguity not required — into SoA batches of
/// at most batch_lanes lanes solved through analyze_batch_into.
std::vector<SweepPoint> solve_points(const std::vector<PointSpec>& specs,
                                     unsigned threads, TransientKernel kernel,
                                     bool reuse_skeleton,
                                     std::size_t batch_lanes,
                                     const link::ChannelModel* channel) {
  if (channel != nullptr)
    return common::parallel_map(
        specs,
        [&](const PointSpec& spec) {
          return SweepPoint{spec.parameter,
                            measure_with_channel(spec.config, spec.model,
                                                 *channel, kernel)};
        },
        threads);
  if (!reuse_skeleton)
    return common::parallel_map(
        specs,
        [&](const PointSpec& spec) {
          return SweepPoint{spec.parameter,
                            measure_with_links(spec.config, spec.model,
                                               kernel)};
        },
        threads);

  // One symbolic build per distinct shape, shared across its points.
  // Most sweeps vary only the link model, so consecutive points usually
  // share a shape: compare the fingerprint-relevant config fields against
  // the previous point before paying for a fingerprint build and a map
  // probe — the common all-same-shape sweep then fingerprints once.
  const auto same_shape = [](const PathModelConfig& a,
                             const PathModelConfig& b) {
    return a.superframe.uplink_slots == b.superframe.uplink_slots &&
           a.reporting_interval == b.reporting_interval &&
           a.effective_ttl() == b.effective_ttl() &&
           a.hop_slots == b.hop_slots && a.retry_slots == b.retry_slots;
  };
  // The store is process-wide, not per call: sweeps are typically
  // invoked many times on one schedule shape (sensitivity perturbs the
  // links only, rank_link_upgrades re-sweeps per candidate link), so a
  // shape's symbolic phase runs once per process.  Skeletons are
  // immutable after construction and handed out as shared const
  // pointers, so eviction never invalidates a holder — it only forces
  // the next sweep of that shape to rebuild.  The store is LRU-bounded
  // (kSkeletonStoreCapacity shapes) so long multi-shape sweeps cannot
  // grow it without limit; evictions are counted as
  // `hart.skeleton.store_evictions`.
  static std::mutex skeleton_mutex;
  static SkeletonStore skeleton_store;

  // Points carry a dense shape id instead of a fingerprint string —
  // per-point work is then an integer copy, not a string allocation and
  // hash probe.
  std::vector<std::size_t> shape_of(specs.size());
  std::vector<std::shared_ptr<const PathModelSkeleton>> shapes;
  std::unordered_map<std::string, std::size_t> shape_ids;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const PointSpec& spec = specs[i];
    if (i > 0 && same_shape(spec.config, specs[i - 1].config)) {
      shape_of[i] = shape_of[i - 1];
      continue;
    }
    std::string key =
        PathAnalysisCache::skeleton_fingerprint(spec.config, kernel);
    const auto [it, inserted] =
        shape_ids.try_emplace(std::move(key), shapes.size());
    if (inserted) {
      const std::lock_guard lock(skeleton_mutex);
      shapes.push_back(skeleton_store.acquire(it->first, spec.config));
    }
    shape_of[i] = it->second;
  }

  std::vector<SweepPoint> points(specs.size());
  if (batch_lanes <= 1) {
    common::WorkspacePool<SolveWorkspace> workspaces;
    common::parallel_for(
        specs.size(),
        [&](std::size_t i) {
          points[i] =
              SweepPoint{specs[i].parameter,
                         measure_with_skeleton(*shapes[shape_of[i]],
                                               workspaces, specs[i].model,
                                               kernel)};
        },
        threads);
    return points;
  }

  // Chunk same-shape point indices into lane batches of at most
  // batch_lanes.  A batch fills until full, then the next same-shape
  // point opens a fresh one, so non-contiguous same-shape points group
  // together while output order stays the caller's.
  constexpr std::size_t kNoBatch = std::numeric_limits<std::size_t>::max();
  std::vector<std::vector<std::size_t>> batches;
  std::vector<std::size_t> open(shapes.size(), kNoBatch);  // shape -> batch
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::size_t& slot = open[shape_of[i]];
    if (slot == kNoBatch) {
      slot = batches.size();
      batches.emplace_back();
    }
    std::vector<std::size_t>& batch = batches[slot];
    batch.push_back(i);
    if (batch.size() == batch_lanes) slot = kNoBatch;
  }

  common::WorkspacePool<BatchSolveWorkspace> workspaces;
  common::parallel_for(
      batches.size(),
      [&](std::size_t bi) {
        const std::vector<std::size_t>& batch = batches[bi];
        const PathModelSkeleton& skeleton =
            *shapes[shape_of[batch.front()]];
        PathAnalysisOptions options;
        options.kernel = kernel;
        options.batch_lanes = batch_lanes;
        auto workspace = workspaces.acquire();
        // Reserve before taking element pointers — emplace_back must not
        // reallocate under the provider span.
        std::vector<SteadyStateLinks> links;
        links.reserve(batch.size());
        std::vector<const LinkProbabilityProvider*> providers;
        providers.reserve(batch.size());
        for (std::size_t i : batch) {
          links.emplace_back(skeleton.config().hop_count(), specs[i].model);
          providers.push_back(&links.back());
        }
        workspace->scratch_results.resize(batch.size());
        skeleton.analyze_batch_into(providers, options, *workspace,
                                    workspace->scratch_results);
        // Measures come from each point's own config: batch lanes share a
        // shape fingerprint (frame, Is, TTL, firing pattern), not the
        // Fdown/gateway-offset fields the delay measures read.
        for (std::size_t j = 0; j < batch.size(); ++j)
          points[batch[j]] = SweepPoint{
              specs[batch[j]].parameter,
              measures_from_transient(specs[batch[j]].config,
                                      workspace->scratch_results[j])};
      },
      threads);
  return points;
}

}  // namespace

std::vector<double> linspace(double first, double last, std::size_t count) {
  expects(count >= 1, "count >= 1");
  if (count == 1) return {first};
  std::vector<double> values(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    values[i] = first + step * static_cast<double>(i);
  values.back() = last;  // exact endpoint despite rounding
  return values;
}

SweepSeries sweep_availability(const PathModelConfig& config,
                               const std::vector<double>& availabilities,
                               unsigned threads, TransientKernel kernel,
                               bool reuse_skeleton, std::size_t batch_lanes,
                               const link::ChannelModel* channel) {
  expects(!availabilities.empty(), "at least one sample");
  WHART_REQUEST_SPAN("sweep_availability");
  WHART_COUNT_N("hart.sweep.points", availabilities.size());
  SweepSeries series;
  series.parameter_name = "availability";
  std::vector<PointSpec> specs;
  specs.reserve(availabilities.size());
  for (double pi : availabilities)
    specs.push_back({pi, config, link::LinkModel::from_availability(pi)});
  series.points = solve_points(specs, threads, kernel, reuse_skeleton,
                               batch_lanes, channel);
  return series;
}

SweepSeries sweep_ber(const PathModelConfig& config,
                      const std::vector<double>& bit_error_rates,
                      unsigned threads, TransientKernel kernel,
                      bool reuse_skeleton, std::size_t batch_lanes,
                      const link::ChannelModel* channel) {
  expects(!bit_error_rates.empty(), "at least one sample");
  WHART_REQUEST_SPAN("sweep_ber");
  WHART_COUNT_N("hart.sweep.points", bit_error_rates.size());
  SweepSeries series;
  series.parameter_name = "ber";
  std::vector<PointSpec> specs;
  specs.reserve(bit_error_rates.size());
  for (double ber : bit_error_rates)
    specs.push_back({ber, config, link::LinkModel::from_ber(ber)});
  series.points = solve_points(specs, threads, kernel, reuse_skeleton,
                               batch_lanes, channel);
  return series;
}

SweepSeries sweep_hop_count(std::uint32_t max_hops, double availability,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            unsigned threads, TransientKernel kernel,
                            bool reuse_skeleton, std::size_t batch_lanes,
                            const link::ChannelModel* channel) {
  expects(max_hops >= 1, "max_hops >= 1");
  expects(max_hops <= superframe.uplink_slots, "hops fit in the frame");
  WHART_REQUEST_SPAN("sweep_hop_count");
  WHART_COUNT_N("hart.sweep.points", max_hops);
  SweepSeries series;
  series.parameter_name = "hops";
  const link::LinkModel model =
      link::LinkModel::from_availability(availability);
  std::vector<PointSpec> specs;
  specs.reserve(max_hops);
  for (std::uint32_t hops = 1; hops <= max_hops; ++hops) {
    PathModelConfig config;
    for (std::uint32_t h = 0; h < hops; ++h)
      config.hop_slots.push_back(h + 1);
    config.superframe = superframe;
    config.reporting_interval = reporting_interval;
    specs.push_back(
        {static_cast<double>(hops), std::move(config), model});
  }
  series.points = solve_points(specs, threads, kernel, reuse_skeleton,
                               batch_lanes, channel);
  return series;
}

SweepSeries sweep_reporting_interval_series(
    const PathModelConfig& base_config, double availability,
    const std::vector<std::uint32_t>& intervals, unsigned threads,
    TransientKernel kernel, bool reuse_skeleton, std::size_t batch_lanes,
    const link::ChannelModel* channel) {
  expects(!intervals.empty(), "at least one interval");
  WHART_REQUEST_SPAN("sweep_reporting_interval");
  WHART_COUNT_N("hart.sweep.points", intervals.size());
  SweepSeries series;
  series.parameter_name = "reporting_interval";
  const link::LinkModel model =
      link::LinkModel::from_availability(availability);
  std::vector<PointSpec> specs;
  specs.reserve(intervals.size());
  for (std::uint32_t is : intervals) {
    PathModelConfig config = base_config;
    config.reporting_interval = is;
    config.ttl.reset();
    specs.push_back({static_cast<double>(is), std::move(config), model});
  }
  series.points = solve_points(specs, threads, kernel, reuse_skeleton,
                               batch_lanes, channel);
  return series;
}

void write_series_csv(std::ostream& out, const SweepSeries& series) {
  report::CsvWriter csv(out);
  csv.write_row({series.parameter_name, "reachability",
                 "expected_delay_ms", "delay_jitter_ms", "utilization",
                 "utilization_delivered"});
  for (const SweepPoint& point : series.points) {
    csv.write_row({std::to_string(point.parameter),
                   std::to_string(point.measures.reachability),
                   std::to_string(point.measures.expected_delay_ms),
                   std::to_string(point.measures.delay_jitter_ms),
                   std::to_string(point.measures.utilization),
                   std::to_string(point.measures.utilization_delivered)});
  }
}

}  // namespace whart::hart
