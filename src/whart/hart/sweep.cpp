#include "whart/hart/sweep.hpp"

#include <ostream>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/report/csv.hpp"

namespace whart::hart {

namespace {

PathMeasures measure_with_links(const PathModelConfig& config,
                                const link::LinkModel& model,
                                TransientKernel kernel) {
  const PathModel path_model(config);
  const SteadyStateLinks links(config.hop_count(), model);
  PathAnalysisOptions options;
  options.kernel = kernel;
  return compute_path_measures(path_model, links, options);
}

/// Numeric-refill counterpart of measure_with_links: the skeleton holds
/// the symbolic phase, the pooled workspace the warm buffers.  Bitwise
/// equal to measure_with_links on the skeleton's config (shared numeric
/// core — see DESIGN.md §12).
PathMeasures measure_with_skeleton(
    const PathModelSkeleton& skeleton,
    common::WorkspacePool<SolveWorkspace>& workspaces,
    const link::LinkModel& model, TransientKernel kernel) {
  const SteadyStateLinks links(skeleton.config().hop_count(), model);
  PathAnalysisOptions options;
  options.kernel = kernel;
  auto workspace = workspaces.acquire();
  skeleton.analyze_into(links, options, *workspace,
                        workspace->scratch_result);
  return measures_from_transient(skeleton.config(),
                                 workspace->scratch_result);
}

}  // namespace

std::vector<double> linspace(double first, double last, std::size_t count) {
  expects(count >= 2, "count >= 2");
  std::vector<double> values(count);
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    values[i] = first + step * static_cast<double>(i);
  values.back() = last;  // exact endpoint despite rounding
  return values;
}

SweepSeries sweep_availability(const PathModelConfig& config,
                               const std::vector<double>& availabilities,
                               unsigned threads, TransientKernel kernel,
                               bool reuse_skeleton) {
  expects(!availabilities.empty(), "at least one sample");
  WHART_REQUEST_SPAN("sweep_availability");
  WHART_COUNT_N("hart.sweep.points", availabilities.size());
  SweepSeries series;
  series.parameter_name = "availability";
  if (reuse_skeleton) {
    // One symbolic build for the whole grid; each point refills values.
    const PathModelSkeleton skeleton(config);
    common::WorkspacePool<SolveWorkspace> workspaces;
    series.points = common::parallel_map(
        availabilities,
        [&](double pi) {
          return SweepPoint{
              pi, measure_with_skeleton(skeleton, workspaces,
                                        link::LinkModel::from_availability(pi),
                                        kernel)};
        },
        threads);
    return series;
  }
  series.points = common::parallel_map(
      availabilities,
      [&](double pi) {
        return SweepPoint{
            pi, measure_with_links(
                    config, link::LinkModel::from_availability(pi), kernel)};
      },
      threads);
  return series;
}

SweepSeries sweep_ber(const PathModelConfig& config,
                      const std::vector<double>& bit_error_rates,
                      unsigned threads, TransientKernel kernel,
                      bool reuse_skeleton) {
  expects(!bit_error_rates.empty(), "at least one sample");
  WHART_REQUEST_SPAN("sweep_ber");
  WHART_COUNT_N("hart.sweep.points", bit_error_rates.size());
  SweepSeries series;
  series.parameter_name = "ber";
  if (reuse_skeleton) {
    const PathModelSkeleton skeleton(config);
    common::WorkspacePool<SolveWorkspace> workspaces;
    series.points = common::parallel_map(
        bit_error_rates,
        [&](double ber) {
          return SweepPoint{
              ber, measure_with_skeleton(skeleton, workspaces,
                                         link::LinkModel::from_ber(ber),
                                         kernel)};
        },
        threads);
    return series;
  }
  series.points = common::parallel_map(
      bit_error_rates,
      [&](double ber) {
        return SweepPoint{
            ber, measure_with_links(config, link::LinkModel::from_ber(ber),
                                    kernel)};
      },
      threads);
  return series;
}

SweepSeries sweep_hop_count(std::uint32_t max_hops, double availability,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            unsigned threads, TransientKernel kernel,
                            bool reuse_skeleton) {
  expects(max_hops >= 1, "max_hops >= 1");
  expects(max_hops <= superframe.uplink_slots, "hops fit in the frame");
  WHART_REQUEST_SPAN("sweep_hop_count");
  WHART_COUNT_N("hart.sweep.points", max_hops);
  SweepSeries series;
  series.parameter_name = "hops";
  std::vector<std::uint32_t> hop_counts;
  hop_counts.reserve(max_hops);
  for (std::uint32_t hops = 1; hops <= max_hops; ++hops)
    hop_counts.push_back(hops);
  common::WorkspacePool<SolveWorkspace> workspaces;
  series.points = common::parallel_map(
      hop_counts,
      [&](std::uint32_t hops) {
        PathModelConfig config;
        for (std::uint32_t h = 0; h < hops; ++h)
          config.hop_slots.push_back(h + 1);
        config.superframe = superframe;
        config.reporting_interval = reporting_interval;
        const link::LinkModel model =
            link::LinkModel::from_availability(availability);
        if (!reuse_skeleton)
          return SweepPoint{static_cast<double>(hops),
                            measure_with_links(config, model, kernel)};
        // Each hop count is a distinct shape: per-point symbolic build,
        // but the workspace pool still spares per-point solve buffers.
        const PathModelSkeleton skeleton(config);
        return SweepPoint{
            static_cast<double>(hops),
            measure_with_skeleton(skeleton, workspaces, model, kernel)};
      },
      threads);
  return series;
}

SweepSeries sweep_reporting_interval_series(
    const PathModelConfig& base_config, double availability,
    const std::vector<std::uint32_t>& intervals, unsigned threads,
    TransientKernel kernel, bool reuse_skeleton) {
  expects(!intervals.empty(), "at least one interval");
  WHART_REQUEST_SPAN("sweep_reporting_interval");
  WHART_COUNT_N("hart.sweep.points", intervals.size());
  SweepSeries series;
  series.parameter_name = "reporting_interval";
  common::WorkspacePool<SolveWorkspace> workspaces;
  series.points = common::parallel_map(
      intervals,
      [&](std::uint32_t is) {
        PathModelConfig config = base_config;
        config.reporting_interval = is;
        config.ttl.reset();
        const link::LinkModel model =
            link::LinkModel::from_availability(availability);
        if (!reuse_skeleton)
          return SweepPoint{static_cast<double>(is),
                            measure_with_links(config, model, kernel)};
        const PathModelSkeleton skeleton(config);
        return SweepPoint{
            static_cast<double>(is),
            measure_with_skeleton(skeleton, workspaces, model, kernel)};
      },
      threads);
  return series;
}

void write_series_csv(std::ostream& out, const SweepSeries& series) {
  report::CsvWriter csv(out);
  csv.write_row({series.parameter_name, "reachability",
                 "expected_delay_ms", "delay_jitter_ms", "utilization",
                 "utilization_delivered"});
  for (const SweepPoint& point : series.points) {
    csv.write_row({std::to_string(point.parameter),
                   std::to_string(point.measures.reachability),
                   std::to_string(point.measures.expected_delay_ms),
                   std::to_string(point.measures.delay_jitter_ms),
                   std::to_string(point.measures.utilization),
                   std::to_string(point.measures.utilization_delivered)});
  }
}

}  // namespace whart::hart
