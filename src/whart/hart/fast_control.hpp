// Fast control (paper Section VI-D): shorter reporting intervals speed up
// the control loop and deliver fresher data, but each individual message
// gets fewer retry cycles and therefore a lower reachability.  These
// helpers quantify the trade-off.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

/// Measures of one path at one reporting interval.
struct ReportingIntervalPoint {
  std::uint32_t reporting_interval = 0;
  PathMeasures measures;
  /// Messages delivered per superframe cycle: R / Is — the control loop's
  /// effective update rate.
  double delivered_per_cycle = 0.0;
};

/// Sweep the reporting interval of a path (same hop slots and superframe,
/// steady-state homogeneous links with per-attempt success `ps`).
std::vector<ReportingIntervalPoint> sweep_reporting_interval(
    PathModelConfig base_config, double ps,
    const std::vector<std::uint32_t>& reporting_intervals);

/// One block of the paper's Fig. 18: a message born in cycle `born_cycle`
/// (0-based, within an observation window) under reporting interval Is
/// reaches the gateway with probability `reachability`.
struct MessageBlock {
  std::uint32_t born_cycle = 0;
  std::uint32_t reporting_interval = 0;
  double reachability = 0.0;
};

/// All message blocks of a one-hop path with per-attempt success `ps`
/// within a window of `window_cycles` cycles (the window must be a
/// multiple of Is): one message every Is cycles, each with reachability
/// 1 - (1-ps)^Is.
std::vector<MessageBlock> one_hop_message_blocks(double ps,
                                                 std::uint32_t window_cycles,
                                                 std::uint32_t Is);

/// The smallest reporting interval whose reachability meets
/// `target_reachability` for an n-hop steady-state path (paper Section
/// VI-D: "select an appropriate Is according to real application
/// requirements").  Returns nullopt when even `max_interval` falls
/// short.
std::optional<std::uint32_t> minimum_reporting_interval(
    std::uint32_t hops, double ps, double target_reachability,
    std::uint32_t max_interval = 32);

}  // namespace whart::hart
