// Delay-balancing schedule synthesis — the optimization the paper's
// eta_b gestures at (Section VI-B), done properly.
//
// With each path's chain laid out contiguously, path p's expected delay
// is 10 ms * (end slot of its chain) + cycle_ms * e_p, where e_p is the
// expected number of *extra* cycles (retries) given delivery — a
// quantity that depends only on the path's hop availabilities.  For the
// worst-case expected delay, an exchange argument shows the optimal
// order places chains in decreasing penalty cycle_slots * e_p; hop count
// breaks ties (longer chains earlier).  For homogeneous links this
// degenerates to the paper's "long paths first" eta_b.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/hart/network_analysis.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// Expected extra cycles (retries) of each path given delivery, from the
/// analytic steady-state model; the building block of the penalty order.
/// Paths are evaluated concurrently (`threads` as in
/// common::parallel_for) with results in path order.
std::vector<double> expected_extra_cycles(
    const net::Network& network, const std::vector<net::Path>& paths,
    std::uint32_t reporting_interval, unsigned threads = 0);

/// Build the schedule that minimizes the worst-case expected path delay
/// among contiguous chain layouts.
net::Schedule build_min_worst_delay_schedule(
    const net::Network& network, const std::vector<net::Path>& paths,
    net::SuperframeConfig superframe, std::uint32_t reporting_interval);

/// Exact worst-case expected path delay of a schedule (ms), from the
/// per-path DTMC solves — the quantity build_min_worst_delay_schedule
/// minimizes, scored exactly so candidate layouts can be compared.
/// AnalysisOptions selects threads, caching, the transient kernel and
/// skeleton reuse; scoring many candidate layouts benefits directly
/// from the symbolic/numeric split (one skeleton per chain shape,
/// numeric refills per candidate — see DESIGN.md §12).
double worst_expected_delay(const net::Network& network,
                            const std::vector<net::Path>& paths,
                            const net::Schedule& schedule,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            const AnalysisOptions& options = {});

class WhatIfEngine;

/// What-if variant (DESIGN.md §15): the worst-case expected path delay
/// after `link`'s availability moves to `availability`, served from the
/// incremental engine — only paths scheduled over the link re-solve;
/// every other path's cached delay is reused.
double worst_expected_delay(WhatIfEngine& engine, net::LinkId link,
                            double availability);

}  // namespace whart::hart
