// Closed-form analytic path model for the steady-state regime.
//
// When every link is in steady state (paper Eq. 4) each scheduled attempt
// on hop h succeeds i.i.d. with ps_h = pi_h(up), and when the hop slots are
// ordered along the chain within the frame, a message that is delivered in
// cycle m has accumulated exactly m-1 failed attempts, distributed over the
// hops in any order.  For homogeneous links this yields the negative
// binomial form
//
//   g(m) = C(m-1 + n-1, m-1) ps^n (1-ps)^(m-1),
//
// and for inhomogeneous links a per-hop dynamic program over the failure
// counts.  These closed forms reproduce every steady-state number in the
// paper and serve as an independent baseline against the exact DTMC.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

/// Closed-form cycle probabilities for a homogeneous path: `hops` links,
/// per-attempt success `ps`, over `cycles` cycles.
std::vector<double> analytic_cycle_probabilities(std::uint32_t hops,
                                                 double ps,
                                                 std::uint32_t cycles);

/// Closed-form cycle probabilities for inhomogeneous per-hop success
/// probabilities (dynamic program over hop positions and elapsed cycles).
std::vector<double> analytic_cycle_probabilities(
    const std::vector<double>& per_hop_ps, std::uint32_t cycles);

/// Full measures via the closed form.  Requires steady-state semantics and
/// hop slots in increasing order within the frame (throws otherwise —
/// out-of-order schedules need the exact DTMC).
PathMeasures analytic_path_measures(const PathModelConfig& config,
                                    const std::vector<double>& per_hop_ps);

/// Homogeneous shorthand.
PathMeasures analytic_path_measures(const PathModelConfig& config,
                                    double ps);

}  // namespace whart::hart
