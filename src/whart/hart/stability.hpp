// Control-loop stability assessment.  The paper requires R "very close
// to 1" and models the time to the first message loss as geometric
// (E[N] = 1/(1-R)); networked-control results (its refs [3], [4]) bound
// stability by the number of *consecutive* lost samples the plant
// tolerates.  This module turns a reachability figure into such
// verdicts.
#pragma once

#include <cstdint>

namespace whart::hart {

/// What the control engineer tolerates.
struct StabilityRequirement {
  /// The plant stays stable as long as fewer than this many consecutive
  /// samples are lost.
  std::uint32_t max_consecutive_losses = 2;

  /// Required lower bound on the per-interval delivery probability.
  double min_reachability = 0.99;
};

/// Assessment of one path/loop against a requirement.
struct StabilityAssessment {
  double reachability = 0.0;

  /// P(a given reporting interval starts a run of k losses) = (1-R)^k.
  double violation_probability = 0.0;

  /// Expected number of reporting intervals until the first run of k
  /// consecutive losses (classic waiting time for a run:
  /// E = (1 - q^k) / ((1 - q) q^k) with q = 1 - R); infinity when R = 1.
  double expected_intervals_to_violation = 0.0;

  /// Expected intervals to the first single loss: 1 / (1 - R).
  double expected_intervals_to_first_loss = 0.0;

  bool meets_reachability = false;
  bool meets_run_requirement = false;

  [[nodiscard]] bool stable() const noexcept {
    return meets_reachability && meets_run_requirement;
  }
};

/// Assess a delivery probability against a requirement.  The run
/// requirement is considered met when the expected time to a violating
/// loss run exceeds `min_intervals_between_violations`.
StabilityAssessment assess_stability(
    double reachability, const StabilityRequirement& requirement,
    double min_intervals_between_violations = 1e4);

}  // namespace whart::hart
