// Per-slot link success probabilities for the hierarchical path model
// (paper Section IV).  The path DTMC asks, for each hop and each absolute
// 10 ms slot, the probability that the hop's link is UP; different
// providers implement the paper's three regimes: links in steady state
// (Eq. 4), links evolving transiently from a known initial state (Eq. 3),
// and links with scripted failures (Section VI-C).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "whart/link/channel_model.hpp"
#include "whart/link/failure_script.hpp"
#include "whart/link/link_model.hpp"

namespace whart::hart {

/// Interface: UP probability of hop `hop` (0-based) at `absolute_slot`
/// (0-based, counting both uplink and downlink slots — link states evolve
/// in every slot even though uplink messages sleep during downlink).
class LinkProbabilityProvider {
 public:
  virtual ~LinkProbabilityProvider() = default;

  [[nodiscard]] virtual double up_probability(
      std::size_t hop, std::uint64_t absolute_slot) const = 0;

  /// Number of hops this provider serves.
  [[nodiscard]] virtual std::size_t hop_count() const = 0;

  /// True when up_probability is independent of the absolute slot, so
  /// every superframe cycle sees identical per-slot transition matrices
  /// — the precondition of the superframe-product transient kernel
  /// (markov::SuperframeKernel).  Providers whose probabilities evolve
  /// over time (transient links, scripted failures) must keep the
  /// default false; PathModel then falls back to the per-slot solve.
  [[nodiscard]] virtual bool cycle_stationary() const { return false; }

  /// The finite-state Markov channel behind hop `hop`, or nullptr when
  /// the hop is per-slot independent.  When any hop returns a channel
  /// with more than one state, PathModel enlarges its DTMC so the hop
  /// carries the channel state (hart/path_model_channel.cpp) and
  /// up_probability is interpreted as the channel's stationary marginal
  /// success (used by the i.i.d. code paths a degenerate channel must
  /// reproduce).
  [[nodiscard]] virtual const link::ChannelModel* channel_model(
      std::size_t /*hop*/) const {
    return nullptr;
  }
};

/// Correlated burst-loss links: each hop runs an independent k-state
/// ChannelModel started from its stationary distribution, so the
/// marginal per-attempt success is constant (cycle-stationary) while
/// consecutive attempts on the same hop are correlated through the
/// chain.  With every channel at k = 1 this degenerates to
/// SteadyStateLinks semantics exactly.
class ChannelLinks final : public LinkProbabilityProvider {
 public:
  explicit ChannelLinks(std::vector<link::ChannelModel> channels);

  /// Homogeneous shorthand: `hops` copies of the same channel.
  ChannelLinks(std::size_t hops, link::ChannelModel channel);

  [[nodiscard]] double up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot)
      const override;
  [[nodiscard]] std::size_t hop_count() const override;

  /// Stationary-start channels have slot-independent marginals.
  [[nodiscard]] bool cycle_stationary() const override { return true; }

  [[nodiscard]] const link::ChannelModel* channel_model(
      std::size_t hop) const override;

 private:
  std::vector<link::ChannelModel> channels_;
  std::vector<double> marginal_;  ///< cached marginal_success per hop
};

/// Paper Eq. 4: all links have reached steady state — each attempt on hop
/// h succeeds with the constant pi_h(up).
class SteadyStateLinks final : public LinkProbabilityProvider {
 public:
  explicit SteadyStateLinks(std::vector<link::LinkModel> links);

  /// Directly from per-hop stationary UP probabilities (each in [0, 1]).
  explicit SteadyStateLinks(std::vector<double> availabilities);

  /// Homogeneous shorthand: `hops` copies of the same model.
  SteadyStateLinks(std::size_t hops, link::LinkModel model);

  [[nodiscard]] double up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot)
      const override;
  [[nodiscard]] std::size_t hop_count() const override;

  /// Steady-state probabilities are slot-independent by construction.
  [[nodiscard]] bool cycle_stationary() const override { return true; }

 private:
  std::vector<double> availability_;
};

/// Paper Eq. 3: links evolve from known initial UP probabilities at slot 0;
/// the success probability of an attempt at slot t is the transient
/// p_up(t) of that hop's link DTMC.
class TransientLinks final : public LinkProbabilityProvider {
 public:
  /// One initial UP probability per link.
  TransientLinks(std::vector<link::LinkModel> links,
                 std::vector<double> initial_up);

  [[nodiscard]] double up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot)
      const override;
  [[nodiscard]] std::size_t hop_count() const override;

 private:
  std::vector<link::LinkModel> links_;
  std::vector<double> initial_up_;
};

/// Links with scripted failure windows (Section VI-C): forced DOWN inside
/// each window, steady state before the first window, transient recovery
/// from DOWN afterwards.
/// True when any of the first `hops` hops of `links` carries a
/// multi-state channel — the condition under which PathModel enlarges
/// its DTMC state space (and skeleton/batch refills fall back to fresh
/// solves, since the enlarged shape is not the one their patterns were
/// captured for).
[[nodiscard]] bool channel_enlarged(const LinkProbabilityProvider& links,
                                    std::size_t hops);

class ScriptedLinks final : public LinkProbabilityProvider {
 public:
  explicit ScriptedLinks(std::vector<link::ScriptedLink> links);

  /// Convenience: steady-state links except `failed_hop`, which carries
  /// the given failure windows.
  ScriptedLinks(std::vector<link::LinkModel> links, std::size_t failed_hop,
                std::vector<link::FailureWindow> windows);

  [[nodiscard]] double up_probability(std::size_t hop,
                                      std::uint64_t absolute_slot)
      const override;
  [[nodiscard]] std::size_t hop_count() const override;

 private:
  std::vector<link::ScriptedLink> links_;
};

}  // namespace whart::hart
