// Incremental what-if evaluation (DESIGN.md §15): the interactive
// re-planning loop of the paper's evaluation — "what happens to
// reachability and delay if this one link degrades or is upgraded?" —
// answered without re-solving the network.  The engine caches, per path,
// the symbolic skeleton, a warm workspace, the baseline PathMeasures and
// an IncrementalProduct holding the cycle product's partial values; a
// what-if on one link re-solves only the paths whose schedules contain
// that link (through the skeleton's firing-slot provenance map and
// targeted Gustavson row replay) and returns every other path's cached
// measures untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/markov/incremental_product.hpp"
#include "whart/net/ids.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"

namespace whart::hart {

/// Construction knobs of WhatIfEngine.
struct WhatIfOptions {
  /// Transient kernel of the per-path solves.  The incremental product
  /// replay exists only under kSuperframeProduct; with kPerSlot every
  /// affected path re-solves through the (still skeleton-cached) per-slot
  /// core.
  TransientKernel kernel = TransientKernel::kSuperframeProduct;

  /// Worker threads of the baseline fan-out (0 = WHART_THREADS).
  /// What-if queries themselves run serially — they touch few paths.
  unsigned threads = 0;

  /// Verification-harness fault injection, forwarded to
  /// PathAnalysisOptions::inject_stale_product_row on the incremental
  /// solves.  Always 0 in production.
  double inject_stale_product_row = 0.0;
};

/// Full result of one what-if: per-path measures in path order.
/// Unaffected paths carry the engine's cached baseline measures (copied,
/// never re-solved); pass `per_path` to aggregate_measures for the
/// network view.
struct WhatIfResult {
  std::vector<PathMeasures> per_path;
  std::size_t paths_resolved = 0;  ///< paths containing the link
  std::size_t paths_reused = 0;    ///< untouched cached paths
};

/// Reduced result of one what-if, for sweeps that only rank candidates
/// (no per-path copies).
struct WhatIfDelta {
  /// Sum over affected paths of (new reachability - baseline).
  double reachability_delta = 0.0;

  /// Network-wide worst expected path delay after the change, ms.
  double worst_expected_delay_ms = 0.0;

  std::size_t paths_resolved = 0;
};

/// Cached incremental re-solver over one (network, paths, schedule)
/// analysis.  The baseline pass derives each path's hop availabilities
/// exactly as analyze_network does (steady-state link models), so a
/// what-if back to a link's baseline availability reproduces the
/// baseline measures bitwise.  The engine holds const references to the
/// network and paths; both must outlive it.
class WhatIfEngine {
 public:
  WhatIfEngine(const net::Network& network, const std::vector<net::Path>& paths,
               const net::Schedule& schedule, net::SuperframeConfig superframe,
               std::uint32_t reporting_interval, WhatIfOptions options = {});

  /// Baseline per-path measures, in path order.
  [[nodiscard]] const std::vector<PathMeasures>& baseline() const noexcept {
    return baseline_;
  }

  /// Re-evaluate with `link`'s steady-state availability set to
  /// `availability` (in [0, 1]); every other link keeps its baseline.
  /// Only paths whose schedules contain the link are re-solved.
  [[nodiscard]] WhatIfResult what_if(net::LinkId link, double availability);

  /// The reduced form of what_if — same solves, no per-path copies.
  [[nodiscard]] WhatIfDelta what_if_delta(net::LinkId link,
                                          double availability);

  /// All link ids of the network (the all-links sweep domain).
  [[nodiscard]] const std::vector<net::LinkId>& links() const noexcept {
    return links_;
  }

  /// Number of paths whose resolved schedules contain `link`.
  [[nodiscard]] std::size_t paths_using(net::LinkId link) const;

  /// Indices of the paths whose resolved schedules contain `link`,
  /// ascending; empty when no path uses it.
  [[nodiscard]] std::span<const std::size_t> affected_paths(
      net::LinkId link) const;

  /// The link's baseline steady-state availability.
  [[nodiscard]] double baseline_availability(net::LinkId link) const;

 private:
  struct PathState {
    PathModelConfig config;
    std::vector<net::LinkId> hop_links;    ///< resolved link per hop
    std::vector<double> availability;      ///< baseline per-hop
    std::shared_ptr<const PathModelSkeleton> skeleton;
    std::unique_ptr<markov::IncrementalProduct> product;
    SolveWorkspace workspace;
    /// Baseline seeding succeeded, so incremental solves apply; when
    /// false (e.g. a degenerate firing probability at baseline) every
    /// what-if on this path re-solves fresh through analyze_into.
    bool incremental_ok = false;
    /// Hop indices and perturbed availabilities of the current query.
    std::vector<std::size_t> changed_hops;
    std::vector<double> scratch_availability;
  };

  /// Solve path `p` with `link` moved to `availability`, into `out`.
  void resolve_path(std::size_t p, net::LinkId link, double availability,
                    PathMeasures& out);

  /// Restore path `p`'s firing values and product partials to baseline
  /// after an incremental solve (provenance writes + targeted replay —
  /// no transient solve).
  void revert_path(PathState& state);

  const net::Network* network_;
  WhatIfOptions options_;
  std::vector<PathState> states_;
  std::vector<PathMeasures> baseline_;
  std::vector<net::LinkId> links_;
  std::unordered_map<net::LinkId, std::vector<std::size_t>> paths_of_link_;
  /// Fresh-fallback scratch, kept apart from the per-path incremental
  /// workspaces (whose slot values must persist between queries).
  SolveWorkspace fallback_workspace_;
  PathTransientResult scratch_transient_;
  PathMeasures scratch_measures_;
};

}  // namespace whart::hart
