#include "whart/hart/control_loop.hpp"

#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/linalg/convolution.hpp"
#include "whart/phy/frame.hpp"

namespace whart::hart {

ControlLoopMeasures analyze_control_loop(const PathMeasures& uplink,
                                         const PathMeasures& downlink,
                                         double controller_processing_ms) {
  expects(!uplink.cycle_probabilities.empty(), "uplink measures present");
  expects(uplink.cycle_probabilities.size() ==
              downlink.cycle_probabilities.size(),
          "uplink and downlink cover the same reporting interval");
  expects(controller_processing_ms >= 0.0, "processing time >= 0");

  ControlLoopMeasures loop;
  // Combined cycle a + b - 1: 0-based convolution index (a-1) + (b-1).
  loop.loop_cycle_probabilities = linalg::convolve_truncated(
      uplink.cycle_probabilities, downlink.cycle_probabilities,
      uplink.cycle_probabilities.size());
  for (double g : loop.loop_cycle_probabilities)
    loop.loop_reachability += g;
  loop.first_cycle_probability = loop.loop_cycle_probabilities.front();

  // Latency of closed loops: delays are independent, so the expectation
  // is the sum of the conditional expectations.
  loop.expected_latency_ms = uplink.expected_delay_ms +
                             controller_processing_ms +
                             downlink.expected_delay_ms;

  loop.expected_intervals_to_first_open_loop =
      loop.loop_reachability < 1.0
          ? 1.0 / (1.0 - loop.loop_reachability)
          : std::numeric_limits<double>::infinity();
  return loop;
}

ControlLoopMeasures analyze_symmetric_control_loop(
    const PathMeasures& uplink, double controller_processing_ms) {
  return analyze_control_loop(uplink, uplink, controller_processing_ms);
}

ControlLoopMeasures analyze_control_loop_exact(
    const PathModel& uplink, const LinkProbabilityProvider& uplink_links,
    const PathModel& downlink,
    const LinkProbabilityProvider& downlink_links,
    double controller_processing_ms) {
  expects(uplink.config().reporting_interval ==
              downlink.config().reporting_interval,
          "uplink and downlink cover the same reporting interval");
  expects(uplink.config().superframe.uplink_slots ==
                  downlink.config().superframe.downlink_slots &&
              uplink.config().superframe.downlink_slots ==
                  downlink.config().superframe.uplink_slots,
          "downlink superframe is the swapped uplink superframe");
  expects(controller_processing_ms >= 0.0, "processing time >= 0");

  const PathTransientResult up = uplink.analyze(uplink_links);
  const PathTransientResult down = downlink.analyze(downlink_links);

  ControlLoopMeasures loop;
  loop.loop_cycle_probabilities = linalg::convolve_truncated(
      up.cycle_probabilities, down.cycle_probabilities,
      up.cycle_probabilities.size());
  for (double g : loop.loop_cycle_probabilities)
    loop.loop_reachability += g;
  loop.first_cycle_probability = loop.loop_cycle_probabilities.front();

  // Exact wall-clock latency of closed loops.
  const double cycle_slots = uplink.config().superframe.cycle_slots();
  const double base_slots = uplink.config().superframe.uplink_slots +
                            downlink.config().gateway_slot();
  double mean_extra_cycles = 0.0;
  if (loop.loop_reachability > 0.0) {
    for (std::size_t k = 0; k < loop.loop_cycle_probabilities.size(); ++k)
      mean_extra_cycles += static_cast<double>(k) *
                           loop.loop_cycle_probabilities[k] /
                           loop.loop_reachability;
  }
  loop.expected_latency_ms =
      (base_slots + mean_extra_cycles * cycle_slots) *
          phy::kSlotMilliseconds +
      controller_processing_ms;

  loop.expected_intervals_to_first_open_loop =
      loop.loop_reachability < 1.0
          ? 1.0 / (1.0 - loop.loop_reachability)
          : std::numeric_limits<double>::infinity();
  return loop;
}

}  // namespace whart::hart
