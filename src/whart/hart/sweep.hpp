// Parameter sweeps: regenerate the paper's curves (reachability or delay
// vs availability, hop count, reporting interval) as data series ready
// for CSV export — the programmatic counterpart of the bench binaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

/// One sweep sample: the swept parameter value and the full measures.
struct SweepPoint {
  double parameter = 0.0;
  PathMeasures measures;
};

/// A named series of sweep samples.
struct SweepSeries {
  std::string parameter_name;
  std::vector<SweepPoint> points;
};

/// Evenly spaced values in [first, last] (inclusive, `count` >= 2).
std::vector<double> linspace(double first, double last, std::size_t count);

/// Reachability/delay/etc. vs stationary link availability for a path
/// with homogeneous links (the sweep behind Figs. 8-9 and Table I).
/// Every sweep evaluates its grid points concurrently (`threads` as in
/// common::parallel_for: 0 = WHART_THREADS/hardware, 1 = serial) with
/// results in parameter order, bit-identical to the serial loop.  All
/// sweeps run under steady-state links, so `kernel` may select the
/// superframe-product collapse (measures agree to ~1e-12).
SweepSeries sweep_availability(const PathModelConfig& config,
                               const std::vector<double>& availabilities,
                               unsigned threads = 0,
                               TransientKernel kernel =
                                   TransientKernel::kPerSlot);

/// Sweep over the bit error rate (Eq. 1-2 pipeline), logarithmic ladders
/// welcome.
SweepSeries sweep_ber(const PathModelConfig& config,
                      const std::vector<double>& bit_error_rates,
                      unsigned threads = 0,
                      TransientKernel kernel = TransientKernel::kPerSlot);

/// Sweep over the hop count: paths of 1..`max_hops` hops scheduled
/// contiguously from slot 1 (Fig. 10).
SweepSeries sweep_hop_count(std::uint32_t max_hops, double availability,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            unsigned threads = 0,
                            TransientKernel kernel =
                                TransientKernel::kPerSlot);

/// Sweep over the reporting interval (Section VI-D).
SweepSeries sweep_reporting_interval_series(
    const PathModelConfig& base_config, double availability,
    const std::vector<std::uint32_t>& intervals, unsigned threads = 0,
    TransientKernel kernel = TransientKernel::kPerSlot);

/// Write a series as CSV: parameter, reachability, expected_delay_ms,
/// delay_jitter_ms, utilization, utilization_delivered.
void write_series_csv(std::ostream& out, const SweepSeries& series);

}  // namespace whart::hart
