// Parameter sweeps: regenerate the paper's curves (reachability or delay
// vs availability, hop count, reporting interval) as data series ready
// for CSV export — the programmatic counterpart of the bench binaries.
//
// All sweeps run under steady-state (cycle-stationary) links, so the
// superframe-product kernel is the default everywhere; kPerSlot remains
// reachable through the `kernel` parameter (measures agree to ~1e-12).
// Each sweep also defaults to skeleton reuse: the symbolic phase of the
// solve (state enumeration + sparsity patterns, DESIGN.md §12) runs once
// per schedule shape and every grid point performs only a numeric refill
// into a pooled SolveWorkspace — bitwise-identical to per-point fresh
// solves, just without the per-point allocation and re-enumeration.
//
// `batch_lanes > 1` additionally groups same-shape grid points —
// contiguous or not — into SoA batches of at most that many lanes and
// solves each batch through PathModelSkeleton::analyze_batch_into
// (DESIGN.md §13): one walk of the shared sparsity patterns refills all
// lanes at once.  Output order and values match the unbatched path to
// rounding (~1e-15 relative); points the batch core cannot take (shape
// singletons, degenerate availabilities) fall back to scalar refills.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/link/channel_model.hpp"

namespace whart::hart {

/// One sweep sample: the swept parameter value and the full measures.
struct SweepPoint {
  double parameter = 0.0;
  PathMeasures measures;
};

/// A named series of sweep samples.
struct SweepSeries {
  std::string parameter_name;
  std::vector<SweepPoint> points;
};

/// Evenly spaced values in [first, last] (inclusive, `count` >= 1).
/// count == 1 yields the single point `first` — a degenerate grid
/// (start == stop) emits one point, not a duplicated endpoint.
std::vector<double> linspace(double first, double last, std::size_t count);

/// Reachability/delay/etc. vs stationary link availability for a path
/// with homogeneous links (the sweep behind Figs. 8-9 and Table I).
/// Every sweep evaluates its grid points concurrently (`threads` as in
/// common::parallel_for: 0 = WHART_THREADS/hardware, 1 = serial) with
/// results in parameter order, bit-identical to the serial loop.
/// `reuse_skeleton = false` rebuilds the full model at every grid point
/// (the differential oracle's baseline; results are bitwise the same).
///
/// `channel` (every sweep): optional correlated-channel overlay.  When
/// non-null, each grid point rescales the template so its stationary
/// marginal success equals the point's link availability
/// (ChannelModel::with_marginal_success) and solves through the
/// channel-enlarged DTMC.  Channel points always solve fresh — the
/// skeleton/batch refills key the i.i.d. shape, not the enlarged one —
/// so `reuse_skeleton`/`batch_lanes` are inert under a channel.
SweepSeries sweep_availability(const PathModelConfig& config,
                               const std::vector<double>& availabilities,
                               unsigned threads = 0,
                               TransientKernel kernel =
                                   TransientKernel::kSuperframeProduct,
                               bool reuse_skeleton = true,
                               std::size_t batch_lanes = 1,
                               const link::ChannelModel* channel = nullptr);

/// Sweep over the bit error rate (Eq. 1-2 pipeline), logarithmic ladders
/// welcome.
SweepSeries sweep_ber(const PathModelConfig& config,
                      const std::vector<double>& bit_error_rates,
                      unsigned threads = 0,
                      TransientKernel kernel =
                          TransientKernel::kSuperframeProduct,
                      bool reuse_skeleton = true,
                      std::size_t batch_lanes = 1,
                      const link::ChannelModel* channel = nullptr);

/// Sweep over the hop count: paths of 1..`max_hops` hops scheduled
/// contiguously from slot 1 (Fig. 10).  The schedule shape changes at
/// every point, so skeleton reuse here only pools workspaces and
/// batching degenerates to shape singletons (scalar refills).
SweepSeries sweep_hop_count(std::uint32_t max_hops, double availability,
                            net::SuperframeConfig superframe,
                            std::uint32_t reporting_interval,
                            unsigned threads = 0,
                            TransientKernel kernel =
                                TransientKernel::kSuperframeProduct,
                            bool reuse_skeleton = true,
                            std::size_t batch_lanes = 1,
                            const link::ChannelModel* channel = nullptr);

/// Sweep over the reporting interval (Section VI-D).  Distinct intervals
/// have their own shapes (per-shape skeleton build); repeated intervals
/// share a skeleton and, with batch_lanes > 1, a batch.
SweepSeries sweep_reporting_interval_series(
    const PathModelConfig& base_config, double availability,
    const std::vector<std::uint32_t>& intervals, unsigned threads = 0,
    TransientKernel kernel = TransientKernel::kSuperframeProduct,
    bool reuse_skeleton = true, std::size_t batch_lanes = 1,
    const link::ChannelModel* channel = nullptr);

/// Write a series as CSV: parameter, reachability, expected_delay_ms,
/// delay_jitter_ms, utilization, utilization_delivered.
void write_series_csv(std::ostream& out, const SweepSeries& series);

}  // namespace whart::hart
