// The hierarchical path model (paper Section IV).  A message travels an
// n-hop uplink path under a TDMA schedule; the resulting DTMC unrolls over
// the uplink slots of one reporting interval.  States are message-age
// tuples (equivalently: (elapsed uplink slots t, hops completed h)); the
// absorbing states are Is goal states — one per superframe cycle — and one
// Discard state for TTL expiry.
//
// Time convention: t counts elapsed uplink slots since the message was
// born (t = 0 at birth).  The transmission scheduled in uplink slot s
// (1-based, continuing across cycles) fires on the transition t = s-1 ->
// t = s.  Displayed ages are t + 1, matching the paper's state labels
// ("(1,-,-)" initially, "(3,3,-)" after a successful slot-2 hop).
//
// Link states, in contrast, evolve in *every* 10 ms slot, including the
// downlink half of each superframe; the model converts uplink slot s to an
// absolute slot before querying the link probability provider.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "whart/hart/link_probability.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/linalg/sparse.hpp"
#include "whart/markov/batch_refill.hpp"
#include "whart/markov/dtmc.hpp"
#include "whart/markov/incremental_product.hpp"
#include "whart/markov/structure.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"

namespace whart::hart {

/// Which transient solver answers PathModel::analyze.
enum class TransientKernel {
  /// Forward propagation, one step per uplink slot — the paper's Eq. 5
  /// read off directly.  Works under every link regime.
  kPerSlot,

  /// Superframe-product collapse (markov::SuperframeKernel): the
  /// per-slot matrices of one cycle are premultiplied into the cycle
  /// matrix once, and the reporting interval advances cycle-by-cycle
  /// through it (plus a per-slot tail when the TTL cuts a cycle).
  /// Requires a cycle-stationary link provider (steady-state links);
  /// time-varying providers fall back to kPerSlot.  Results agree with
  /// kPerSlot to rounding (~1e-15 relative; the products reassociate
  /// the same arithmetic), not bitwise.
  kSuperframeProduct,
};

/// Per-solve knobs of PathModel::analyze and compute_path_measures.
struct PathAnalysisOptions {
  TransientKernel kernel = TransientKernel::kPerSlot;

  /// Verification-harness fault injection: when nonzero, this delta is
  /// added to one entry of the cycle-product matrix before solving
  /// (kSuperframeProduct only).  It deliberately breaks the collapse so
  /// the differential oracle can prove it catches a bad product build.
  /// Always 0 in production.
  double inject_product_error = 0.0;

  /// Verification-harness fault injection: when nonzero, a
  /// PathModelSkeleton refill biases hop 0's success probability by this
  /// delta — a deliberately stale numeric phase, so the differential
  /// oracle can prove its refill arm catches skeleton/value drift.
  /// Ignored by fresh PathModel::analyze builds.  Always 0 in production.
  double inject_stale_skeleton = 0.0;

  /// Evaluation points refilled together by the SoA batch core
  /// (DESIGN.md §13): sweeps and rank_link_upgrades chunk same-shape
  /// grid points into batches of at most this many lanes and solve them
  /// through PathModelSkeleton::analyze_batch_into.  1 = scalar refills.
  std::size_t batch_lanes = 1;

  /// Verification-harness fault injection: swap the first two value
  /// lanes of the batched cycle product after the SoA refill — the
  /// signature of a lane-indexing bug in the Gustavson replay (cross-
  /// lane contamination), which the differential oracle's batch arm
  /// must catch.  Always false in production.
  bool inject_lane_swap = false;

  /// Verification-harness fault injection: when nonzero, the incremental
  /// solve path (PathModelSkeleton::analyze_incremental_into) adds this
  /// delta to every entry of row 0 of the propagated cycle product — the
  /// signature of a stale product row that the targeted re-accumulation
  /// failed to replay, which the differential oracle's incremental arm
  /// must catch.  Ignored by every other solve path.  Always 0 in
  /// production.
  double inject_stale_product_row = 0.0;

  /// Verification-harness fault injection: in the channel-enlarged
  /// solver (path_model_channel.cpp), redistribute the failure mass of
  /// every firing row by the channel's *stationary* distribution instead
  /// of the conditioned transition row — i.e. forget that a failed
  /// attempt is evidence of a bad channel state.  The classic bug a
  /// correlated-channel solver can have; the oracle's channel arm must
  /// catch it.  Always false in production.
  bool inject_channel_state_leak = false;
};

/// Static description of one path's model.
struct PathModelConfig {
  /// Dedicated uplink slot of each hop (1-based within the frame), in hop
  /// order.  Slots need not be increasing — out-of-order hops simply wait
  /// for the next cycle.
  std::vector<net::SlotNumber> hop_slots;

  /// Optional dedicated *retry* slots (a second transmission opportunity
  /// per hop per frame — common in real WirelessHART schedules, not
  /// modeled in the paper).  Either empty, or one entry per hop where 0
  /// means "no retry slot for this hop".  All non-zero slots must be
  /// distinct from each other and from hop_slots.
  std::vector<net::SlotNumber> retry_slots;

  /// Superframe layout (Fup = schedule length, Fdown).
  net::SuperframeConfig superframe;

  /// Reporting interval Is: the model spans Is superframe cycles.
  std::uint32_t reporting_interval = 1;

  /// Message time-to-live in uplink slots; defaults to Is * Fup (discard
  /// exactly at the end of the reporting interval).
  std::optional<std::uint32_t> ttl;

  /// Extract the config for path `path_index` of a network schedule.
  static PathModelConfig from_schedule(const net::Schedule& schedule,
                                       std::size_t path_index,
                                       net::SuperframeConfig superframe,
                                       std::uint32_t reporting_interval);

  /// Number of hops.
  [[nodiscard]] std::size_t hop_count() const noexcept {
    return hop_slots.size();
  }

  /// Horizon T = Is * Fup (uplink slots in one reporting interval).
  [[nodiscard]] std::uint32_t horizon() const noexcept {
    return reporting_interval * superframe.uplink_slots;
  }

  /// Effective TTL: min(ttl, horizon).
  [[nodiscard]] std::uint32_t effective_ttl() const noexcept;

  /// Slot of the final (gateway) transmission — the paper's a0.
  [[nodiscard]] net::SlotNumber gateway_slot() const noexcept {
    return hop_slots.back();
  }

  /// Two configs compare equal exactly when they produce the same model
  /// shape — the invalidation rule of skeleton/workspace reuse.
  friend bool operator==(const PathModelConfig&,
                         const PathModelConfig&) = default;
};

/// Numeric provenance of one path solve — the observability block
/// attached to PathMeasures (and aggregated into NetworkMeasures) so a
/// run can report where its DTMC work went.  Structural fields are
/// deterministic; `solve_ns` is wall-clock (0 when metrics are off or
/// the result came from the cache) and `from_cache` is set by
/// PathAnalysisCache when an entry is served without solving.
struct SolverDiagnostics {
  /// States of the unrolled chain (transient + Is goals + Discard).
  std::size_t dtmc_states = 0;
  std::size_t transient_states = 0;
  std::size_t absorbing_states = 0;

  /// Uplink slots propagated by the forward pass (the horizon).
  std::uint64_t forward_steps = 0;

  /// |1 - (goal mass + discard mass)| after absorption — the numeric
  /// health of the solve (exact arithmetic would give 0).
  double mass_residual = 0.0;

  /// Wall-clock of the forward/backward passes, ns.
  std::uint64_t solve_ns = 0;

  /// True when the measures were reconstructed from a cache hit.
  bool from_cache = false;

  /// Solver that actually produced this result.  kSuperframeProduct only
  /// when the collapse ran; a cycle-stationarity fallback reports
  /// kPerSlot.  For kSuperframeProduct the state-count fields above
  /// describe the compact message chain (hops + Goal + Discard) the
  /// collapse operates on, not the unrolled chain.
  TransientKernel kernel = TransientKernel::kPerSlot;
};

/// Result of transient analysis of a path model.
struct PathTransientResult {
  /// g(i): probability of absorption in goal state i (cycle i, 1-based),
  /// evaluated at the end of the reporting interval.  Size Is.
  std::vector<double> cycle_probabilities;

  /// Probability of the Discard state at the end of the interval.
  double discard_probability = 0.0;

  /// goal_trajectory[k][i]: transient probability of goal state i after
  /// k * trajectory_stride uplink slots — the data behind the paper's
  /// Fig. 6.  The per-slot kernel records every slot (stride 1, entries
  /// t = 0..horizon); the superframe-product kernel records cycle
  /// boundaries only (stride Fup, entries t = 0, Fup, ..., Is * Fup) —
  /// recording every slot would forfeit the collapse.
  std::vector<std::vector<double>> goal_trajectory;

  /// Uplink slots between consecutive goal_trajectory entries.
  std::uint32_t trajectory_stride = 1;

  /// Expected number of transmission attempts during the interval (the
  /// exact basis of the utilization measure).
  double expected_transmissions = 0.0;

  /// Expected attempts per hop (sums to expected_transmissions); feeds
  /// the per-node energy model.
  std::vector<double> expected_transmissions_per_hop;

  /// Expected attempts made by messages that are eventually delivered
  /// (computed exactly via a backward delivery-probability pass) — the
  /// accounting behind the paper's Table II.  Always <=
  /// expected_transmissions.
  double expected_transmissions_delivered = 0.0;

  /// Numeric provenance of this solve (sizes, residual, wall-clock).
  SolverDiagnostics diagnostics;
};

/// Reusable numeric-phase scratch of the skeleton solve path (DESIGN.md
/// §12).  Every buffer grows to its high-water mark on the first solve
/// of a given shape and is only rewritten afterwards, so a warm
/// workspace makes PathModelSkeleton::analyze_into allocation-free.
/// One workspace per thread; pool with common::WorkspacePool.
struct SolveWorkspace {
  // Numeric-phase matrices, primed from the skeleton's patterns: the
  // per-slot matrices and the cycle product whose `values` arrays are
  // refilled in place before each solve.
  std::vector<linalg::CsrMatrix> slots;
  linalg::CsrMatrix product;
  markov::ChainRefillArena chain_arena;
  bool primed = false;
  PathModelConfig primed_config;  ///< shape the structures were built for

  // Per-slot kernel scratch.
  std::vector<double> beta;  ///< beta[t][h] flattened to ttl x hops
  std::vector<double> mass;

  // Superframe kernel scratch.
  struct Firing {
    std::uint32_t slot = 0;  ///< 1-based uplink position within the frame
    std::size_t hop = 0;
    double ps = 0.0;
  };
  std::vector<Firing> firings;
  std::vector<double> prefix_columns;  ///< firings x dim, flattened
  linalg::Matrix prefix;
  linalg::Matrix prefix_next;
  linalg::Matrix suffix;
  linalg::Matrix suffix_next;
  linalg::Matrix attempts;
  linalg::Matrix delivered_kernel;
  linalg::Vector p;
  linalg::Vector p_next;
  linalg::Vector b;
  linalg::Vector b_next;
  linalg::Vector u;
  linalg::Vector u_next;

  /// Reusable transient output for callers that immediately reduce it to
  /// measures (sweeps, the cache) and do not keep the full result.
  PathTransientResult scratch_result;
};

/// Reusable SoA scratch of PathModelSkeleton::analyze_batch_into
/// (DESIGN.md §13).  Every numeric structure of the superframe solve is
/// widened by a lane dimension in entry-major layout — entry k of a
/// buffer occupies lane array [k * lanes, (k + 1) * lanes) — so the
/// batched core streams the shared patterns once while the arithmetic
/// runs lane-parallel.  Buffers reach their high-water mark on the first
/// solve of a (shape, lane count) and warm batched solves allocate
/// nothing.  One workspace per thread; pool with common::WorkspacePool.
struct BatchSolveWorkspace {
  /// SoA slot values primed from the skeleton's patterns (per slot:
  /// nonzeros x lanes; constant entries hold 1.0, firing entries are
  /// refilled per batch) and the SoA cycle-product values they collapse
  /// into through markov::BatchRefill.
  std::vector<std::vector<double>> slot_values;
  std::vector<double> product_values;
  markov::BatchLaneArena chain_arena;
  bool primed = false;
  std::size_t primed_lanes = 0;
  PathModelConfig primed_config;  ///< shape the structures were built for

  /// Transmission opportunities of one cycle, in slot order, with their
  /// per-lane success probabilities (firings x lanes).
  struct Firing {
    std::uint32_t slot = 0;  ///< 1-based uplink position within the frame
    std::size_t hop = 0;
  };
  std::vector<Firing> firings;
  std::vector<double> ps;

  // Lane-widened superframe solve scratch (dims as in SolveWorkspace,
  // each times lanes).
  std::vector<double> prefix_columns;  ///< firings x dim x lanes
  std::vector<double> prefix;          ///< dim x dim x lanes
  std::vector<double> prefix_next;
  std::vector<double> suffix;
  std::vector<double> suffix_next;
  std::vector<double> attempts;  ///< dim x hops x lanes
  std::vector<double> delivered_kernel;  ///< dim x dim x lanes
  std::vector<double> p;  ///< dim x lanes
  std::vector<double> p_next;
  std::vector<double> b;
  std::vector<double> b_next;
  std::vector<double> u;
  std::vector<double> u_next;
  std::vector<double> lane_scratch;  ///< lanes
  std::vector<double> goal_seen;     ///< lanes

  /// Lane bookkeeping of one analyze_batch_into call: which caller
  /// indices were packed into the SoA solve vs sent to the scalar path.
  std::vector<std::size_t> batched_index;
  std::vector<std::size_t> scalar_index;
  std::vector<PathTransientResult*> result_ptrs;
  /// Per-candidate firing probabilities gathered during the
  /// batchability scan (candidate-major: candidate i's values occupy
  /// [i * firings, (i + 1) * firings)), reused by the refill gather so
  /// each provider is queried once per firing.
  std::vector<double> ps_scan;

  /// Scalar-path scratch of the per-lane fallbacks.
  SolveWorkspace scalar;

  /// Reusable transient outputs for callers that immediately reduce the
  /// batch to measures (sweeps) and do not keep the full results.
  std::vector<PathTransientResult> scratch_results;
};

/// The unrolled path DTMC.
class PathModel {
 public:
  /// Validates the config: at least one hop, slots within the frame, no
  /// two hops sharing a slot, horizon > 0.
  explicit PathModel(PathModelConfig config);

  [[nodiscard]] const PathModelConfig& config() const noexcept {
    return config_;
  }

  /// Exact transient analysis (paper Eq. 5) by forward propagation over
  /// the unrolled chain, with per-slot success probabilities from `links`.
  [[nodiscard]] PathTransientResult analyze(
      const LinkProbabilityProvider& links) const;

  /// Transient analysis with solver selection.  kSuperframeProduct
  /// collapses full cycles through markov::SuperframeKernel when `links`
  /// is cycle-stationary and otherwise falls back to the per-slot solve
  /// (recorded in diagnostics.kernel and an obs counter).
  [[nodiscard]] PathTransientResult analyze(
      const LinkProbabilityProvider& links,
      const PathAnalysisOptions& options) const;

  /// The Fup + Fdown per-slot transition matrices of one superframe
  /// cycle over the compact message chain: states 0..n-1 are "waiting at
  /// hop h", followed by Goal and Discard.  An uplink slot carrying a
  /// transmission moves hop mass forward with that slot's success
  /// probability (frozen from the first cycle); idle uplink slots and
  /// all downlink slots are identities.  Valid input to
  /// markov::SuperframeKernel whenever `links` is cycle-stationary.
  [[nodiscard]] std::vector<linalg::CsrMatrix> slot_matrices(
      const LinkProbabilityProvider& links) const;

  /// The cycle_slots() per-slot transition matrices of one cycle over
  /// the channel-enlarged chain (DESIGN.md §14): states
  /// off[h]..off[h]+k_h-1 are "waiting at hop h in channel state s"
  /// (k_h = hop h's ChannelModel state count, 1 when the hop has none),
  /// followed by Goal and Discard.  Every slot — idle uplink and
  /// downlink included — mixes each hop's channel block through its
  /// transition matrix; a firing slot splits the block row into success
  /// q_s times a fresh stationary draw of the next hop's channel (exact,
  /// because per-link chains are independent and started stationary) and
  /// failure (1 - q_s) times the conditioned transition row.  With
  /// `inject_state_leak` the failure mass is redistributed by the
  /// stationary distribution instead — the channel-state-leak fault the
  /// oracle must catch.
  [[nodiscard]] std::vector<linalg::CsrMatrix> channel_slot_matrices(
      const LinkProbabilityProvider& links, bool inject_state_leak) const;

  /// Materialize the underlying DTMC (the output of the paper's
  /// Algorithm 1) with transition probabilities frozen from `links`.
  /// State names follow the paper: "(3,3,-)", goal states "R7", "R14",
  /// ..., and "Discard".  The unrolled chain is time-homogeneous because
  /// every transient state belongs to exactly one time layer.
  [[nodiscard]] markov::Dtmc to_dtmc(const LinkProbabilityProvider& links) const;

  /// Index of the initial state in the materialized DTMC (always 0).
  [[nodiscard]] markov::StateIndex initial_state() const noexcept { return 0; }

  /// Name of goal state for cycle i (1-based): "R<a0 + (i-1) Fup>".
  [[nodiscard]] std::string goal_state_name(std::uint32_t cycle) const;

  /// Number of states the materialized DTMC will have.
  [[nodiscard]] std::size_t state_count() const noexcept {
    return num_states_;
  }

  /// Which hop (if any) fires in global uplink slot s (1-based).
  [[nodiscard]] std::optional<std::size_t> hop_in_slot(
      std::uint32_t global_slot) const noexcept;

 private:
  friend class PathModelSkeleton;

  /// Channel-enlarged solver (path_model_channel.cpp): dispatched by
  /// analyze() whenever any hop of `links` reports a multi-state
  /// ChannelModel.  Honors the kernel choice — a per-slot stored-
  /// backward solve over the enlarged matrices, or the superframe
  /// collapse through markov::SuperframeKernel — and the product-entry
  /// and channel-state-leak injections.
  [[nodiscard]] PathTransientResult analyze_channel(
      const LinkProbabilityProvider& links,
      const PathAnalysisOptions& options) const;

  [[nodiscard]] PathTransientResult analyze_per_slot(
      const LinkProbabilityProvider& links) const;
  [[nodiscard]] PathTransientResult analyze_superframe(
      const LinkProbabilityProvider& links, double inject) const;

  /// Shared numeric cores.  Both the fresh analyze paths and the
  /// skeleton refill path run these exact functions, so fresh and
  /// refilled solves are bitwise identical by construction — the fresh
  /// path merely builds its inputs (and a throwaway workspace) first.
  void analyze_per_slot_into(const LinkProbabilityProvider& links,
                             SolveWorkspace& workspace,
                             PathTransientResult& result) const;
  void analyze_superframe_into(const LinkProbabilityProvider& links,
                               const std::vector<linalg::CsrMatrix>& slots,
                               const linalg::CsrMatrix& product,
                               SolveWorkspace& workspace,
                               PathTransientResult& result) const;

  /// SoA batch core (DESIGN.md §13): the superframe solve with every
  /// numeric buffer widened by a lane dimension.  The workspace's
  /// firings/ps and product_values must already be filled for
  /// results.size() lanes; per-lane arithmetic order matches
  /// analyze_superframe_into, so each lane agrees with its scalar solve
  /// to rounding (1e-12 in the lane-equivalence battery).
  void analyze_superframe_batch_into(
      const std::vector<markov::CsrPattern>& slot_patterns,
      const markov::CsrPattern& product_pattern, BatchSolveWorkspace& workspace,
      std::span<PathTransientResult* const> results) const;
  /// Lane-count-specialized body of analyze_superframe_batch_into:
  /// kLanes == 0 reads the width from results.size() at runtime; the
  /// fixed-width instantiations (dispatched for common batch sizes) give
  /// every simd helper a compile-time trip count so the lane loops
  /// unroll flat.  Arithmetic is identical in every instantiation.
  template <std::size_t kLanes>
  void analyze_superframe_batch_lanes(
      const std::vector<markov::CsrPattern>& slot_patterns,
      const markov::CsrPattern& product_pattern, BatchSolveWorkspace& workspace,
      std::span<PathTransientResult* const> results) const;

  PathModelConfig config_;
  /// state_index_[t][h] for t = 0..ttl-1: dense index of transient state
  /// (t, h), or SIZE_MAX when unreachable.
  std::vector<std::vector<std::size_t>> state_index_;
  std::size_t num_transient_ = 0;
  std::size_t num_states_ = 0;
};

/// Symbolic phase of the path solve (DESIGN.md §12): Algorithm 1 run
/// once per (schedule, hop count, Is, TTL) shape.  The skeleton owns the
/// state enumeration (its PathModel), the per-slot CSR sparsity patterns
/// with a provenance map from each firing slot's two live nonzeros to
/// their values indices, and the symbolic cycle-product chain.
/// `analyze_into` is the numeric phase: it refills only the `values`
/// arrays from a link provider into a SolveWorkspace and solves through
/// the same numeric cores as PathModel::analyze — no re-enumeration, no
/// allocation once the workspace is warm, results bitwise equal to a
/// fresh build.
class PathModelSkeleton {
 public:
  /// Runs the symbolic phase (validates the config like PathModel).
  explicit PathModelSkeleton(PathModelConfig config);

  [[nodiscard]] const PathModel& model() const noexcept { return model_; }
  [[nodiscard]] const PathModelConfig& config() const noexcept {
    return model_.config();
  }

  /// Numeric phase.  Falls back to a fresh model().analyze — counted as
  /// `hart.skeleton.refill_fallback` — when refilling cannot reproduce a
  /// fresh build: a degenerate firing probability (ps of 0 or 1 changes
  /// the captured sparsity pattern) or a product-entry injection.  A
  /// non-cycle-stationary provider under kSuperframeProduct degrades to
  /// the per-slot core exactly like PathModel::analyze.
  void analyze_into(const LinkProbabilityProvider& links,
                    const PathAnalysisOptions& options,
                    SolveWorkspace& workspace,
                    PathTransientResult& result) const;

  /// Incremental numeric phase (DESIGN.md §15): like analyze_into, but
  /// instead of refilling the whole cycle-product chain it reuses
  /// `product`'s cached partial values and replays only the Gustavson
  /// rows reachable from the firing entries of `changed_hops` — bitwise
  /// equal to a full refill (markov::IncrementalProduct).  Contract:
  /// `workspace` and `product` are dedicated to this skeleton and to
  /// incremental solves; between calls, the slot values of hops *not* in
  /// `changed_hops` must still hold the probabilities of the previous
  /// call (the caller re-solves to revert a perturbation, passing the
  /// same hops).  An unseeded product is seeded by a full replay
  /// (`changed_hops` is then ignored).  Returns false — `result`
  /// untouched, workspace and product unmodified — when the incremental
  /// path cannot reproduce a fresh build: per-slot kernel, non-cycle-
  /// stationary provider, channel enlargement, degenerate firing
  /// probability, or a refill-path injection; the caller then solves
  /// through analyze_into (with a separate workspace).
  bool analyze_incremental_into(const LinkProbabilityProvider& links,
                                const PathAnalysisOptions& options,
                                std::span<const std::size_t> changed_hops,
                                markov::IncrementalProduct& product,
                                SolveWorkspace& workspace,
                                PathTransientResult& result) const;

  /// Batched numeric phase (DESIGN.md §13): refill up to
  /// options.batch_lanes evaluation points through one SoA pass over the
  /// shared patterns and solve them lane-parallel.  `links` and `results`
  /// are parallel arrays (one provider and output per lane).  Lanes the
  /// batch core cannot reproduce exactly — non-cycle-stationary
  /// providers, degenerate firing probabilities, or injection options —
  /// are routed through the scalar analyze_into per lane (counted as
  /// `hart.batch.remainder_points`); a batch only forms when at least
  /// two lanes qualify.  Each batched lane agrees with its scalar solve
  /// to rounding (~1e-15 relative), not bitwise: SIMD backends may fuse
  /// multiply-adds differently from the scalar build.
  void analyze_batch_into(std::span<const LinkProbabilityProvider* const> links,
                          const PathAnalysisOptions& options,
                          BatchSolveWorkspace& workspace,
                          std::span<PathTransientResult> results) const;

  /// Where a firing slot's two mutable values live in its slot matrix.
  struct SlotProvenance {
    std::uint32_t slot = 0;  ///< 1-based uplink slot within the frame
    std::size_t hop = 0;
    std::size_t failure_index = 0;  ///< values index of the (h, h) entry
    std::size_t success_index = 0;  ///< values index of (h, target)
  };

  /// Per-slot sparsity patterns (Fup + Fdown entries) of one cycle.
  [[nodiscard]] const std::vector<markov::CsrPattern>& slot_patterns()
      const noexcept {
    return slot_patterns_;
  }

  /// Symbolic cycle-product chain over the slot patterns.
  [[nodiscard]] const markov::ChainProductSkeleton& chain() const noexcept {
    return chain_;
  }

  /// Firing-slot provenance in slot order (which values indices each
  /// transmission opportunity's failure/success probabilities occupy).
  [[nodiscard]] std::span<const SlotProvenance> provenance() const noexcept {
    return provenance_;
  }

 private:
  /// Materialize workspace slot/product structures from the patterns.
  void prime(SolveWorkspace& workspace) const;

  /// Materialize the SoA slot/product value arrays for `lanes` lanes.
  void prime_batch(BatchSolveWorkspace& workspace, std::size_t lanes) const;

  PathModel model_;
  std::vector<markov::CsrPattern> slot_patterns_;
  markov::ChainProductSkeleton chain_;
  std::vector<SlotProvenance> provenance_;
  /// Compiled SoA replay plan over chain_/slot_patterns_ (DESIGN.md
  /// §13), built once here with the rest of the symbolic phase.  Borrows
  /// the two members above, which also keeps the skeleton non-copyable
  /// by value — it is always shared by pointer.
  std::unique_ptr<const markov::BatchRefill> batch_refill_;
};

}  // namespace whart::hart
