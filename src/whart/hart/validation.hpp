// One-call validation: run the exact DTMC analytics and the Monte-Carlo
// simulator on the same scheduled network and check that every analytic
// figure falls inside the simulator's confidence interval.  This is the
// repository's standing evidence that model and protocol semantics agree
// (bench_validation_sim and the CLI's --simulate both go through here).
#pragma once

#include <cstdint>
#include <vector>

#include "whart/hart/network_analysis.hpp"
#include "whart/sim/simulator.hpp"

namespace whart::hart {

/// Comparison of one path's analytic vs simulated figures.
struct PathValidation {
  std::size_t path_index = 0;
  double model_reachability = 0.0;
  double simulated_reachability = 0.0;
  sim::Interval reachability_interval;  ///< at the requested z
  bool reachability_within = false;

  double model_delay_ms = 0.0;
  double simulated_delay_ms = 0.0;
  /// |model - simulated| in units of the simulator's standard error
  /// (0 when no message was delivered).
  double delay_z_score = 0.0;

  double model_utilization = 0.0;
  double simulated_utilization = 0.0;
};

struct ValidationReport {
  NetworkMeasures model;
  sim::SimulationReport simulation;
  std::vector<PathValidation> per_path;

  /// True when every path's reachability is inside its interval and no
  /// delay deviates by more than `max_delay_z` standard errors.
  bool passed = false;
};

struct ValidationConfig {
  std::uint64_t intervals = 50000;
  std::uint64_t seed = 2024;
  /// z-score of the reachability confidence intervals (3.89 ~ 99.99%,
  /// chosen wide because a report checks many paths at once).
  double reachability_z = 3.89;
  /// Maximum tolerated |delay z-score|.
  double max_delay_z = 5.0;
  /// Monte-Carlo interval shards (see SimulatorConfig::shards); 1 keeps
  /// the historical single-stream sample.
  std::uint32_t shards = 1;
  /// Worker threads for both the analytic fan-out and the simulator
  /// shards (0 = WHART_THREADS/hardware).  Never changes the report.
  unsigned threads = 0;
};

/// Run both engines and compare.
ValidationReport validate_against_simulation(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, const ValidationConfig& config = {});

}  // namespace whart::hart
