#include "whart/hart/path_cache.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "whart/common/contracts.hpp"

namespace whart::hart {

namespace {

/// True when every firing event keeps its cycle under translation toward
/// slot 1: the TTL must be the full horizon (a mid-frame TTL cuts a
/// different number of attempts once the slots move).
bool translation_invariant(const PathModelConfig& config) {
  return config.effective_ttl() == config.horizon();
}

/// Smallest transmission-opportunity slot (hop or retry; retry slot 0
/// means "none" and is ignored).
net::SlotNumber min_opportunity_slot(const PathModelConfig& config) {
  net::SlotNumber min_slot = std::numeric_limits<net::SlotNumber>::max();
  for (net::SlotNumber s : config.hop_slots) min_slot = std::min(min_slot, s);
  for (net::SlotNumber s : config.retry_slots)
    if (s != 0) min_slot = std::min(min_slot, s);
  return min_slot;
}

/// The config translated so its earliest opportunity sits in slot 1
/// (identity when translation is not applicable).
PathModelConfig canonicalize(const PathModelConfig& config) {
  PathModelConfig canonical = config;
  if (!translation_invariant(config)) return canonical;
  const net::SlotNumber shift = min_opportunity_slot(config) - 1;
  if (shift == 0) return canonical;
  for (net::SlotNumber& s : canonical.hop_slots) s -= shift;
  for (net::SlotNumber& s : canonical.retry_slots)
    if (s != 0) s -= shift;
  return canonical;
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
}

void append_double_bits(std::string& out, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((bits >> shift) & 0xFF));
}

}  // namespace

std::string PathAnalysisCache::skeleton_fingerprint(
    const PathModelConfig& config, TransientKernel kernel) {
  std::string key;
  key.push_back(static_cast<char>(kernel));
  key.reserve(16 + 4 * config.hop_slots.size() +
              4 * config.retry_slots.size());
  // The solve depends only on the uplink frame length, the reporting
  // interval, the effective TTL and the firing pattern — Fdown and the
  // gateway slot offset enter the *measures*, which are re-derived from
  // the caller's config on every lookup.
  append_u32(key, config.superframe.uplink_slots);
  append_u32(key, config.reporting_interval);
  append_u32(key, config.effective_ttl());
  append_u32(key, static_cast<std::uint32_t>(config.hop_slots.size()));
  for (net::SlotNumber s : config.hop_slots) append_u32(key, s);
  append_u32(key, static_cast<std::uint32_t>(config.retry_slots.size()));
  for (net::SlotNumber s : config.retry_slots) append_u32(key, s);
  return key;
}

std::string PathAnalysisCache::fingerprint(
    const PathModelConfig& config,
    const std::vector<double>& hop_availability, TransientKernel kernel) {
  const PathModelConfig canonical = canonicalize(config);
  std::string key = skeleton_fingerprint(canonical, kernel);
  key.reserve(key.size() + 8 * canonical.hop_count());
  for (std::size_t h = 0; h < canonical.hop_count(); ++h)
    append_double_bits(key, hop_availability[h]);
  return key;
}

std::shared_ptr<const PathModelSkeleton> PathAnalysisCache::skeleton_for(
    const PathModelConfig& canonical, TransientKernel kernel) {
  const std::string key = skeleton_fingerprint(canonical, kernel);
  {
    const std::lock_guard lock(skeleton_mutex_);
    if (const auto it = skeletons_.find(key); it != skeletons_.end())
      return it->second;
  }
  // Build outside the lock (Algorithm 1 is the expensive part); a
  // concurrent first-use of the same shape builds twice and the loser's
  // copy is dropped — benign, mirroring the entry store above.
  auto built = std::make_shared<const PathModelSkeleton>(canonical);
  const std::lock_guard lock(skeleton_mutex_);
  const auto [it, inserted] = skeletons_.emplace(key, std::move(built));
  return it->second;
}

PathMeasures PathAnalysisCache::measures(
    const PathModelConfig& config,
    const std::vector<double>& hop_availability, TransientKernel kernel,
    bool reuse_skeleton) {
  expects(hop_availability.size() >= config.hop_count(),
          "one availability per hop");

  bool found = false;
  Entry entry;
  std::string key;
  {
    WHART_TIMER("hart.stage.cache_lookup.ns");
    key = fingerprint(config, hop_availability, kernel);
    const std::lock_guard lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      found = true;
      entry = it->second;
    }
  }
  if (found) {
    hits_.add(1);
    WHART_COUNT("hart.path_cache.hits");
    WHART_EVENT(kCacheHit, "hart.path_cache", config.hop_count(), 0);
  } else {
    misses_.add(1);
    WHART_COUNT("hart.path_cache.misses");
    WHART_EVENT(kCacheMiss, "hart.path_cache", config.hop_count(), 0);
  }

  if (!found) {
    // Solve the canonical model outside the lock; a concurrent miss on
    // the same key solves twice and stores the identical entry — benign.
    const SteadyStateLinks links(std::vector<double>(
        hop_availability.begin(),
        hop_availability.begin() +
            static_cast<std::ptrdiff_t>(config.hop_count())));
    PathAnalysisOptions options;
    options.kernel = kernel;
    const auto store = [&entry](const PathTransientResult& transient) {
      entry.cycle_probabilities = transient.cycle_probabilities;
      entry.expected_transmissions = transient.expected_transmissions;
      entry.expected_transmissions_delivered =
          transient.expected_transmissions_delivered;
      entry.diagnostics = transient.diagnostics;
    };
    if (reuse_skeleton) {
      const auto skeleton = skeleton_for(canonicalize(config), kernel);
      auto workspace = workspaces_.acquire();
      skeleton->analyze_into(links, options, *workspace,
                             workspace->scratch_result);
      store(workspace->scratch_result);
    } else {
      const PathModel model(canonicalize(config));
      store(model.analyze(links, options));
    }
    std::size_t size_after = 0;
    {
      const std::lock_guard lock(mutex_);
      if (max_entries_ > 0 && entries_.size() >= max_entries_ &&
          !entries_.contains(key)) {
        entries_.erase(entries_.begin());
        evictions_.add(1);
        WHART_COUNT("hart.path_cache.evictions");
      }
      entries_.emplace(key, entry);
      size_after = entries_.size();
    }
    WHART_GAUGE_SET("hart.path_cache.size", static_cast<double>(size_after));
  }

  // Re-derive the measures from the caller's (untranslated) config —
  // the same steps compute_path_measures performs on a direct solve.
  PathMeasures m = measures_from_cycles(config, entry.cycle_probabilities,
                                        entry.expected_transmissions);
  m.utilization_delivered =
      entry.expected_transmissions_delivered /
      (static_cast<double>(config.reporting_interval) *
       config.superframe.uplink_slots);
  m.diagnostics = entry.diagnostics;
  if (found) {
    m.diagnostics->from_cache = true;
    m.diagnostics->solve_ns = 0;
  }
  return m;
}

std::size_t PathAnalysisCache::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

void PathAnalysisCache::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
  hits_.reset();
  misses_.reset();
  evictions_.reset();
}

}  // namespace whart::hart
