#include "whart/hart/what_if.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/hart/path_cache.hpp"

namespace whart::hart {

WhatIfEngine::WhatIfEngine(const net::Network& network,
                           const std::vector<net::Path>& paths,
                           const net::Schedule& schedule,
                           net::SuperframeConfig superframe,
                           std::uint32_t reporting_interval,
                           WhatIfOptions options)
    : network_(&network), options_(options) {
  WHART_REQUEST_SPAN("whatif_baseline");
  expects(!paths.empty(), "at least one path");
  links_ = network.links();
  states_.resize(paths.size());
  baseline_.resize(paths.size());

  // Serial symbolic pre-pass: shapes share one skeleton (the same
  // fingerprint grouping analyze_network applies) and every path gets a
  // product cache borrowing its skeleton's chain.
  std::unordered_map<std::string, std::shared_ptr<const PathModelSkeleton>>
      skeletons;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    PathState& state = states_[p];
    state.config = PathModelConfig::from_schedule(schedule, p, superframe,
                                                  reporting_interval);
    state.hop_links = paths[p].resolve_links(network);
    state.availability.reserve(state.config.hop_count());
    for (const link::LinkModel& model : paths[p].hop_models(network))
      state.availability.push_back(model.steady_state_availability());
    auto& slot = skeletons[PathAnalysisCache::skeleton_fingerprint(
        state.config, options_.kernel)];
    if (slot == nullptr)
      slot = std::make_shared<const PathModelSkeleton>(state.config);
    state.skeleton = slot;
    state.product = std::make_unique<markov::IncrementalProduct>(
        state.skeleton->chain(), state.skeleton->slot_patterns());
    for (net::LinkId link : state.hop_links) {
      std::vector<std::size_t>& users = paths_of_link_[link];
      if (users.empty() || users.back() != p) users.push_back(p);
    }
  }

  // Baseline fan-out: seed each path's product (a full replay) and cache
  // its measures.  The availabilities are derived exactly as
  // analyze_network derives them, so a what-if back to a link's baseline
  // availability reproduces these measures bitwise.
  common::parallel_for(
      paths.size(),
      [&](std::size_t p) {
        PathState& state = states_[p];
        PathAnalysisOptions path_options;
        path_options.kernel = options_.kernel;
        const SteadyStateLinks links(state.availability);
        if (state.skeleton->analyze_incremental_into(
                links, path_options, {}, *state.product, state.workspace,
                state.workspace.scratch_result)) {
          state.incremental_ok = true;
        } else {
          state.skeleton->analyze_into(links, path_options, state.workspace,
                                       state.workspace.scratch_result);
        }
        baseline_[p] =
            measures_from_transient(state.config, state.workspace.scratch_result);
      },
      options_.threads);
  WHART_COUNT("hart.whatif.engines");
  WHART_GAUGE_SET("hart.whatif.paths", static_cast<double>(paths.size()));
}

void WhatIfEngine::revert_path(PathState& state) {
  // Restore the baseline firing values and product partials directly —
  // SteadyStateLinks is slot-independent, so the written values are the
  // very doubles the baseline provider produced and the targeted replay
  // returns every partial row to its bitwise-baseline value.
  for (const PathModelSkeleton::SlotProvenance& prov :
       state.skeleton->provenance()) {
    bool changed = false;
    for (std::size_t hop : state.changed_hops) changed |= prov.hop == hop;
    if (!changed) continue;
    const double ps = state.availability[prov.hop];
    const std::span<double> values =
        state.workspace.slots[prov.slot - 1].values();
    values[prov.failure_index] = 1.0 - ps;
    values[prov.success_index] = ps;
    state.product->update(prov.slot - 1, prov.failure_index);
    state.product->update(prov.slot - 1, prov.success_index);
  }
  state.product->propagate(state.workspace.slots);
}

void WhatIfEngine::resolve_path(std::size_t p, net::LinkId link,
                                double availability, PathMeasures& out) {
  PathState& state = states_[p];
  state.changed_hops.clear();
  state.scratch_availability = state.availability;
  for (std::size_t h = 0; h < state.hop_links.size(); ++h)
    if (state.hop_links[h] == link) {
      state.changed_hops.push_back(h);
      state.scratch_availability[h] = availability;
    }
  const SteadyStateLinks links(state.scratch_availability);
  PathAnalysisOptions path_options;
  path_options.kernel = options_.kernel;
  path_options.inject_stale_product_row = options_.inject_stale_product_row;
  if (state.incremental_ok &&
      state.skeleton->analyze_incremental_into(links, path_options,
                                               state.changed_hops,
                                               *state.product, state.workspace,
                                               scratch_transient_)) {
    out = measures_from_transient(state.config, scratch_transient_);
    revert_path(state);
    return;
  }
  // Fresh fallback (degenerate probability, per-slot kernel, ...): the
  // skeleton-cached solve analyze_network itself would run, on a scratch
  // workspace so the incremental slot values stay at baseline.
  WHART_COUNT("hart.whatif.fresh_fallbacks");
  state.skeleton->analyze_into(links, path_options, fallback_workspace_,
                               scratch_transient_);
  out = measures_from_transient(state.config, scratch_transient_);
}

WhatIfResult WhatIfEngine::what_if(net::LinkId link, double availability) {
  WHART_SPAN("whatif_query");
  expects(availability >= 0.0 && availability <= 1.0,
          "availability in [0, 1]");
  WhatIfResult result;
  result.per_path = baseline_;
  const auto it = paths_of_link_.find(link);
  if (it != paths_of_link_.end()) {
    for (std::size_t p : it->second)
      resolve_path(p, link, availability, result.per_path[p]);
    result.paths_resolved = it->second.size();
  }
  result.paths_reused = baseline_.size() - result.paths_resolved;
  WHART_COUNT("hart.whatif.queries");
  WHART_COUNT_N("hart.whatif.paths_resolved", result.paths_resolved);
  WHART_COUNT_N("hart.whatif.paths_reused", result.paths_reused);
  return result;
}

WhatIfDelta WhatIfEngine::what_if_delta(net::LinkId link,
                                        double availability) {
  WHART_SPAN("whatif_query");
  expects(availability >= 0.0 && availability <= 1.0,
          "availability in [0, 1]");
  WhatIfDelta delta;
  const auto it = paths_of_link_.find(link);
  // Affected path indices are ascending by construction, so the
  // worst-delay scan below can merge them against the baseline in one
  // pass.
  static const std::vector<std::size_t> kNone;
  const std::vector<std::size_t>& affected =
      it != paths_of_link_.end() ? it->second : kNone;
  std::vector<double> new_delays;
  new_delays.reserve(affected.size());
  for (std::size_t p : affected) {
    resolve_path(p, link, availability, scratch_measures_);
    delta.reachability_delta +=
        scratch_measures_.reachability - baseline_[p].reachability;
    new_delays.push_back(scratch_measures_.expected_delay_ms);
  }
  std::size_t next = 0;
  for (std::size_t p = 0; p < baseline_.size(); ++p) {
    const double d = next < affected.size() && affected[next] == p
                         ? new_delays[next++]
                         : baseline_[p].expected_delay_ms;
    delta.worst_expected_delay_ms = std::max(delta.worst_expected_delay_ms, d);
  }
  delta.paths_resolved = affected.size();
  WHART_COUNT("hart.whatif.queries");
  WHART_COUNT_N("hart.whatif.paths_resolved", delta.paths_resolved);
  WHART_COUNT_N("hart.whatif.paths_reused",
                baseline_.size() - delta.paths_resolved);
  return delta;
}

std::size_t WhatIfEngine::paths_using(net::LinkId link) const {
  return affected_paths(link).size();
}

std::span<const std::size_t> WhatIfEngine::affected_paths(
    net::LinkId link) const {
  const auto it = paths_of_link_.find(link);
  return it == paths_of_link_.end() ? std::span<const std::size_t>{}
                                    : std::span<const std::size_t>(it->second);
}

double WhatIfEngine::baseline_availability(net::LinkId link) const {
  return network_->link(link).model.steady_state_availability();
}

}  // namespace whart::hart
