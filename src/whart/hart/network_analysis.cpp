#include "whart/hart/network_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/phy/frame.hpp"

namespace whart::hart {

NetworkMeasures analyze_network(const net::Network& network,
                                const std::vector<net::Path>& paths,
                                const net::Schedule& schedule,
                                net::SuperframeConfig superframe,
                                std::uint32_t reporting_interval,
                                const AnalysisOptions& options) {
  WHART_REQUEST_SPAN("analyze_network");
  expects(!paths.empty(), "at least one path");
  WHART_COUNT("hart.network.analyses");
  WHART_GAUGE_SET("hart.network.paths", static_cast<double>(paths.size()));
  PathAnalysisCache local_cache;
  PathAnalysisCache* cache =
      options.cache != nullptr ? options.cache
                               : (options.use_cache ? &local_cache : nullptr);

  std::vector<PathModelConfig> configs(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p)
    configs[p] = PathModelConfig::from_schedule(schedule, p, superframe,
                                                reporting_interval);

  // Cacheless skeleton sharing: group paths by schedule shape in a
  // serial pre-pass so each shape runs its symbolic phase exactly once;
  // the map is read-only during the parallel fan-out.  (With a cache the
  // cache's own skeleton store plays this role.)
  std::vector<std::string> shape_keys(paths.size());
  std::unordered_map<std::string, std::shared_ptr<const PathModelSkeleton>>
      skeletons;
  if (cache == nullptr && options.reuse_skeleton &&
      !options.channel.has_value()) {
    for (std::size_t p = 0; p < paths.size(); ++p) {
      shape_keys[p] =
          PathAnalysisCache::skeleton_fingerprint(configs[p], options.kernel);
      auto& slot = skeletons[shape_keys[p]];
      if (slot == nullptr)
        slot = std::make_shared<const PathModelSkeleton>(configs[p]);
    }
  }
  common::WorkspacePool<SolveWorkspace> workspaces;

  std::vector<PathMeasures> per_path(paths.size());
  common::parallel_for(
      paths.size(),
      [&](std::size_t p) {
        const PathModelConfig& config = configs[p];
        std::vector<double> availability;
        availability.reserve(config.hop_count());
        for (const link::LinkModel& model : paths[p].hop_models(network))
          availability.push_back(model.steady_state_availability());
        if (options.channel.has_value()) {
          // Channel-enlarged solve: each hop runs the overlay rescaled to
          // its own availability, and neither the cache nor the skeleton
          // store applies (both key the i.i.d. shape).
          std::vector<link::ChannelModel> channels;
          channels.reserve(availability.size());
          for (double a : availability)
            channels.push_back(options.channel->with_marginal_success(a));
          const PathModel model(config);
          const ChannelLinks links(std::move(channels));
          PathAnalysisOptions path_options;
          path_options.kernel = options.kernel;
          per_path[p] = compute_path_measures(model, links, path_options);
        } else if (cache != nullptr) {
          per_path[p] = cache->measures(config, availability, options.kernel,
                                        options.reuse_skeleton);
        } else if (options.reuse_skeleton) {
          const PathModelSkeleton& skeleton = *skeletons.at(shape_keys[p]);
          const SteadyStateLinks links(std::move(availability));
          PathAnalysisOptions path_options;
          path_options.kernel = options.kernel;
          auto workspace = workspaces.acquire();
          skeleton.analyze_into(links, path_options, *workspace,
                                workspace->scratch_result);
          // The transient depends only on the shape the skeleton keys;
          // measures re-derive from this path's own config.
          per_path[p] =
              measures_from_transient(config, workspace->scratch_result);
        } else {
          const PathModel model(config);
          const SteadyStateLinks links(std::move(availability));
          PathAnalysisOptions path_options;
          path_options.kernel = options.kernel;
          per_path[p] = compute_path_measures(model, links, path_options);
        }
      },
      options.threads);
  return aggregate_measures(std::move(per_path));
}

NetworkMeasures aggregate_measures(std::vector<PathMeasures> per_path) {
  expects(!per_path.empty(), "at least one path");
  NetworkMeasures result;
  result.per_path = std::move(per_path);

  const double path_count = static_cast<double>(result.per_path.size());
  // Mass is merged per 10 ms slot index, not per raw double delay: equal
  // delays reached through different arithmetic (e.g. from paths solved
  // via the canonical cache vs directly) must land in one bin.
  std::map<std::int64_t, double> delay_mass;
  for (std::size_t p = 0; p < result.per_path.size(); ++p) {
    const PathMeasures& m = result.per_path[p];
    result.mean_delay_ms += m.expected_delay_ms / path_count;
    result.network_utilization += m.utilization;
    result.network_utilization_delivered += m.utilization_delivered;
    for (std::size_t i = 0; i < m.delays_ms.size(); ++i)
      delay_mass[static_cast<std::int64_t>(
          std::llround(m.delays_ms[i] / phy::kSlotMilliseconds))] +=
          m.delay_distribution[i] / path_count;
    if (m.expected_delay_ms >
        result.per_path[result.bottleneck_by_delay].expected_delay_ms)
      result.bottleneck_by_delay = p;
    if (m.reachability <
        result.per_path[result.bottleneck_by_reachability].reachability)
      result.bottleneck_by_reachability = p;
    if (m.diagnostics.has_value()) {
      const SolverDiagnostics& d = *m.diagnostics;
      if (d.from_cache) {
        ++result.diagnostics.cache_hits;
      } else {
        ++result.diagnostics.dtmc_solves;
        result.diagnostics.states_solved += d.dtmc_states;
        result.diagnostics.solve_ns_total += d.solve_ns;
      }
      result.diagnostics.max_mass_residual =
          std::max(result.diagnostics.max_mass_residual, d.mass_residual);
    }
  }
  result.overall_delay_distribution.reserve(delay_mass.size());
  for (const auto& [slot, probability] : delay_mass)
    result.overall_delay_distribution.push_back(
        {static_cast<double>(slot) * phy::kSlotMilliseconds, probability});
  return result;
}

}  // namespace whart::hart
