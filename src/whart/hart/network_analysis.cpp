#include "whart/hart/network_analysis.hpp"

#include <algorithm>
#include <map>

#include "whart/common/contracts.hpp"

namespace whart::hart {

NetworkMeasures analyze_network(const net::Network& network,
                                const std::vector<net::Path>& paths,
                                const net::Schedule& schedule,
                                net::SuperframeConfig superframe,
                                std::uint32_t reporting_interval) {
  expects(!paths.empty(), "at least one path");
  std::vector<PathMeasures> per_path;
  per_path.reserve(paths.size());
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathModelConfig config = PathModelConfig::from_schedule(
        schedule, p, superframe, reporting_interval);
    const PathModel model(config);
    const SteadyStateLinks links(paths[p].hop_models(network));
    per_path.push_back(compute_path_measures(model, links));
  }
  return aggregate_measures(std::move(per_path));
}

NetworkMeasures aggregate_measures(std::vector<PathMeasures> per_path) {
  expects(!per_path.empty(), "at least one path");
  NetworkMeasures result;
  result.per_path = std::move(per_path);

  const double path_count = static_cast<double>(result.per_path.size());
  std::map<double, double> delay_mass;
  for (std::size_t p = 0; p < result.per_path.size(); ++p) {
    const PathMeasures& m = result.per_path[p];
    result.mean_delay_ms += m.expected_delay_ms / path_count;
    result.network_utilization += m.utilization;
    result.network_utilization_delivered += m.utilization_delivered;
    for (std::size_t i = 0; i < m.delays_ms.size(); ++i)
      delay_mass[m.delays_ms[i]] += m.delay_distribution[i] / path_count;
    if (m.expected_delay_ms >
        result.per_path[result.bottleneck_by_delay].expected_delay_ms)
      result.bottleneck_by_delay = p;
    if (m.reachability <
        result.per_path[result.bottleneck_by_reachability].reachability)
      result.bottleneck_by_reachability = p;
  }
  result.overall_delay_distribution.reserve(delay_mass.size());
  for (const auto& [delay, probability] : delay_mass)
    result.overall_delay_distribution.push_back({delay, probability});
  return result;
}

}  // namespace whart::hart
