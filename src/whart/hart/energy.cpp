#include "whart/hart/energy.hpp"

#include <limits>

#include "whart/common/contracts.hpp"
#include "whart/hart/path_model.hpp"

namespace whart::hart {

double NodeEnergy::battery_life_days(const EnergyParameters& params,
                                     double interval_milliseconds) const {
  expects(interval_milliseconds > 0.0, "interval duration > 0");
  if (mj_per_interval <= 0.0) return std::numeric_limits<double>::infinity();
  const double intervals = params.battery_joules * 1000.0 / mj_per_interval;
  return intervals * interval_milliseconds / (1000.0 * 60.0 * 60.0 * 24.0);
}

std::vector<NodeEnergy> estimate_node_energy(
    const net::Network& network, const std::vector<net::Path>& paths,
    const net::Schedule& schedule, net::SuperframeConfig superframe,
    std::uint32_t reporting_interval, const EnergyParameters& params) {
  expects(!paths.empty(), "at least one path");
  expects(params.tx_mj_per_attempt >= 0.0 && params.rx_mj_per_attempt >= 0.0,
          "non-negative energy costs");

  std::vector<NodeEnergy> energies(network.node_count());
  for (std::uint32_t id = 0; id < network.node_count(); ++id)
    energies[id].node = net::NodeId{id};

  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathModelConfig config = PathModelConfig::from_schedule(
        schedule, p, superframe, reporting_interval);
    const PathModel model(config);
    const SteadyStateLinks links(paths[p].hop_models(network));
    const PathTransientResult result = model.analyze(links);
    for (std::size_t h = 0; h < paths[p].hop_count(); ++h) {
      const auto [from, to] = paths[p].hop(h);
      const double attempts = result.expected_transmissions_per_hop[h];
      energies[from.value].tx_attempts_per_interval += attempts;
      energies[to.value].rx_attempts_per_interval += attempts;
    }
  }

  for (NodeEnergy& node : energies) {
    node.mj_per_interval =
        node.tx_attempts_per_interval * params.tx_mj_per_attempt +
        node.rx_attempts_per_interval * params.rx_mj_per_attempt;
  }
  return energies;
}

std::size_t hottest_node(const std::vector<NodeEnergy>& energies) {
  expects(!energies.empty(), "at least one node");
  std::size_t hottest = 0;
  for (std::size_t i = 1; i < energies.size(); ++i)
    if (energies[i].mj_per_interval > energies[hottest].mj_per_interval)
      hottest = i;
  return hottest;
}

}  // namespace whart::hart
