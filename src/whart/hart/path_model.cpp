#include "whart/hart/path_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::hart {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}

PathModelConfig PathModelConfig::from_schedule(
    const net::Schedule& schedule, std::size_t path_index,
    net::SuperframeConfig superframe, std::uint32_t reporting_interval) {
  PathModelConfig config;
  config.hop_slots = schedule.path_slots(path_index).hop_slots;
  config.superframe = superframe;
  config.reporting_interval = reporting_interval;
  return config;
}

std::uint32_t PathModelConfig::effective_ttl() const noexcept {
  return ttl.has_value() ? std::min(*ttl, horizon()) : horizon();
}

PathModel::PathModel(PathModelConfig config) : config_(std::move(config)) {
  expects(!config_.hop_slots.empty(), "path has at least one hop");
  expects(config_.superframe.uplink_slots > 0, "Fup > 0");
  expects(config_.reporting_interval >= 1, "Is >= 1");
  expects(config_.effective_ttl() >= 1, "ttl >= 1");
  for (net::SlotNumber s : config_.hop_slots)
    expects(s >= 1 && s <= config_.superframe.uplink_slots,
            "hop slots lie within the uplink frame");
  expects(config_.retry_slots.empty() ||
              config_.retry_slots.size() == config_.hop_slots.size(),
          "retry_slots empty or one entry per hop");
  std::vector<net::SlotNumber> sorted = config_.hop_slots;
  for (net::SlotNumber s : config_.retry_slots) {
    if (s == 0) continue;  // no retry slot for this hop
    expects(s >= 1 && s <= config_.superframe.uplink_slots,
            "retry slots lie within the uplink frame");
    sorted.push_back(s);
  }
  std::sort(sorted.begin(), sorted.end());
  expects(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
          "each transmission opportunity has its own dedicated slot");

  // Reachability sweep over the layered state space: state (t, h) exists
  // for t < ttl when the chain can occupy it.
  const std::uint32_t ttl = config_.effective_ttl();
  const std::size_t hops = config_.hop_count();
  state_index_.assign(ttl, std::vector<std::size_t>(hops, kUnreachable));
  std::vector<std::vector<bool>> reachable(ttl,
                                           std::vector<bool>(hops, false));
  reachable[0][0] = true;
  for (std::uint32_t t = 0; t + 1 < ttl; ++t) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      if (!reachable[t][h]) continue;
      reachable[t + 1][h] = true;  // failed or idle slot
      if (firing == h && h + 1 < hops) reachable[t + 1][h + 1] = true;
    }
  }
  for (std::uint32_t t = 0; t < ttl; ++t)
    for (std::size_t h = 0; h < hops; ++h)
      if (reachable[t][h]) state_index_[t][h] = num_transient_++;
  num_states_ = num_transient_ + config_.reporting_interval + 1;
}

std::optional<std::size_t> PathModel::hop_in_slot(
    std::uint32_t global_slot) const noexcept {
  const net::SlotNumber in_frame =
      ((global_slot - 1) % config_.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config_.hop_slots.size(); ++h)
    if (config_.hop_slots[h] == in_frame) return h;
  for (std::size_t h = 0; h < config_.retry_slots.size(); ++h)
    if (config_.retry_slots[h] != 0 && config_.retry_slots[h] == in_frame)
      return h;
  return std::nullopt;
}

PathTransientResult PathModel::analyze(
    const LinkProbabilityProvider& links) const {
  return analyze(links, PathAnalysisOptions{});
}

PathTransientResult PathModel::analyze(
    const LinkProbabilityProvider& links,
    const PathAnalysisOptions& options) const {
  if (options.kernel == TransientKernel::kSuperframeProduct) {
    if (links.cycle_stationary())
      return analyze_superframe(links, options.inject_product_error);
    WHART_COUNT("hart.path_solve.kernel_fallback");
  }
  return analyze_per_slot(links);
}

PathTransientResult PathModel::analyze_per_slot(
    const LinkProbabilityProvider& links) const {
  WHART_SPAN("path_solve");
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const std::size_t hops = config_.hop_count();
  const std::uint32_t ttl = config_.effective_ttl();
  const std::uint32_t horizon = config_.horizon();

  PathTransientResult result;
  result.cycle_probabilities.assign(config_.reporting_interval, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);
  result.goal_trajectory.reserve(horizon + 1);
  result.goal_trajectory.push_back(result.cycle_probabilities);

  // Backward pass: beta[t][h] = P(eventual delivery | at (t, h) before
  // slot t+1).  Needed to attribute attempts to delivered messages.
  std::vector<std::vector<double>> beta(ttl + 1,
                                        std::vector<double>(hops, 0.0));
  for (std::uint32_t t = ttl; t-- > 0;) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const double continue_beta = slot == ttl ? 0.0 : beta[t + 1][h];
      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops
                ? 1.0
                : (slot == ttl ? 0.0 : beta[t + 1][h + 1]);
        beta[t][h] = ps * success_beta + (1.0 - ps) * continue_beta;
      } else {
        beta[t][h] = continue_beta;
      }
    }
  }

  std::vector<double> mass(hops, 0.0);
  mass[0] = 1.0;

  for (std::uint32_t slot = 1; slot <= horizon; ++slot) {
    if (slot <= ttl) {
      if (const auto firing = hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        if (mass[h] > 0.0) {
          const double ps = links.up_probability(
              h, config_.superframe.absolute_slot_of_uplink(slot));
          result.expected_transmissions += mass[h];
          result.expected_transmissions_per_hop[h] += mass[h];
          result.expected_transmissions_delivered +=
              mass[h] * beta[slot - 1][h];
          const double moved = mass[h] * ps;
          mass[h] -= moved;
          if (h + 1 == hops) {
            const std::uint32_t cycle =
                (slot - 1) / config_.superframe.uplink_slots;  // 0-based
            result.cycle_probabilities[cycle] += moved;
          } else {
            mass[h + 1] += moved;
          }
        }
      }
      if (slot == ttl) {
        // TTL expired: every in-flight message is discarded.
        for (double& m : mass) {
          result.discard_probability += m;
          m = 0.0;
        }
      }
    }
    result.goal_trajectory.push_back(result.cycle_probabilities);
  }

  result.diagnostics.dtmc_states = num_states_;
  result.diagnostics.transient_states = num_transient_;
  result.diagnostics.absorbing_states = config_.reporting_interval + 1;
  result.diagnostics.forward_steps = horizon;
  const double goal_mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(), 0.0);
  result.diagnostics.mass_residual =
      std::abs(1.0 - goal_mass - result.discard_probability);
  WHART_COUNT("hart.path_solve.count");
  WHART_OBSERVE("hart.path_solve.states", num_states_);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
  return result;
}

std::vector<linalg::CsrMatrix> PathModel::slot_matrices(
    const LinkProbabilityProvider& links) const {
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config_.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::size_t discard = hops + 1;
  std::vector<linalg::CsrMatrix> matrices;
  matrices.reserve(config_.superframe.cycle_slots());
  // Success probabilities are frozen from the first cycle; with a
  // cycle-stationary provider every later cycle sees the same values.
  for (std::uint32_t slot = 1; slot <= config_.superframe.uplink_slots;
       ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    std::vector<linalg::Triplet> entries;
    entries.reserve(dim + 1);
    for (std::size_t h = 0; h < hops; ++h) {
      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t target = h + 1 == hops ? goal : h + 1;
        if (ps > 0.0) entries.push_back({h, target, ps});
        if (ps < 1.0) entries.push_back({h, h, 1.0 - ps});
      } else {
        entries.push_back({h, h, 1.0});
      }
    }
    entries.push_back({goal, goal, 1.0});
    entries.push_back({discard, discard, 1.0});
    matrices.emplace_back(dim, dim, std::move(entries));
  }
  for (std::uint32_t s = 0; s < config_.superframe.downlink_slots; ++s)
    matrices.push_back(linalg::CsrMatrix::identity(dim));
  return matrices;
}

PathTransientResult PathModel::analyze_superframe(
    const LinkProbabilityProvider& links, double inject) const {
  WHART_SPAN("path_solve");
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const std::size_t hops = config_.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config_.superframe.uplink_slots;
  const std::uint32_t ttl = config_.effective_ttl();
  const std::uint32_t interval = config_.reporting_interval;
  const std::uint32_t horizon = config_.horizon();

  markov::SuperframeKernel kernel(slot_matrices(links));
  if (inject != 0.0) kernel.perturb_product_entry(0, 0, inject);

  // Transmission opportunities of one cycle, in slot order.
  struct Firing {
    std::uint32_t slot;  // 1-based uplink position within the frame
    std::size_t hop;
    double ps;
  };
  std::vector<Firing> firings;
  firings.reserve(hops);
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = hop_in_slot(slot); h.has_value())
      firings.push_back(
          {slot, *h,
           links.up_probability(
               *h, config_.superframe.absolute_slot_of_uplink(slot))});

  // One-cycle accounting matrices from a dense prefix/suffix sweep.
  //
  //   attempts(x, h): expected transmissions of hop h during a full cycle
  //     entered in state x — the prefix column of state h summed over the
  //     slots where h fires, so a whole cycle's attempt bookkeeping is one
  //     dot product against the entry distribution.
  //
  //   delivered_kernel K: with b = eventual-delivery probabilities at the
  //     cycle's end and u = delivered-attempt mass accrued after it, one
  //     cycle folds backward as u <- K b + P u, b <- P b, where
  //     K = sum over firing slots j of
  //         (column x_j of Prefix_{j-1}) (row x_j of Suffix_j),
  //     Prefix_{j-1} = M_1..M_{j-1} and Suffix_j = M_j..M_F.
  linalg::Matrix prefix = linalg::Matrix::identity(dim);
  linalg::Matrix attempts(dim, hops);
  std::vector<linalg::Vector> prefix_columns;
  prefix_columns.reserve(firings.size());
  for (const Firing& f : firings) {
    linalg::Vector column(dim);
    for (std::size_t r = 0; r < dim; ++r) {
      column[r] = prefix(r, f.hop);
      attempts(r, f.hop) += column[r];
    }
    prefix_columns.push_back(std::move(column));
    prefix =
        linalg::left_multiply_batch(prefix, kernel.slot_matrix(f.slot - 1));
  }

  linalg::Matrix delivered_kernel(dim, dim);
  linalg::Matrix suffix = linalg::Matrix::identity(dim);
  for (std::size_t i = firings.size(); i-- > 0;) {
    const Firing& f = firings[i];
    const linalg::CsrMatrix& step = kernel.slot_matrix(f.slot - 1);
    linalg::Matrix next(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      step.for_each_in_row(r, [&](std::size_t k, double v) {
        for (std::size_t c = 0; c < dim; ++c) next(r, c) += v * suffix(k, c);
      });
    suffix = std::move(next);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        delivered_kernel(r, c) += prefix_columns[i][r] * suffix(f.hop, c);
  }

  PathTransientResult result;
  result.cycle_probabilities.assign(interval, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);
  result.trajectory_stride = frame;
  result.goal_trajectory.reserve(interval + 1);
  result.goal_trajectory.push_back(result.cycle_probabilities);

  linalg::Vector p(dim);
  p[0] = 1.0;
  double goal_mass_seen = 0.0;
  for (std::uint32_t cycle = 0; cycle < interval; ++cycle) {
    if (static_cast<std::uint64_t>(cycle + 1) * frame <= ttl) {
      // Full pre-TTL cycle: attempts via the accounting matrix, then one
      // product advance in place of `frame` per-slot steps.
      for (std::size_t h = 0; h < hops; ++h) {
        double a = 0.0;
        for (std::size_t x = 0; x < dim; ++x) a += p[x] * attempts(x, h);
        result.expected_transmissions_per_hop[h] += a;
        result.expected_transmissions += a;
      }
      p = kernel.cycle_product().left_multiply(p);
    } else {
      // The cycle the TTL cuts through runs per-slot so the discard lands
      // on the exact slot; cycles past the TTL fall straight through.
      for (std::uint32_t s = 1; s <= frame; ++s) {
        const std::uint32_t slot = cycle * frame + s;
        if (slot > ttl) break;
        if (const auto firing = hop_in_slot(slot); firing.has_value()) {
          const std::size_t h = *firing;
          const double ps = links.up_probability(
              h, config_.superframe.absolute_slot_of_uplink(slot));
          result.expected_transmissions += p[h];
          result.expected_transmissions_per_hop[h] += p[h];
          const double moved = p[h] * ps;
          p[h] -= moved;
          if (h + 1 == hops)
            p[goal] += moved;
          else
            p[h + 1] += moved;
        }
        if (slot == ttl) {
          for (std::size_t h = 0; h < hops; ++h) {
            result.discard_probability += p[h];
            p[h] = 0.0;
          }
        }
      }
    }
    result.cycle_probabilities[cycle] = p[goal] - goal_mass_seen;
    goal_mass_seen = p[goal];
    result.goal_trajectory.push_back(result.cycle_probabilities);
  }
  // When the TTL coincides with a product-advanced cycle boundary the
  // expired mass never passed a per-slot discard; sweep it now.
  for (std::size_t h = 0; h < hops; ++h) {
    result.discard_probability += p[h];
    p[h] = 0.0;
  }

  // Delivered-attempt accounting, folded backward cycle-by-cycle.  b
  // starts as the goal indicator at the TTL slot (transient mass there is
  // lost, so its delivery probability is already 0); the TTL cycle runs
  // per-slot, every earlier cycle collapses through K and the product.
  {
    linalg::Vector b(dim);
    b[goal] = 1.0;
    linalg::Vector u(dim);
    const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
    for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
      if (const auto firing = hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t target = h + 1 == hops ? goal : h + 1;
        const double b_before = ps * b[target] + (1.0 - ps) * b[h];
        u[h] = ps * u[target] + (1.0 - ps) * u[h] + b_before;
        b[h] = b_before;
      }
    }
    const linalg::CsrMatrix& product = kernel.cycle_product();
    for (std::uint32_t cycle = ttl_cycle; cycle-- > 0;) {
      linalg::Vector u_next(dim);
      linalg::Vector b_next(dim);
      for (std::size_t r = 0; r < dim; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
          acc += delivered_kernel(r, c) * b[c];
        u_next[r] = acc;
      }
      for (std::size_t r = 0; r < dim; ++r)
        product.for_each_in_row(r, [&](std::size_t c, double v) {
          u_next[r] += v * u[c];
          b_next[r] += v * b[c];
        });
      u = std::move(u_next);
      b = std::move(b_next);
    }
    result.expected_transmissions_delivered = u[0];
  }

  result.diagnostics.dtmc_states = dim;
  result.diagnostics.transient_states = hops;
  result.diagnostics.absorbing_states = 2;
  result.diagnostics.forward_steps = horizon;
  result.diagnostics.kernel = TransientKernel::kSuperframeProduct;
  const double goal_mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(), 0.0);
  result.diagnostics.mass_residual =
      std::abs(1.0 - goal_mass - result.discard_probability);
  WHART_COUNT("hart.path_solve.count");
  WHART_COUNT("hart.path_solve.superframe");
  WHART_OBSERVE("hart.path_solve.states", dim);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
  return result;
}

markov::Dtmc PathModel::to_dtmc(const LinkProbabilityProvider& links) const {
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config_.hop_count();
  const std::uint32_t ttl = config_.effective_ttl();
  const std::size_t discard = num_states_ - 1;
  const auto goal_index = [&](std::uint32_t cycle_0based) {
    return num_transient_ + cycle_0based;
  };

  std::vector<linalg::Triplet> transitions;
  std::vector<std::string> names(num_states_);

  // Transient states and their outgoing transitions.
  for (std::uint32_t t = 0; t < ttl; ++t) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t from = state_index_[t][h];
      if (from == kUnreachable) continue;

      // Paper-style descriptor: nodes 1..h+1 hold a copy aged t+1.
      std::string name = "(";
      for (std::size_t node = 0; node < hops; ++node) {
        if (node > 0) name += ",";
        name += node <= h ? std::to_string(t + 1) : "-";
      }
      name += ")";
      names[from] = std::move(name);

      const auto continuation = [&](std::size_t next_h) -> std::size_t {
        if (t + 1 >= ttl) return discard;  // TTL hits zero next step
        const std::size_t idx = state_index_[t + 1][next_h];
        ensures(idx != kUnreachable, "successor state was enumerated");
        return idx;
      };

      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t success_target =
            h + 1 == hops
                ? goal_index((slot - 1) / config_.superframe.uplink_slots)
                : continuation(h + 1);
        if (ps > 0.0)
          transitions.push_back({from, success_target, ps});
        if (ps < 1.0)
          transitions.push_back({from, continuation(h), 1.0 - ps});
      } else {
        transitions.push_back({from, continuation(h), 1.0});
      }
    }
  }

  // Absorbing states.
  for (std::uint32_t i = 0; i < config_.reporting_interval; ++i) {
    transitions.push_back({goal_index(i), goal_index(i), 1.0});
    names[goal_index(i)] = goal_state_name(i + 1);
  }
  transitions.push_back({discard, discard, 1.0});
  names[discard] = "Discard";

  return markov::Dtmc(num_states_, std::move(transitions), std::move(names));
}

std::string PathModel::goal_state_name(std::uint32_t cycle) const {
  expects(cycle >= 1 && cycle <= config_.reporting_interval,
          "cycle in 1..Is");
  return "R" + std::to_string(config_.gateway_slot() +
                              (cycle - 1) * config_.superframe.uplink_slots);
}

}  // namespace whart::hart
