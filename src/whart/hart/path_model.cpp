#include "whart/hart/path_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/linalg/simd.hpp"
#include "whart/markov/superframe_kernel.hpp"

namespace whart::hart {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}

PathModelConfig PathModelConfig::from_schedule(
    const net::Schedule& schedule, std::size_t path_index,
    net::SuperframeConfig superframe, std::uint32_t reporting_interval) {
  PathModelConfig config;
  config.hop_slots = schedule.path_slots(path_index).hop_slots;
  config.superframe = superframe;
  config.reporting_interval = reporting_interval;
  return config;
}

std::uint32_t PathModelConfig::effective_ttl() const noexcept {
  return ttl.has_value() ? std::min(*ttl, horizon()) : horizon();
}

PathModel::PathModel(PathModelConfig config) : config_(std::move(config)) {
  expects(!config_.hop_slots.empty(), "path has at least one hop");
  expects(config_.superframe.uplink_slots > 0, "Fup > 0");
  expects(config_.reporting_interval >= 1, "Is >= 1");
  expects(config_.effective_ttl() >= 1, "ttl >= 1");
  for (net::SlotNumber s : config_.hop_slots)
    expects(s >= 1 && s <= config_.superframe.uplink_slots,
            "hop slots lie within the uplink frame");
  expects(config_.retry_slots.empty() ||
              config_.retry_slots.size() == config_.hop_slots.size(),
          "retry_slots empty or one entry per hop");
  std::vector<net::SlotNumber> sorted = config_.hop_slots;
  for (net::SlotNumber s : config_.retry_slots) {
    if (s == 0) continue;  // no retry slot for this hop
    expects(s >= 1 && s <= config_.superframe.uplink_slots,
            "retry slots lie within the uplink frame");
    sorted.push_back(s);
  }
  std::sort(sorted.begin(), sorted.end());
  expects(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
          "each transmission opportunity has its own dedicated slot");

  // Reachability sweep over the layered state space: state (t, h) exists
  // for t < ttl when the chain can occupy it.
  const std::uint32_t ttl = config_.effective_ttl();
  const std::size_t hops = config_.hop_count();
  state_index_.assign(ttl, std::vector<std::size_t>(hops, kUnreachable));
  std::vector<std::vector<bool>> reachable(ttl,
                                           std::vector<bool>(hops, false));
  reachable[0][0] = true;
  for (std::uint32_t t = 0; t + 1 < ttl; ++t) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      if (!reachable[t][h]) continue;
      reachable[t + 1][h] = true;  // failed or idle slot
      if (firing == h && h + 1 < hops) reachable[t + 1][h + 1] = true;
    }
  }
  for (std::uint32_t t = 0; t < ttl; ++t)
    for (std::size_t h = 0; h < hops; ++h)
      if (reachable[t][h]) state_index_[t][h] = num_transient_++;
  num_states_ = num_transient_ + config_.reporting_interval + 1;
}

std::optional<std::size_t> PathModel::hop_in_slot(
    std::uint32_t global_slot) const noexcept {
  const net::SlotNumber in_frame =
      ((global_slot - 1) % config_.superframe.uplink_slots) + 1;
  for (std::size_t h = 0; h < config_.hop_slots.size(); ++h)
    if (config_.hop_slots[h] == in_frame) return h;
  for (std::size_t h = 0; h < config_.retry_slots.size(); ++h)
    if (config_.retry_slots[h] != 0 && config_.retry_slots[h] == in_frame)
      return h;
  return std::nullopt;
}

PathTransientResult PathModel::analyze(
    const LinkProbabilityProvider& links) const {
  return analyze(links, PathAnalysisOptions{});
}

PathTransientResult PathModel::analyze(
    const LinkProbabilityProvider& links,
    const PathAnalysisOptions& options) const {
  if (channel_enlarged(links, config_.hop_count()))
    return analyze_channel(links, options);
  if (options.kernel == TransientKernel::kSuperframeProduct) {
    if (links.cycle_stationary())
      return analyze_superframe(links, options.inject_product_error);
    WHART_COUNT("hart.path_solve.kernel_fallback");
  }
  return analyze_per_slot(links);
}

PathTransientResult PathModel::analyze_per_slot(
    const LinkProbabilityProvider& links) const {
  SolveWorkspace workspace;
  PathTransientResult result;
  analyze_per_slot_into(links, workspace, result);
  return result;
}

void PathModel::analyze_per_slot_into(const LinkProbabilityProvider& links,
                                      SolveWorkspace& ws,
                                      PathTransientResult& result) const {
  WHART_SPAN("path_solve");
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const std::size_t hops = config_.hop_count();
  const std::uint32_t ttl = config_.effective_ttl();
  const std::uint32_t horizon = config_.horizon();

  result.cycle_probabilities.assign(config_.reporting_interval, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);
  result.discard_probability = 0.0;
  result.expected_transmissions = 0.0;
  result.expected_transmissions_delivered = 0.0;
  result.trajectory_stride = 1;
  result.diagnostics = SolverDiagnostics{};
  result.goal_trajectory.resize(horizon + 1);
  std::size_t trajectory_entry = 0;
  const auto record_trajectory = [&] {
    result.goal_trajectory[trajectory_entry++].assign(
        result.cycle_probabilities.begin(), result.cycle_probabilities.end());
  };
  record_trajectory();

  // Backward pass: beta[t][h] = P(eventual delivery | at (t, h) before
  // slot t+1).  Needed to attribute attempts to delivered messages.
  ws.beta.assign(static_cast<std::size_t>(ttl) * hops, 0.0);
  const auto beta_at = [&](std::uint32_t t, std::size_t h) -> double& {
    return ws.beta[static_cast<std::size_t>(t) * hops + h];
  };
  for (std::uint32_t t = ttl; t-- > 0;) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const double continue_beta = slot == ttl ? 0.0 : beta_at(t + 1, h);
      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const double success_beta =
            h + 1 == hops
                ? 1.0
                : (slot == ttl ? 0.0 : beta_at(t + 1, h + 1));
        beta_at(t, h) = ps * success_beta + (1.0 - ps) * continue_beta;
      } else {
        beta_at(t, h) = continue_beta;
      }
    }
  }

  ws.mass.assign(hops, 0.0);
  ws.mass[0] = 1.0;

  for (std::uint32_t slot = 1; slot <= horizon; ++slot) {
    if (slot <= ttl) {
      if (const auto firing = hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        if (ws.mass[h] > 0.0) {
          const double ps = links.up_probability(
              h, config_.superframe.absolute_slot_of_uplink(slot));
          result.expected_transmissions += ws.mass[h];
          result.expected_transmissions_per_hop[h] += ws.mass[h];
          result.expected_transmissions_delivered +=
              ws.mass[h] * beta_at(slot - 1, h);
          const double moved = ws.mass[h] * ps;
          ws.mass[h] -= moved;
          if (h + 1 == hops) {
            const std::uint32_t cycle =
                (slot - 1) / config_.superframe.uplink_slots;  // 0-based
            result.cycle_probabilities[cycle] += moved;
          } else {
            ws.mass[h + 1] += moved;
          }
        }
      }
      if (slot == ttl) {
        // TTL expired: every in-flight message is discarded.
        for (double& m : ws.mass) {
          result.discard_probability += m;
          m = 0.0;
        }
      }
    }
    record_trajectory();
  }

  result.diagnostics.dtmc_states = num_states_;
  result.diagnostics.transient_states = num_transient_;
  result.diagnostics.absorbing_states = config_.reporting_interval + 1;
  result.diagnostics.forward_steps = horizon;
  const double goal_mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(), 0.0);
  result.diagnostics.mass_residual =
      std::abs(1.0 - goal_mass - result.discard_probability);
  WHART_COUNT("hart.path_solve.count");
  WHART_OBSERVE("hart.path_solve.states", num_states_);
  WHART_EVENT(kSolveDone, "hart.path_solve", num_states_, 0);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
}

std::vector<linalg::CsrMatrix> PathModel::slot_matrices(
    const LinkProbabilityProvider& links) const {
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config_.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::size_t discard = hops + 1;
  std::vector<linalg::CsrMatrix> matrices;
  matrices.reserve(config_.superframe.cycle_slots());
  // Success probabilities are frozen from the first cycle; with a
  // cycle-stationary provider every later cycle sees the same values.
  for (std::uint32_t slot = 1; slot <= config_.superframe.uplink_slots;
       ++slot) {
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    std::vector<linalg::Triplet> entries;
    entries.reserve(dim + 1);
    for (std::size_t h = 0; h < hops; ++h) {
      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t target = h + 1 == hops ? goal : h + 1;
        if (ps > 0.0) entries.push_back({h, target, ps});
        if (ps < 1.0) entries.push_back({h, h, 1.0 - ps});
      } else {
        entries.push_back({h, h, 1.0});
      }
    }
    entries.push_back({goal, goal, 1.0});
    entries.push_back({discard, discard, 1.0});
    matrices.emplace_back(dim, dim, std::move(entries));
  }
  for (std::uint32_t s = 0; s < config_.superframe.downlink_slots; ++s)
    matrices.push_back(linalg::CsrMatrix::identity(dim));
  return matrices;
}

PathTransientResult PathModel::analyze_superframe(
    const LinkProbabilityProvider& links, double inject) const {
  // Fresh (slow-path) build: assemble the slot matrices and collapse the
  // cycle through SuperframeKernel, then run the shared numeric core
  // with a throwaway workspace.  The skeleton refill path feeds the same
  // core with refilled structures, so the two agree bitwise.
  const std::vector<linalg::CsrMatrix> slots = slot_matrices(links);
  markov::SuperframeKernel kernel(slots);
  if (inject != 0.0) kernel.perturb_product_entry(0, 0, inject);
  SolveWorkspace workspace;
  PathTransientResult result;
  analyze_superframe_into(links, slots, kernel.cycle_product(), workspace,
                          result);
  return result;
}

namespace {

void ensure_zeroed(linalg::Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) {
    m = linalg::Matrix(rows, cols);
    return;
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = 0.0;
}

void ensure_zeroed(linalg::Vector& v, std::size_t size) {
  if (v.size() != size) {
    v = linalg::Vector(size);
    return;
  }
  for (std::size_t i = 0; i < size; ++i) v[i] = 0.0;
}

}  // namespace

void PathModel::analyze_superframe_into(
    const LinkProbabilityProvider& links,
    const std::vector<linalg::CsrMatrix>& slots,
    const linalg::CsrMatrix& product, SolveWorkspace& ws,
    PathTransientResult& result) const {
  WHART_SPAN("path_solve");
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const std::size_t hops = config_.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config_.superframe.uplink_slots;
  const std::uint32_t ttl = config_.effective_ttl();
  const std::uint32_t interval = config_.reporting_interval;
  const std::uint32_t horizon = config_.horizon();

  // Transmission opportunities of one cycle, in slot order.
  ws.firings.clear();
  for (std::uint32_t slot = 1; slot <= frame; ++slot)
    if (const auto h = hop_in_slot(slot); h.has_value())
      ws.firings.push_back(
          {slot, *h,
           links.up_probability(
               *h, config_.superframe.absolute_slot_of_uplink(slot))});

  // One-cycle accounting matrices from a dense prefix/suffix sweep.
  //
  //   attempts(x, h): expected transmissions of hop h during a full cycle
  //     entered in state x — the prefix column of state h summed over the
  //     slots where h fires, so a whole cycle's attempt bookkeeping is one
  //     dot product against the entry distribution.
  //
  //   delivered_kernel K: with b = eventual-delivery probabilities at the
  //     cycle's end and u = delivered-attempt mass accrued after it, one
  //     cycle folds backward as u <- K b + P u, b <- P b, where
  //     K = sum over firing slots j of
  //         (column x_j of Prefix_{j-1}) (row x_j of Suffix_j),
  //     Prefix_{j-1} = M_1..M_{j-1} and Suffix_j = M_j..M_F.
  ensure_zeroed(ws.prefix, dim, dim);
  for (std::size_t i = 0; i < dim; ++i) ws.prefix(i, i) = 1.0;
  ensure_zeroed(ws.prefix_next, dim, dim);
  ensure_zeroed(ws.attempts, dim, hops);
  ws.prefix_columns.resize(ws.firings.size() * dim);
  for (std::size_t i = 0; i < ws.firings.size(); ++i) {
    const SolveWorkspace::Firing& f = ws.firings[i];
    double* column = ws.prefix_columns.data() + i * dim;
    for (std::size_t r = 0; r < dim; ++r) {
      column[r] = ws.prefix(r, f.hop);
      ws.attempts(r, f.hop) += column[r];
    }
    linalg::left_multiply_batch_into(ws.prefix, slots[f.slot - 1],
                                     ws.prefix_next);
    std::swap(ws.prefix, ws.prefix_next);
  }

  ensure_zeroed(ws.delivered_kernel, dim, dim);
  ensure_zeroed(ws.suffix, dim, dim);
  for (std::size_t i = 0; i < dim; ++i) ws.suffix(i, i) = 1.0;
  ensure_zeroed(ws.suffix_next, dim, dim);
  for (std::size_t i = ws.firings.size(); i-- > 0;) {
    const SolveWorkspace::Firing& f = ws.firings[i];
    const linalg::CsrMatrix& step = slots[f.slot - 1];
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c) ws.suffix_next(r, c) = 0.0;
    for (std::size_t r = 0; r < dim; ++r)
      step.for_each_in_row(r, [&](std::size_t k, double v) {
        for (std::size_t c = 0; c < dim; ++c)
          ws.suffix_next(r, c) += v * ws.suffix(k, c);
      });
    std::swap(ws.suffix, ws.suffix_next);
    const double* column = ws.prefix_columns.data() + i * dim;
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        ws.delivered_kernel(r, c) += column[r] * ws.suffix(f.hop, c);
  }

  result.cycle_probabilities.assign(interval, 0.0);
  result.expected_transmissions_per_hop.assign(hops, 0.0);
  result.discard_probability = 0.0;
  result.expected_transmissions = 0.0;
  result.expected_transmissions_delivered = 0.0;
  result.trajectory_stride = frame;
  result.diagnostics = SolverDiagnostics{};
  result.goal_trajectory.resize(interval + 1);
  std::size_t trajectory_entry = 0;
  const auto record_trajectory = [&] {
    result.goal_trajectory[trajectory_entry++].assign(
        result.cycle_probabilities.begin(), result.cycle_probabilities.end());
  };
  record_trajectory();

  ensure_zeroed(ws.p, dim);
  ws.p[0] = 1.0;
  ensure_zeroed(ws.p_next, dim);
  double goal_mass_seen = 0.0;
  for (std::uint32_t cycle = 0; cycle < interval; ++cycle) {
    if (static_cast<std::uint64_t>(cycle + 1) * frame <= ttl) {
      // Full pre-TTL cycle: attempts via the accounting matrix, then one
      // product advance in place of `frame` per-slot steps.
      for (std::size_t h = 0; h < hops; ++h) {
        double a = 0.0;
        for (std::size_t x = 0; x < dim; ++x) a += ws.p[x] * ws.attempts(x, h);
        result.expected_transmissions_per_hop[h] += a;
        result.expected_transmissions += a;
      }
      // p <- p^T * product, the arithmetic of CsrMatrix::left_multiply
      // replayed into the ping-pong buffer.
      for (std::size_t i = 0; i < dim; ++i) ws.p_next[i] = 0.0;
      for (std::size_t r = 0; r < dim; ++r) {
        const double xr = ws.p[r];
        if (xr == 0.0) continue;
        product.for_each_in_row(
            r, [&](std::size_t c, double v) { ws.p_next[c] += xr * v; });
      }
      std::swap(ws.p, ws.p_next);
    } else {
      // The cycle the TTL cuts through runs per-slot so the discard lands
      // on the exact slot; cycles past the TTL fall straight through.
      for (std::uint32_t s = 1; s <= frame; ++s) {
        const std::uint32_t slot = cycle * frame + s;
        if (slot > ttl) break;
        if (const auto firing = hop_in_slot(slot); firing.has_value()) {
          const std::size_t h = *firing;
          const double ps = links.up_probability(
              h, config_.superframe.absolute_slot_of_uplink(slot));
          result.expected_transmissions += ws.p[h];
          result.expected_transmissions_per_hop[h] += ws.p[h];
          const double moved = ws.p[h] * ps;
          ws.p[h] -= moved;
          if (h + 1 == hops)
            ws.p[goal] += moved;
          else
            ws.p[h + 1] += moved;
        }
        if (slot == ttl) {
          for (std::size_t h = 0; h < hops; ++h) {
            result.discard_probability += ws.p[h];
            ws.p[h] = 0.0;
          }
        }
      }
    }
    result.cycle_probabilities[cycle] = ws.p[goal] - goal_mass_seen;
    goal_mass_seen = ws.p[goal];
    record_trajectory();
  }
  // When the TTL coincides with a product-advanced cycle boundary the
  // expired mass never passed a per-slot discard; sweep it now.
  for (std::size_t h = 0; h < hops; ++h) {
    result.discard_probability += ws.p[h];
    ws.p[h] = 0.0;
  }

  // Delivered-attempt accounting, folded backward cycle-by-cycle.  b
  // starts as the goal indicator at the TTL slot (transient mass there is
  // lost, so its delivery probability is already 0); the TTL cycle runs
  // per-slot, every earlier cycle collapses through K and the product.
  {
    WHART_TIMER("hart.stage.tail_solve.ns");
    ensure_zeroed(ws.b, dim);
    ws.b[goal] = 1.0;
    ensure_zeroed(ws.u, dim);
    const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
    for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
      if (const auto firing = hop_in_slot(slot); firing.has_value()) {
        const std::size_t h = *firing;
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t target = h + 1 == hops ? goal : h + 1;
        const double b_before = ps * ws.b[target] + (1.0 - ps) * ws.b[h];
        ws.u[h] = ps * ws.u[target] + (1.0 - ps) * ws.u[h] + b_before;
        ws.b[h] = b_before;
      }
    }
    ensure_zeroed(ws.u_next, dim);
    ensure_zeroed(ws.b_next, dim);
    for (std::uint32_t cycle = ttl_cycle; cycle-- > 0;) {
      for (std::size_t i = 0; i < dim; ++i) {
        ws.u_next[i] = 0.0;
        ws.b_next[i] = 0.0;
      }
      for (std::size_t r = 0; r < dim; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
          acc += ws.delivered_kernel(r, c) * ws.b[c];
        ws.u_next[r] = acc;
      }
      for (std::size_t r = 0; r < dim; ++r)
        product.for_each_in_row(r, [&](std::size_t c, double v) {
          ws.u_next[r] += v * ws.u[c];
          ws.b_next[r] += v * ws.b[c];
        });
      std::swap(ws.u, ws.u_next);
      std::swap(ws.b, ws.b_next);
    }
    result.expected_transmissions_delivered = ws.u[0];
  }

  result.diagnostics.dtmc_states = dim;
  result.diagnostics.transient_states = hops;
  result.diagnostics.absorbing_states = 2;
  result.diagnostics.forward_steps = horizon;
  result.diagnostics.kernel = TransientKernel::kSuperframeProduct;
  const double goal_mass =
      std::accumulate(result.cycle_probabilities.begin(),
                      result.cycle_probabilities.end(), 0.0);
  result.diagnostics.mass_residual =
      std::abs(1.0 - goal_mass - result.discard_probability);
  WHART_COUNT("hart.path_solve.count");
  WHART_COUNT("hart.path_solve.superframe");
  WHART_OBSERVE("hart.path_solve.states", dim);
  WHART_EVENT(kSolveDone, "hart.path_solve", dim, 0);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    result.diagnostics.solve_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    WHART_OBSERVE("hart.path_solve.ns", result.diagnostics.solve_ns);
  }
#endif
}

void PathModel::analyze_superframe_batch_into(
    const std::vector<markov::CsrPattern>& slot_patterns,
    const markov::CsrPattern& product_pattern, BatchSolveWorkspace& ws,
    std::span<PathTransientResult* const> results) const {
  // Common batch widths run the fixed-width instantiation (flat-unrolled
  // lane loops); anything else takes the runtime-width fallback.  Same
  // arithmetic either way — the dispatch only changes code generation.
  switch (results.size()) {
    case 4:
      analyze_superframe_batch_lanes<4>(slot_patterns, product_pattern, ws,
                                        results);
      break;
    case 8:
      analyze_superframe_batch_lanes<8>(slot_patterns, product_pattern, ws,
                                        results);
      break;
    case 16:
      analyze_superframe_batch_lanes<16>(slot_patterns, product_pattern, ws,
                                         results);
      break;
    default:
      analyze_superframe_batch_lanes<0>(slot_patterns, product_pattern, ws,
                                        results);
      break;
  }
}

template <std::size_t kLanes>
void PathModel::analyze_superframe_batch_lanes(
    const std::vector<markov::CsrPattern>& slot_patterns,
    const markov::CsrPattern& product_pattern, BatchSolveWorkspace& ws,
    std::span<PathTransientResult* const> results) const {
  WHART_SPAN("path_solve_batch");
  namespace simd = linalg::simd;
  const std::size_t lanes = kLanes == 0 ? results.size() : kLanes;
  expects(lanes >= 1, "at least one lane");
  expects(ws.ps.size() == ws.firings.size() * lanes,
          "one success probability per firing per lane");
  expects(ws.product_values.size() == product_pattern.nonzeros() * lanes,
          "product values refilled for this lane count");
#ifndef WHART_OBS_DISABLED
  const bool timed = common::obs::metrics_enabled();
  const auto solve_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
#endif
  const std::size_t hops = config_.hop_count();
  const std::size_t dim = hops + 2;
  const std::size_t goal = hops;
  const std::uint32_t frame = config_.superframe.uplink_slots;
  const std::uint32_t ttl = config_.effective_ttl();
  const std::uint32_t interval = config_.reporting_interval;
  const std::uint32_t horizon = config_.horizon();

  // ps lanes of the firing scheduled in global uplink slot `slot` (the
  // firings list spans one frame; cycle-stationary lanes repeat it).
  const auto firing_lanes = [&](std::uint32_t slot) -> const double* {
    const std::uint32_t in_frame = ((slot - 1) % frame) + 1;
    for (std::size_t i = 0; i < ws.firings.size(); ++i)
      if (ws.firings[i].slot == in_frame) return ws.ps.data() + i * lanes;
    return nullptr;
  };

  // One-cycle accounting structures from the dense prefix/suffix sweep of
  // analyze_superframe_into, each entry widened to a lane array; the
  // per-lane accumulation order matches the scalar sweep entry for entry.
  ws.prefix.assign(dim * dim * lanes, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    simd::fill(ws.prefix.data() + (i * dim + i) * lanes, 1.0, lanes);
  ws.prefix_next.assign(dim * dim * lanes, 0.0);
  ws.attempts.assign(dim * hops * lanes, 0.0);
  ws.prefix_columns.resize(ws.firings.size() * dim * lanes);
  for (std::size_t i = 0; i < ws.firings.size(); ++i) {
    const BatchSolveWorkspace::Firing& f = ws.firings[i];
    double* column = ws.prefix_columns.data() + i * dim * lanes;
    for (std::size_t r = 0; r < dim; ++r) {
      simd::copy(column + r * lanes,
                 ws.prefix.data() + (r * dim + f.hop) * lanes, lanes);
      simd::add(ws.attempts.data() + (r * hops + f.hop) * lanes,
                column + r * lanes, lanes);
    }
    // prefix <- prefix * M_slot: the arithmetic of left_multiply_batch_into
    // (accumulation ascending over the slot matrix's rows), lane-wide.
    const markov::CsrPattern& step = slot_patterns[f.slot - 1];
    const std::vector<double>& step_values = ws.slot_values[f.slot - 1];
    simd::fill(ws.prefix_next.data(), 0.0, dim * dim * lanes);
    for (std::size_t k = 0; k < dim; ++k)
      for (std::size_t idx = step.row_start[k]; idx < step.row_start[k + 1];
           ++idx) {
        const std::size_t c = step.col_index[idx];
        const double* value = step_values.data() + idx * lanes;
        for (std::size_t r = 0; r < dim; ++r)
          simd::mul_add(ws.prefix_next.data() + (r * dim + c) * lanes,
                        ws.prefix.data() + (r * dim + k) * lanes, value,
                        lanes);
      }
    std::swap(ws.prefix, ws.prefix_next);
  }

  ws.delivered_kernel.assign(dim * dim * lanes, 0.0);
  ws.suffix.assign(dim * dim * lanes, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    simd::fill(ws.suffix.data() + (i * dim + i) * lanes, 1.0, lanes);
  ws.suffix_next.assign(dim * dim * lanes, 0.0);
  for (std::size_t i = ws.firings.size(); i-- > 0;) {
    const BatchSolveWorkspace::Firing& f = ws.firings[i];
    const markov::CsrPattern& step = slot_patterns[f.slot - 1];
    const std::vector<double>& step_values = ws.slot_values[f.slot - 1];
    simd::fill(ws.suffix_next.data(), 0.0, dim * dim * lanes);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t idx = step.row_start[r]; idx < step.row_start[r + 1];
           ++idx) {
        const std::size_t k = step.col_index[idx];
        const double* value = step_values.data() + idx * lanes;
        for (std::size_t c = 0; c < dim; ++c)
          simd::mul_add(ws.suffix_next.data() + (r * dim + c) * lanes, value,
                        ws.suffix.data() + (k * dim + c) * lanes, lanes);
      }
    std::swap(ws.suffix, ws.suffix_next);
    const double* column = ws.prefix_columns.data() + i * dim * lanes;
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        simd::mul_add(ws.delivered_kernel.data() + (r * dim + c) * lanes,
                      column + r * lanes,
                      ws.suffix.data() + (f.hop * dim + c) * lanes, lanes);
  }

  for (PathTransientResult* result : results) {
    result->cycle_probabilities.assign(interval, 0.0);
    result->expected_transmissions_per_hop.assign(hops, 0.0);
    result->discard_probability = 0.0;
    result->expected_transmissions = 0.0;
    result->expected_transmissions_delivered = 0.0;
    result->trajectory_stride = frame;
    result->diagnostics = SolverDiagnostics{};
    result->goal_trajectory.resize(interval + 1);
  }
  std::size_t trajectory_entry = 0;
  const auto record_trajectory = [&] {
    for (PathTransientResult* result : results)
      result->goal_trajectory[trajectory_entry].assign(
          result->cycle_probabilities.begin(),
          result->cycle_probabilities.end());
    ++trajectory_entry;
  };
  record_trajectory();

  ws.p.assign(dim * lanes, 0.0);
  simd::fill(ws.p.data(), 1.0, lanes);
  ws.p_next.assign(dim * lanes, 0.0);
  ws.lane_scratch.assign(lanes, 0.0);
  ws.goal_seen.assign(lanes, 0.0);
  for (std::uint32_t cycle = 0; cycle < interval; ++cycle) {
    if (static_cast<std::uint64_t>(cycle + 1) * frame <= ttl) {
      // Full pre-TTL cycle: attempts via the accounting matrix, then one
      // product advance in place of `frame` per-slot steps.
      for (std::size_t h = 0; h < hops; ++h) {
        simd::fill(ws.lane_scratch.data(), 0.0, lanes);
        for (std::size_t x = 0; x < dim; ++x)
          simd::mul_add(ws.lane_scratch.data(), ws.p.data() + x * lanes,
                        ws.attempts.data() + (x * hops + h) * lanes, lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
          results[l]->expected_transmissions_per_hop[h] += ws.lane_scratch[l];
          results[l]->expected_transmissions += ws.lane_scratch[l];
        }
      }
      // p <- p^T * product.  The scalar core skips rows with p[r] == 0;
      // lanes cannot branch independently, and the skipped contributions
      // are exact zeros, so every row is visited.
      simd::fill(ws.p_next.data(), 0.0, dim * lanes);
      for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t idx = product_pattern.row_start[r];
             idx < product_pattern.row_start[r + 1]; ++idx)
          simd::mul_add(
              ws.p_next.data() + product_pattern.col_index[idx] * lanes,
              ws.p.data() + r * lanes,
              ws.product_values.data() + idx * lanes, lanes);
      std::swap(ws.p, ws.p_next);
    } else {
      // The cycle the TTL cuts through runs per-slot so the discard lands
      // on the exact slot; cycles past the TTL fall straight through.
      for (std::uint32_t s = 1; s <= frame; ++s) {
        const std::uint32_t slot = cycle * frame + s;
        if (slot > ttl) break;
        if (const double* ps_lanes = firing_lanes(slot); ps_lanes != nullptr) {
          const std::size_t h = hop_in_slot(slot).value();
          const std::size_t target = h + 1 == hops ? goal : h + 1;
          for (std::size_t l = 0; l < lanes; ++l) {
            const double ph = ws.p[h * lanes + l];
            results[l]->expected_transmissions += ph;
            results[l]->expected_transmissions_per_hop[h] += ph;
            const double moved = ph * ps_lanes[l];
            ws.p[h * lanes + l] -= moved;
            ws.p[target * lanes + l] += moved;
          }
        }
        if (slot == ttl) {
          for (std::size_t h = 0; h < hops; ++h)
            for (std::size_t l = 0; l < lanes; ++l) {
              results[l]->discard_probability += ws.p[h * lanes + l];
              ws.p[h * lanes + l] = 0.0;
            }
        }
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      results[l]->cycle_probabilities[cycle] =
          ws.p[goal * lanes + l] - ws.goal_seen[l];
      ws.goal_seen[l] = ws.p[goal * lanes + l];
    }
    record_trajectory();
  }
  // When the TTL coincides with a product-advanced cycle boundary the
  // expired mass never passed a per-slot discard; sweep it now.
  for (std::size_t h = 0; h < hops; ++h)
    for (std::size_t l = 0; l < lanes; ++l) {
      results[l]->discard_probability += ws.p[h * lanes + l];
      ws.p[h * lanes + l] = 0.0;
    }

  // Delivered-attempt accounting, folded backward cycle-by-cycle exactly
  // as in the scalar core.
  {
    WHART_TIMER("hart.stage.tail_solve.ns");
    ws.b.assign(dim * lanes, 0.0);
    simd::fill(ws.b.data() + goal * lanes, 1.0, lanes);
    ws.u.assign(dim * lanes, 0.0);
    const std::uint32_t ttl_cycle = (ttl - 1) / frame;  // 0-based
    for (std::uint32_t slot = ttl; slot > ttl_cycle * frame; --slot) {
      if (const double* ps_lanes = firing_lanes(slot); ps_lanes != nullptr) {
        const std::size_t h = hop_in_slot(slot).value();
        const std::size_t target = h + 1 == hops ? goal : h + 1;
        for (std::size_t l = 0; l < lanes; ++l) {
          const double ps = ps_lanes[l];
          const double b_before = ps * ws.b[target * lanes + l] +
                                  (1.0 - ps) * ws.b[h * lanes + l];
          ws.u[h * lanes + l] = ps * ws.u[target * lanes + l] +
                                (1.0 - ps) * ws.u[h * lanes + l] + b_before;
          ws.b[h * lanes + l] = b_before;
        }
      }
    }
    ws.u_next.assign(dim * lanes, 0.0);
    ws.b_next.assign(dim * lanes, 0.0);
    for (std::uint32_t cycle = ttl_cycle; cycle-- > 0;) {
      simd::fill(ws.u_next.data(), 0.0, dim * lanes);
      simd::fill(ws.b_next.data(), 0.0, dim * lanes);
      for (std::size_t r = 0; r < dim; ++r) {
        simd::fill(ws.lane_scratch.data(), 0.0, lanes);
        for (std::size_t c = 0; c < dim; ++c)
          simd::mul_add(ws.lane_scratch.data(),
                        ws.delivered_kernel.data() + (r * dim + c) * lanes,
                        ws.b.data() + c * lanes, lanes);
        simd::copy(ws.u_next.data() + r * lanes, ws.lane_scratch.data(),
                   lanes);
      }
      for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t idx = product_pattern.row_start[r];
             idx < product_pattern.row_start[r + 1]; ++idx) {
          const std::size_t c = product_pattern.col_index[idx];
          const double* value = ws.product_values.data() + idx * lanes;
          simd::mul_add(ws.u_next.data() + r * lanes, value,
                        ws.u.data() + c * lanes, lanes);
          simd::mul_add(ws.b_next.data() + r * lanes, value,
                        ws.b.data() + c * lanes, lanes);
        }
      std::swap(ws.u, ws.u_next);
      std::swap(ws.b, ws.b_next);
    }
    for (std::size_t l = 0; l < lanes; ++l)
      results[l]->expected_transmissions_delivered = ws.u[l];
  }

  for (PathTransientResult* result : results) {
    result->diagnostics.dtmc_states = dim;
    result->diagnostics.transient_states = hops;
    result->diagnostics.absorbing_states = 2;
    result->diagnostics.forward_steps = horizon;
    result->diagnostics.kernel = TransientKernel::kSuperframeProduct;
    const double goal_mass =
        std::accumulate(result->cycle_probabilities.begin(),
                        result->cycle_probabilities.end(), 0.0);
    result->diagnostics.mass_residual =
        std::abs(1.0 - goal_mass - result->discard_probability);
  }
  WHART_COUNT_N("hart.path_solve.count", lanes);
  WHART_COUNT_N("hart.path_solve.superframe", lanes);
  WHART_OBSERVE("hart.path_solve.states", dim);
  WHART_EVENT(kSolveDone, "hart.path_solve", dim, 0);
#ifndef WHART_OBS_DISABLED
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - solve_start;
    const auto total_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    // Each lane's reported solve time is its amortized share of the batch.
    for (PathTransientResult* result : results)
      result->diagnostics.solve_ns = total_ns / lanes;
    WHART_OBSERVE("hart.path_solve.ns", total_ns);
  }
#endif
}

markov::Dtmc PathModel::to_dtmc(const LinkProbabilityProvider& links) const {
  expects(links.hop_count() >= config_.hop_count(),
          "provider covers every hop");
  const std::size_t hops = config_.hop_count();
  const std::uint32_t ttl = config_.effective_ttl();
  const std::size_t discard = num_states_ - 1;
  const auto goal_index = [&](std::uint32_t cycle_0based) {
    return num_transient_ + cycle_0based;
  };

  std::vector<linalg::Triplet> transitions;
  std::vector<std::string> names(num_states_);

  // Transient states and their outgoing transitions.
  for (std::uint32_t t = 0; t < ttl; ++t) {
    const std::uint32_t slot = t + 1;
    const std::optional<std::size_t> firing = hop_in_slot(slot);
    for (std::size_t h = 0; h < hops; ++h) {
      const std::size_t from = state_index_[t][h];
      if (from == kUnreachable) continue;

      // Paper-style descriptor: nodes 1..h+1 hold a copy aged t+1.
      std::string name = "(";
      for (std::size_t node = 0; node < hops; ++node) {
        if (node > 0) name += ",";
        name += node <= h ? std::to_string(t + 1) : "-";
      }
      name += ")";
      names[from] = std::move(name);

      const auto continuation = [&](std::size_t next_h) -> std::size_t {
        if (t + 1 >= ttl) return discard;  // TTL hits zero next step
        const std::size_t idx = state_index_[t + 1][next_h];
        ensures(idx != kUnreachable, "successor state was enumerated");
        return idx;
      };

      if (firing == h) {
        const double ps = links.up_probability(
            h, config_.superframe.absolute_slot_of_uplink(slot));
        const std::size_t success_target =
            h + 1 == hops
                ? goal_index((slot - 1) / config_.superframe.uplink_slots)
                : continuation(h + 1);
        if (ps > 0.0)
          transitions.push_back({from, success_target, ps});
        if (ps < 1.0)
          transitions.push_back({from, continuation(h), 1.0 - ps});
      } else {
        transitions.push_back({from, continuation(h), 1.0});
      }
    }
  }

  // Absorbing states.
  for (std::uint32_t i = 0; i < config_.reporting_interval; ++i) {
    transitions.push_back({goal_index(i), goal_index(i), 1.0});
    names[goal_index(i)] = goal_state_name(i + 1);
  }
  transitions.push_back({discard, discard, 1.0});
  names[discard] = "Discard";

  return markov::Dtmc(num_states_, std::move(transitions), std::move(names));
}

std::string PathModel::goal_state_name(std::uint32_t cycle) const {
  expects(cycle >= 1 && cycle <= config_.reporting_interval,
          "cycle in 1..Is");
  return "R" + std::to_string(config_.gateway_slot() +
                              (cycle - 1) * config_.superframe.uplink_slots);
}

namespace {

/// Verification-harness adapter: `inject_stale_skeleton` biases hop 0's
/// success probability, emulating a refill that wrote stale values into
/// the skeleton's structures.  Only the skeleton path wraps providers
/// with this, so fresh and refilled solves diverge and the differential
/// oracle's refill arm must notice.
class StaleLinks final : public LinkProbabilityProvider {
 public:
  StaleLinks(const LinkProbabilityProvider& base, double delta) noexcept
      : base_(base), delta_(delta) {}

  [[nodiscard]] double up_probability(
      std::size_t hop, std::uint64_t absolute_slot) const override {
    double p = base_.up_probability(hop, absolute_slot);
    if (hop == 0) p = std::clamp(p + delta_, 0.0, 1.0);
    return p;
  }
  [[nodiscard]] std::size_t hop_count() const override {
    return base_.hop_count();
  }
  [[nodiscard]] bool cycle_stationary() const override {
    return base_.cycle_stationary();
  }

 private:
  const LinkProbabilityProvider& base_;
  double delta_;
};

/// Stage-attribution clock for the skeleton constructor: the symbolic
/// build spends its time in the member-initializer list, so the start
/// timestamp is taken while the first member initializes and the
/// elapsed time is observed at the end of the constructor body.
thread_local std::chrono::steady_clock::time_point g_skeleton_build_start;

PathModelConfig mark_skeleton_build(PathModelConfig config) {
  g_skeleton_build_start = std::chrono::steady_clock::now();
  return config;
}

/// Generic-probability slot patterns: any ps strictly inside (0, 1)
/// yields the full two-entries-per-firing-row sparsity.
std::vector<markov::CsrPattern> capture_slot_patterns(const PathModel& model) {
  const SteadyStateLinks generic(
      std::vector<double>(model.config().hop_count(), 0.5));
  const std::vector<linalg::CsrMatrix> slots = model.slot_matrices(generic);
  std::vector<markov::CsrPattern> patterns;
  patterns.reserve(slots.size());
  for (const linalg::CsrMatrix& m : slots)
    patterns.push_back(markov::CsrPattern::of(m));
  return patterns;
}

}  // namespace

PathModelSkeleton::PathModelSkeleton(PathModelConfig config)
    : model_(mark_skeleton_build(std::move(config))),
      slot_patterns_(capture_slot_patterns(model_)),
      chain_(slot_patterns_) {
  // Provenance: for every firing uplink slot, locate the values indices
  // of the two mutable entries of row `hop` — (hop, hop) carries 1 - ps
  // and (hop, target) carries ps; target (hop + 1 or Goal) is always a
  // higher column, so both are found by a scan of the sorted row.
  const std::size_t hops = model_.config().hop_count();
  for (std::uint32_t slot = 1; slot <= model_.config().superframe.uplink_slots;
       ++slot) {
    const std::optional<std::size_t> firing = model_.hop_in_slot(slot);
    if (!firing.has_value()) continue;
    const std::size_t h = *firing;
    const std::size_t target = h + 1 == hops ? hops : h + 1;
    const markov::CsrPattern& pattern = slot_patterns_[slot - 1];
    SlotProvenance prov;
    prov.slot = slot;
    prov.hop = h;
    bool found_failure = false;
    bool found_success = false;
    for (std::size_t k = pattern.row_start[h]; k < pattern.row_start[h + 1];
         ++k) {
      if (pattern.col_index[k] == h) {
        prov.failure_index = k;
        found_failure = true;
      } else if (pattern.col_index[k] == target) {
        prov.success_index = k;
        found_success = true;
      }
    }
    ensures(found_failure && found_success,
            "firing row carries both its success and failure entries");
    provenance_.push_back(prov);
  }
  // Compile the SoA replay plan with the rest of the symbolic phase: the
  // batch refill then walks a flat op list instead of re-deriving the
  // Gustavson bookkeeping on every batch.
  batch_refill_ =
      std::make_unique<const markov::BatchRefill>(chain_, slot_patterns_);
  WHART_COUNT("hart.skeleton.builds");
  WHART_OBSERVE(
      "hart.stage.skeleton_build.ns",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - g_skeleton_build_start)
              .count()));
}

void PathModelSkeleton::prime(SolveWorkspace& ws) const {
  ws.slots.clear();
  ws.slots.reserve(slot_patterns_.size());
  for (const markov::CsrPattern& pattern : slot_patterns_)
    ws.slots.push_back(linalg::CsrMatrix::from_parts(
        pattern.rows, pattern.cols, pattern.row_start, pattern.col_index,
        std::vector<double>(pattern.nonzeros(), 1.0)));
  const markov::CsrPattern& product = chain_.pattern();
  ws.product = linalg::CsrMatrix::from_parts(
      product.rows, product.cols, product.row_start, product.col_index,
      std::vector<double>(product.nonzeros(), 0.0));
  ws.primed = true;
  ws.primed_config = model_.config();
}

void PathModelSkeleton::analyze_into(const LinkProbabilityProvider& links,
                                     const PathAnalysisOptions& options,
                                     SolveWorkspace& ws,
                                     PathTransientResult& result) const {
  expects(links.hop_count() >= config().hop_count(),
          "provider covers every hop");
  if (channel_enlarged(links, config().hop_count())) {
    // The skeleton's patterns describe the compact i.i.d. chain; a
    // multi-state channel enlarges the state space, so refilling cannot
    // reproduce a fresh build — solve fresh through the channel core.
    WHART_COUNT("hart.skeleton.refill_fallback");
    result = model_.analyze(links, options);
    return;
  }
  const StaleLinks stale(links, options.inject_stale_skeleton);
  const LinkProbabilityProvider& provider =
      options.inject_stale_skeleton != 0.0
          ? static_cast<const LinkProbabilityProvider&>(stale)
          : links;

  if (options.kernel == TransientKernel::kSuperframeProduct &&
      provider.cycle_stationary()) {
    if (options.inject_product_error != 0.0) {
      // Product-entry injection perturbs a freshly built kernel; there
      // is no refilled equivalent, so take the fresh path.
      WHART_COUNT("hart.skeleton.refill_fallback");
      result = model_.analyze(provider, options);
      return;
    }
    // A firing probability of exactly 0 or 1 drops an entry from the
    // assembled slot matrix, so the captured generic pattern no longer
    // matches a fresh build — fall back rather than refill a structure
    // the fresh path would not produce.
    const net::SuperframeConfig& superframe = model_.config().superframe;
    for (const SlotProvenance& prov : provenance_) {
      const double ps = provider.up_probability(
          prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
      if (!(ps > 0.0) || !(ps < 1.0)) {
        WHART_COUNT("hart.skeleton.refill_fallback");
        result = model_.analyze(provider, options);
        return;
      }
    }
    if (!ws.primed || !(ws.primed_config == model_.config())) prime(ws);
    {
      WHART_TIMER("hart.stage.refill.ns");
      for (const SlotProvenance& prov : provenance_) {
        const double ps = provider.up_probability(
            prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
        const std::span<double> values = ws.slots[prov.slot - 1].values();
        values[prov.failure_index] = 1.0 - ps;
        values[prov.success_index] = ps;
      }
      chain_.refill(ws.slots, ws.chain_arena, ws.product.values());
    }
    WHART_COUNT("hart.skeleton.refills");
    model_.analyze_superframe_into(provider, ws.slots, ws.product, ws, result);
    return;
  }
  if (options.kernel == TransientKernel::kSuperframeProduct)
    WHART_COUNT("hart.path_solve.kernel_fallback");
  WHART_COUNT("hart.skeleton.refills");
  model_.analyze_per_slot_into(provider, ws, result);
}

bool PathModelSkeleton::analyze_incremental_into(
    const LinkProbabilityProvider& links, const PathAnalysisOptions& options,
    std::span<const std::size_t> changed_hops,
    markov::IncrementalProduct& product, SolveWorkspace& ws,
    PathTransientResult& result) const {
  expects(links.hop_count() >= config().hop_count(),
          "provider covers every hop");
  // The incremental path exists only where the cycle product does; every
  // regime analyze_into would route elsewhere (per-slot kernel,
  // non-stationary links, channel enlargement) or solve fresh (refill
  // injections, degenerate ps) is declined here so the caller's fresh
  // fallback reproduces analyze_into's behavior exactly.
  if (options.kernel != TransientKernel::kSuperframeProduct ||
      !links.cycle_stationary() ||
      channel_enlarged(links, config().hop_count()) ||
      options.inject_product_error != 0.0 ||
      options.inject_stale_skeleton != 0.0) {
    WHART_COUNT("hart.whatif.incremental_fallback");
    return false;
  }
  const net::SuperframeConfig& superframe = model_.config().superframe;
  for (const SlotProvenance& prov : provenance_) {
    const double ps = links.up_probability(
        prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
    if (!(ps > 0.0) || !(ps < 1.0)) {
      WHART_COUNT("hart.whatif.incremental_fallback");
      return false;
    }
  }
  if (!ws.primed || !(ws.primed_config == model_.config())) prime(ws);
  {
    WHART_TIMER("hart.stage.incremental_refill.ns");
    if (!product.seeded()) {
      // Cold start: write every firing value and seed the partial-value
      // cache with one full replay.
      for (const SlotProvenance& prov : provenance_) {
        const double ps = links.up_probability(
            prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
        const std::span<double> values = ws.slots[prov.slot - 1].values();
        values[prov.failure_index] = 1.0 - ps;
        values[prov.success_index] = ps;
      }
      product.refill(ws.slots);
      WHART_COUNT("hart.whatif.seeds");
    } else {
      for (const SlotProvenance& prov : provenance_) {
        bool changed = false;
        for (std::size_t hop : changed_hops) changed |= prov.hop == hop;
        if (!changed) continue;
        const double ps = links.up_probability(
            prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
        const std::span<double> values = ws.slots[prov.slot - 1].values();
        values[prov.failure_index] = 1.0 - ps;
        values[prov.success_index] = ps;
        product.update(prov.slot - 1, prov.failure_index);
        product.update(prov.slot - 1, prov.success_index);
      }
      product.propagate(ws.slots);
      WHART_COUNT("hart.whatif.incremental_solves");
    }
    const std::span<const double> values = product.values();
    std::copy(values.begin(), values.end(), ws.product.values().begin());
    if (options.inject_stale_product_row != 0.0) {
      // Emulate a row the targeted re-accumulation failed to replay.
      const markov::CsrPattern& pattern = chain_.pattern();
      const std::span<double> out = ws.product.values();
      for (std::size_t k = pattern.row_start[0]; k < pattern.row_start[1]; ++k)
        out[k] += options.inject_stale_product_row;
    }
  }
  model_.analyze_superframe_into(links, ws.slots, ws.product, ws, result);
  return true;
}

void PathModelSkeleton::prime_batch(BatchSolveWorkspace& ws,
                                    std::size_t lanes) const {
  ws.slot_values.resize(slot_patterns_.size());
  for (std::size_t s = 0; s < slot_patterns_.size(); ++s)
    ws.slot_values[s].assign(slot_patterns_[s].nonzeros() * lanes, 1.0);
  ws.product_values.assign(chain_.pattern().nonzeros() * lanes, 0.0);
  ws.primed = true;
  ws.primed_lanes = lanes;
  ws.primed_config = model_.config();
}

void PathModelSkeleton::analyze_batch_into(
    std::span<const LinkProbabilityProvider* const> links,
    const PathAnalysisOptions& options, BatchSolveWorkspace& ws,
    std::span<PathTransientResult> results) const {
  expects(links.size() == results.size(), "one result per provider");
  const net::SuperframeConfig& superframe = model_.config().superframe;

  // Partition lanes: a lane is batchable when the SoA core reproduces its
  // scalar refill exactly — superframe kernel, cycle-stationary provider,
  // no fault injections that perturb the refill path, and no degenerate
  // firing probability (ps of 0 or 1 changes the captured pattern).
  ws.batched_index.clear();
  ws.scalar_index.clear();
  // The scan stashes every candidate's firing probabilities
  // (candidate-major) so the refill gather below reuses them instead of
  // querying each provider a second time.
  ws.ps_scan.resize(links.size() * provenance_.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    expects(links[i]->hop_count() >= config().hop_count(),
            "provider covers every hop");
    bool batchable = options.kernel == TransientKernel::kSuperframeProduct &&
                     options.inject_product_error == 0.0 &&
                     options.inject_stale_skeleton == 0.0 &&
                     links[i]->cycle_stationary() &&
                     !channel_enlarged(*links[i], config().hop_count());
    if (batchable)
      for (std::size_t fi = 0; fi < provenance_.size(); ++fi) {
        const SlotProvenance& prov = provenance_[fi];
        const double ps = links[i]->up_probability(
            prov.hop, superframe.absolute_slot_of_uplink(prov.slot));
        ws.ps_scan[i * provenance_.size() + fi] = ps;
        if (!(ps > 0.0) || !(ps < 1.0)) {
          batchable = false;
          break;
        }
      }
    (batchable ? ws.batched_index : ws.scalar_index).push_back(i);
  }
  // A batch needs at least two lanes to amortize anything; below that,
  // every point takes the scalar refill path.
  if (ws.batched_index.size() < 2) {
    WHART_COUNT_N("hart.batch.remainder_points", links.size());
    for (std::size_t i = 0; i < links.size(); ++i)
      analyze_into(*links[i], options, ws.scalar, results[i]);
    return;
  }
  if (!ws.scalar_index.empty()) {
    WHART_COUNT_N("hart.batch.remainder_points", ws.scalar_index.size());
    for (std::size_t i : ws.scalar_index)
      analyze_into(*links[i], options, ws.scalar, results[i]);
  }

  const std::size_t lanes = ws.batched_index.size();
  if (!ws.primed || ws.primed_lanes != lanes ||
      !(ws.primed_config == model_.config()))
    prime_batch(ws, lanes);
  WHART_COUNT("hart.batch.refills");
  WHART_COUNT_N("hart.batch.lanes_filled", lanes);
  {
    WHART_TIMER("hart.stage.batch_refill.ns");
    // One SoA refill prices every lane: gather each firing's per-lane
    // success probabilities into the slot value lanes, then replay the
    // cycle-product chain once for all lanes.  provenance_ is in slot
    // order, so ws.firings matches the scalar core's firing order.
    ws.firings.clear();
    ws.ps.resize(provenance_.size() * lanes);
    for (std::size_t fi = 0; fi < provenance_.size(); ++fi) {
      const SlotProvenance& prov = provenance_[fi];
      ws.firings.push_back({prov.slot, prov.hop});
      std::vector<double>& slot_values = ws.slot_values[prov.slot - 1];
      for (std::size_t l = 0; l < lanes; ++l) {
        const double ps =
            ws.ps_scan[ws.batched_index[l] * provenance_.size() + fi];
        ws.ps[fi * lanes + l] = ps;
        slot_values[prov.failure_index * lanes + l] = 1.0 - ps;
        slot_values[prov.success_index * lanes + l] = ps;
      }
    }
    batch_refill_->refill(ws.slot_values, lanes, ws.chain_arena,
                          std::span<double>(ws.product_values));
  }
  if (options.inject_lane_swap) {
    // Verification-harness injection: cross-lane contamination of the
    // refilled product, the signature of a lane-indexing bug.
    for (std::size_t k = 0; k < chain_.pattern().nonzeros(); ++k)
      std::swap(ws.product_values[k * lanes],
                ws.product_values[k * lanes + 1]);
  }
  ws.result_ptrs.clear();
  for (std::size_t i : ws.batched_index) ws.result_ptrs.push_back(&results[i]);
  model_.analyze_superframe_batch_into(slot_patterns_, chain_.pattern(), ws,
                                       ws.result_ptrs);
}

}  // namespace whart::hart
