#include "whart/common/obs.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace whart::common::obs {

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) noexcept {
  if (index == 0) return 0;
  return std::uint64_t{1} << (index - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << index) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (const Bucket& bucket : buckets) {
    const std::uint64_t next = cumulative + bucket.count;
    if (static_cast<double>(next) >= target && bucket.count > 0) {
      // The log buckets are coarse at the top end; the observed min/max
      // bound the samples more tightly than the bucket edges do.
      const double lo = std::max(static_cast<double>(bucket.lower),
                                 static_cast<double>(min));
      const double hi = std::min(static_cast<double>(bucket.upper),
                                 static_cast<double>(max));
      if (hi <= lo) return lo;
      const double position = (target - static_cast<double>(cumulative)) /
                              static_cast<double>(bucket.count);
      return lo + position * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <typename Map, typename Metric = typename Map::mapped_type::element_type>
Metric& find_or_create(Map& map, std::string_view name, std::mutex& mutex) {
  const std::lock_guard lock(mutex);
  if (const auto it = map.find(name); it != map.end()) return *it->second;
  auto [it, inserted] =
      map.emplace(std::string(name), std::make_unique<Metric>());
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, mutex_);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, mutex_);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, mutex_);
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t in_bucket = histogram->bucket_count(b);
      if (in_bucket == 0) continue;
      h.buckets.push_back({Histogram::bucket_lower_bound(b),
                           Histogram::bucket_upper_bound(b), in_bucket});
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

// ---------------------------------------------------------------------
// Runtime flags.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_events_enabled{true};
}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}
bool events_enabled() noexcept {
  return g_events_enabled.load(std::memory_order_relaxed);
}
void set_events_enabled(bool enabled) noexcept {
  g_events_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Trace clock, epochs and causality ids.
// ---------------------------------------------------------------------

namespace {

/// Epoch shared by every span; advanced by TraceCollector::clear().
std::atomic<std::int64_t> g_epoch_ns{0};

/// Generation counter for epoch-guarded clear() (starts at 1 so a
/// default-constructed TaskLink's epoch 0 never matches a live epoch).
std::atomic<std::uint64_t> g_clear_epoch{1};

std::atomic<std::uint64_t> g_next_span_id{0};
std::atomic<std::uint64_t> g_next_request_id{0};
std::atomic<std::uint64_t> g_next_flow_id{0};

thread_local TraceContext g_trace_context;

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr const char* kPoolTaskSpanName = "pool_task";

}  // namespace

TraceContext current_trace_context() noexcept { return g_trace_context; }

std::uint64_t trace_epoch() noexcept {
  return g_clear_epoch.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    // First use: pin the epoch (benign race — first writer wins).
    std::int64_t expected = 0;
    const std::int64_t now = steady_ns();
    g_epoch_ns.compare_exchange_strong(expected, now,
                                       std::memory_order_relaxed);
    epoch = g_epoch_ns.load(std::memory_order_relaxed);
  }
  const std::int64_t now = steady_ns();
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kGeneric: return "generic";
    case EventKind::kRequestBegin: return "request_begin";
    case EventKind::kRequestEnd: return "request_end";
    case EventKind::kTaskSubmit: return "task_submit";
    case EventKind::kTaskStart: return "task_start";
    case EventKind::kSolveDone: return "solve_done";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kStage: return "stage";
    case EventKind::kContractFailure: return "contract_failure";
    case EventKind::kSamplerTick: return "sampler_tick";
    case EventKind::kTraceClear: return "trace_clear";
  }
  return "unknown";
}

/// One thread's event ring.  `records` grows to kRingCapacity and then
/// wraps (cursor `next`); guarded by `mutex` so drains can read while
/// the owner appends.
struct EventLog::ThreadRing {
  std::mutex mutex;
  std::vector<EventRecord> records;
  std::size_t next = 0;
  std::uint32_t thread_id = 0;
};

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

EventLog::ThreadRing& EventLog::local_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto fresh = std::make_shared<ThreadRing>();
    const std::lock_guard lock(mutex_);
    fresh->thread_id = next_thread_id_++;
    rings_.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

std::uint16_t EventLog::intern(const char* name) {
  const std::lock_guard lock(mutex_);
  if (names_.empty()) {
    names_.push_back("");  // id 0 = unnamed
  }
  const std::string_view key(name);
  if (const auto it = ids_.find(key); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

void EventLog::record(EventKind kind, std::uint16_t name_id, std::uint64_t p0,
                      std::uint64_t p1) noexcept {
  ThreadRing& ring = local_ring();
  EventRecord rec;
  rec.ts_ns = trace_now_ns();
  rec.payload0 = p0;
  rec.payload1 = p1;
  rec.thread_id = ring.thread_id;
  rec.kind = kind;
  rec.name_id = name_id;
  const std::lock_guard lock(ring.mutex);
  if (ring.records.size() < kRingCapacity) {
    ring.records.push_back(rec);
  } else {
    ring.records[ring.next] = rec;
    ring.next = (ring.next + 1) % kRingCapacity;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<EventRecord> EventLog::events() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::vector<EventRecord> merged;
  for (const auto& ring : rings) {
    const std::lock_guard lock(ring->mutex);
    // Ring order: [next, end) is oldest when the ring has wrapped.
    merged.insert(merged.end(), ring->records.begin() + static_cast<std::ptrdiff_t>(ring->next),
                  ring->records.end());
    merged.insert(merged.end(), ring->records.begin(),
                  ring->records.begin() + static_cast<std::ptrdiff_t>(ring->next));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return merged;
}

std::string EventLog::name(std::uint16_t id) const {
  const std::lock_guard lock(mutex_);
  if (id >= names_.size()) return "";
  return names_[id];
}

std::uint64_t EventLog::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void EventLog::clear() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    const std::lock_guard lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    const std::lock_guard lock(ring->mutex);
    ring->records.clear();
    ring->next = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// Minimal JSON string escaping for event names / contract messages.
std::string jsonl_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void EventLog::write_jsonl(std::ostream& out, std::size_t last_n) const {
  std::vector<EventRecord> records = events();
  // Snapshot the name table once (id -> text) instead of locking per
  // record.
  std::vector<std::string> names;
  {
    const std::lock_guard lock(mutex_);
    names.assign(names_.begin(), names_.end());
  }
  std::size_t first = 0;
  if (last_n > 0 && records.size() > last_n) first = records.size() - last_n;
  for (std::size_t i = first; i < records.size(); ++i) {
    const EventRecord& rec = records[i];
    const std::string_view name =
        rec.name_id < names.size() ? std::string_view(names[rec.name_id])
                                   : std::string_view{};
    out << "{\"ts_ns\": " << rec.ts_ns << ", \"thread\": " << rec.thread_id
        << ", \"kind\": \"" << event_kind_name(rec.kind) << "\", \"name\": \""
        << jsonl_escape(name) << "\", \"p0\": " << rec.payload0
        << ", \"p1\": " << rec.payload1 << "}\n";
  }
}

// ---------------------------------------------------------------------
// Contract-failure dump.
// ---------------------------------------------------------------------

namespace {

std::mutex g_dump_path_mutex;
std::string g_dump_path;
bool g_dump_path_set = false;

/// Keep crash dumps small and readable; the full ring is available via
/// the normal events.jsonl drain.
constexpr std::size_t kContractDumpEvents = 256;

}  // namespace

void set_contract_dump_path(std::string path) {
  const std::lock_guard lock(g_dump_path_mutex);
  g_dump_path = std::move(path);
  g_dump_path_set = true;
}

std::string contract_dump_path() {
  const std::lock_guard lock(g_dump_path_mutex);
  if (!g_dump_path_set) {
    if (const char* env = std::getenv("WHART_EVENTS_DUMP")) g_dump_path = env;
    g_dump_path_set = true;
  }
  return g_dump_path;
}

}  // namespace whart::common::obs

namespace whart::detail {

void notify_contract_failure(const char* what) noexcept {
  using namespace whart::common::obs;
  try {
    if (!events_enabled()) return;
    EventLog& log = EventLog::instance();
    const std::uint16_t name_id = log.intern("contract.failure");
    log.record(EventKind::kContractFailure, name_id, 0, 0);
    const std::string path = contract_dump_path();
    if (path.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    if (!out) return;
    out << "{\"kind\": \"contract_failure\", \"what\": \""
        << jsonl_escape(what != nullptr ? what : "") << "\"}\n";
    log.write_jsonl(out, kContractDumpEvents);
  } catch (...) {
    // The dump is best-effort context for the real failure; never let
    // it mask the contract exception about to be thrown.
  }
}

}  // namespace whart::detail

namespace whart::common::obs {

// ---------------------------------------------------------------------
// Trace collector.
// ---------------------------------------------------------------------

/// One thread's completed spans/flows plus its live nesting depth.
/// `depth` is touched only by the owning thread; `records` and `flows`
/// are guarded by `mutex` so the collector can read while the owner
/// appends.
struct TraceCollector::ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> records;
  std::vector<FlowRecord> flows;
  std::uint32_t thread_id = 0;
  std::uint32_t depth = 0;
};

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    const std::lock_guard lock(mutex_);
    fresh->thread_id = next_thread_id_++;
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void TraceCollector::record_flow(std::uint64_t flow_id, std::uint64_t ts_ns,
                                 bool begin) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard lock(buffer.mutex);
  buffer.flows.push_back({flow_id, ts_ns, buffer.thread_id, begin});
}

std::vector<SpanRecord> TraceCollector::events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> merged;
  for (const auto& buffer : buffers) {
    const std::lock_guard lock(buffer->mutex);
    merged.insert(merged.end(), buffer->records.begin(),
                  buffer->records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              return a.span_id < b.span_id;
            });
  return merged;
}

std::vector<FlowRecord> TraceCollector::flows() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::vector<FlowRecord> merged;
  for (const auto& buffer : buffers) {
    const std::lock_guard lock(buffer->mutex);
    merged.insert(merged.end(), buffer->flows.begin(), buffer->flows.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              if (a.flow_id != b.flow_id) return a.flow_id < b.flow_id;
              // begin sorts before end within a flow.
              return a.begin && !b.begin;
            });
  return merged;
}

std::vector<SpanAggregate> TraceCollector::aggregate() const {
  struct NamedDurations {
    SpanAggregate agg;
    std::vector<std::uint64_t> durations;
  };
  std::map<std::string, NamedDurations> by_name;
  for (const SpanRecord& record : events()) {
    NamedDurations& entry = by_name[record.name];
    SpanAggregate& agg = entry.agg;
    if (agg.count == 0) {
      agg.name = record.name;
      agg.min_ns = record.duration_ns;
    }
    ++agg.count;
    agg.total_ns += record.duration_ns;
    agg.min_ns = std::min(agg.min_ns, record.duration_ns);
    agg.max_ns = std::max(agg.max_ns, record.duration_ns);
    entry.durations.push_back(record.duration_ns);
  }
  std::vector<SpanAggregate> result;
  result.reserve(by_name.size());
  for (auto& [name, entry] : by_name) {
    std::sort(entry.durations.begin(), entry.durations.end());
    // Exact nearest-rank quantiles over the full duration list.
    const auto rank = [&](double q) {
      const std::size_t n = entry.durations.size();
      const auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
      return entry.durations[std::min(idx, n - 1)];
    };
    entry.agg.p50_ns = rank(0.50);
    entry.agg.p90_ns = rank(0.90);
    entry.agg.p99_ns = rank(0.99);
    result.push_back(std::move(entry.agg));
  }
  std::sort(result.begin(), result.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return result;
}

void TraceCollector::clear() {
  // Advance the generation first: spans/links already in flight see the
  // new epoch at completion and discard themselves.
  g_clear_epoch.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard lock(buffer->mutex);
    buffer->records.clear();
    buffer->flows.clear();
  }
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  WHART_EVENT(kTraceClear, "obs.trace", 0, 0);
}

// ---------------------------------------------------------------------
// Spans, request spans, task links and timers.
// ---------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) noexcept : ScopedSpan(name, 0) {}

ScopedSpan::ScopedSpan(const char* name, std::uint64_t flow_id) noexcept
    : name_(name) {
  if (!trace_enabled()) return;
  active_ = true;
  epoch_ = g_clear_epoch.load(std::memory_order_relaxed);
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  saved_ = g_trace_context;
  parent_id_ = saved_.span_id;
  request_id_ = saved_.request_id;
  flow_id_ = flow_id;
  g_trace_context.span_id = span_id_;
  ++TraceCollector::instance().local_buffer().depth;
  start_ns_ = trace_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = trace_now_ns();
  TraceCollector::ThreadBuffer& buffer =
      TraceCollector::instance().local_buffer();
  --buffer.depth;
  g_trace_context = saved_;
  // A clear() advanced the epoch while this span was open: its start
  // time belongs to the discarded timeline, so drop the record.
  if (g_clear_epoch.load(std::memory_order_relaxed) != epoch_) return;
  SpanRecord record;
  record.name = name_;
  record.thread_id = buffer.thread_id;
  record.depth = buffer.depth;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.request_id = request_id_;
  record.flow_id = flow_id_;
  const std::lock_guard lock(buffer.mutex);
  buffer.records.push_back(record);
}

ScopedRequestSpan::RequestMark::RequestMark(const char* name_in) noexcept
    : name(name_in) {
  const bool events = events_enabled();
  if (!events && !trace_enabled()) return;
  marked = true;
  saved = g_trace_context.request_id;
  root = saved == 0;
  id = root ? g_next_request_id.fetch_add(1, std::memory_order_relaxed) + 1
            : saved;
  g_trace_context.request_id = id;
  start_ns = trace_now_ns();
  if (events && root) {
    // The name is a per-instantiation literal but this is not a macro
    // expansion, so intern on every entry (requests are coarse).
    EventLog& log = EventLog::instance();
    log.record(EventKind::kRequestBegin, log.intern(name), id, 0);
  }
}

ScopedRequestSpan::RequestMark::~RequestMark() {
  if (!marked) return;
  g_trace_context.request_id = saved;
  if (root && events_enabled()) {
    const std::uint64_t end_ns = trace_now_ns();
    EventLog& log = EventLog::instance();
    log.record(EventKind::kRequestEnd, log.intern(name), id,
               end_ns >= start_ns ? end_ns - start_ns : 0);
  }
}

// Member order matters: request_ first, so the span (constructed after)
// inherits the fresh request id from the ambient context, and the
// request_end event (emitted after the span closes) covers it fully.
ScopedRequestSpan::ScopedRequestSpan(const char* name) noexcept
    : request_(name), span_(name) {}

ScopedRequestSpan::~ScopedRequestSpan() = default;

TaskLink TaskLink::begin() noexcept {
  TaskLink link;
  if (!trace_enabled()) return link;
  link.ctx_ = g_trace_context;
  link.epoch_ = g_clear_epoch.load(std::memory_order_relaxed);
  link.flow_id_ = g_next_flow_id.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceCollector::instance().record_flow(link.flow_id_, trace_now_ns(),
                                         /*begin=*/true);
  return link;
}

TaskScope::TaskScope(const TaskLink& link) noexcept {
  if (!link.active() || !trace_enabled()) return;
  if (g_clear_epoch.load(std::memory_order_relaxed) != link.epoch_) return;
  active_ = true;
  epoch_ = link.epoch_;
  saved_ = g_trace_context;
  parent_id_ = link.ctx_.span_id;
  request_id_ = link.ctx_.request_id;
  flow_id_ = link.flow_id_;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  g_trace_context = {span_id_, request_id_};
  TraceCollector& collector = TraceCollector::instance();
  ++collector.local_buffer().depth;
  start_ns_ = trace_now_ns();
  collector.record_flow(flow_id_, start_ns_, /*begin=*/false);
}

TaskScope::~TaskScope() {
  if (!active_) return;
  const std::uint64_t end_ns = trace_now_ns();
  TraceCollector::ThreadBuffer& buffer =
      TraceCollector::instance().local_buffer();
  --buffer.depth;
  g_trace_context = saved_;
  if (g_clear_epoch.load(std::memory_order_relaxed) != epoch_) return;
  SpanRecord record;
  record.name = kPoolTaskSpanName;
  record.thread_id = buffer.thread_id;
  record.depth = buffer.depth;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.request_id = request_id_;
  record.flow_id = flow_id_;
  const std::lock_guard lock(buffer.mutex);
  buffer.records.push_back(record);
}

ScopedTimer::ScopedTimer(Histogram* histogram) noexcept
    : histogram_(histogram) {
  if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  histogram_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
}

// ---------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------

Sampler::Sampler(std::chrono::milliseconds interval, std::size_t capacity)
    : interval_(interval), capacity_(capacity == 0 ? 1 : capacity) {
  thread_ = std::thread([this] { loop(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::take_sample() {
  TimedMetricsSnapshot sample;
  sample.t_ns = trace_now_ns();
  sample.metrics = Registry::instance().snapshot();
  std::size_t taken = 0;
  {
    const std::lock_guard lock(mutex_);
    ring_.push_back(std::move(sample));
    while (ring_.size() > capacity_) ring_.pop_front();
    taken = ++samples_;
  }
  WHART_EVENT(kSamplerTick, "obs.sampler", taken, 0);
  WHART_COUNT("obs.sampler.ticks");
}

void Sampler::loop() {
  take_sample();  // the t=0 baseline
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait_for(lock, interval_, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

void Sampler::stop() {
  {
    const std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  take_sample();  // the final state, so short runs still get a series
  const std::lock_guard lock(mutex_);
  stopped_ = true;
}

std::vector<TimedMetricsSnapshot> Sampler::series() const {
  const std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t Sampler::samples() const {
  const std::lock_guard lock(mutex_);
  return samples_;
}

}  // namespace whart::common::obs
