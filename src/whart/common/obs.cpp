#include "whart/common/obs.hpp"

#include <algorithm>
#include <bit>

namespace whart::common::obs {

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) noexcept {
  if (index == 0) return 0;
  return std::uint64_t{1} << (index - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return 0;
  if (index >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << index) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <typename Map, typename Metric = typename Map::mapped_type::element_type>
Metric& find_or_create(Map& map, std::string_view name, std::mutex& mutex) {
  const std::lock_guard lock(mutex);
  if (const auto it = map.find(name); it != map.end()) return *it->second;
  auto [it, inserted] =
      map.emplace(std::string(name), std::make_unique<Metric>());
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, mutex_);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, mutex_);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, mutex_);
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t in_bucket = histogram->bucket_count(b);
      if (in_bucket == 0) continue;
      h.buckets.push_back({Histogram::bucket_lower_bound(b),
                           Histogram::bucket_upper_bound(b), in_bucket});
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

// ---------------------------------------------------------------------
// Runtime flags.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_trace_enabled{false};
}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Trace collector.
// ---------------------------------------------------------------------

namespace {

/// Epoch shared by every span; advanced by TraceCollector::clear().
std::atomic<std::int64_t> g_epoch_ns{0};

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    // First use: pin the epoch (benign race — first writer wins).
    std::int64_t expected = 0;
    const std::int64_t now = steady_ns();
    g_epoch_ns.compare_exchange_strong(expected, now,
                                       std::memory_order_relaxed);
    epoch = g_epoch_ns.load(std::memory_order_relaxed);
  }
  const std::int64_t now = steady_ns();
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

/// One thread's completed spans plus its live nesting depth.  `depth`
/// is touched only by the owning thread; `records` is guarded by
/// `mutex` so the collector can read while the owner appends.
struct TraceCollector::ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> records;
  std::uint32_t thread_id = 0;
  std::uint32_t depth = 0;
};

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    const std::lock_guard lock(mutex_);
    fresh->thread_id = next_thread_id_++;
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

std::vector<SpanRecord> TraceCollector::events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> merged;
  for (const auto& buffer : buffers) {
    const std::lock_guard lock(buffer->mutex);
    merged.insert(merged.end(), buffer->records.begin(),
                  buffer->records.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.thread_id < b.thread_id;
            });
  return merged;
}

std::vector<SpanAggregate> TraceCollector::aggregate() const {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& record : events()) {
    SpanAggregate& agg = by_name[record.name];
    if (agg.count == 0) {
      agg.name = record.name;
      agg.min_ns = record.duration_ns;
    }
    ++agg.count;
    agg.total_ns += record.duration_ns;
    agg.min_ns = std::min(agg.min_ns, record.duration_ns);
    agg.max_ns = std::max(agg.max_ns, record.duration_ns);
  }
  std::vector<SpanAggregate> result;
  result.reserve(by_name.size());
  for (auto& [name, agg] : by_name) result.push_back(std::move(agg));
  std::sort(result.begin(), result.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return result;
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard lock(buffer->mutex);
    buffer->records.clear();
  }
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Spans and timers.
// ---------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) noexcept : name_(name) {
  if (!trace_enabled()) return;
  active_ = true;
  ++TraceCollector::instance().local_buffer().depth;
  start_ns_ = trace_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = trace_now_ns();
  TraceCollector::ThreadBuffer& buffer =
      TraceCollector::instance().local_buffer();
  --buffer.depth;
  SpanRecord record;
  record.name = name_;
  record.thread_id = buffer.thread_id;
  record.depth = buffer.depth;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  const std::lock_guard lock(buffer.mutex);
  buffer.records.push_back(record);
}

ScopedTimer::ScopedTimer(Histogram* histogram) noexcept
    : histogram_(histogram) {
  if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  histogram_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
}

}  // namespace whart::common::obs
