// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw, so
// library misuse is reported at the API boundary instead of corrupting state.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace whart {

/// Thrown when a precondition (argument contract) is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a postcondition or internal invariant is violated.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Defined in common/obs.cpp: hands the failure to the flight recorder,
/// which dumps its last-N-events context (JSONL) to the configured
/// crash-dump path before the exception unwinds.  Best-effort and
/// noexcept — it can never mask the contract violation itself.
void notify_contract_failure(const char* what) noexcept;

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const std::string& message,
                                          const std::source_location& loc) {
  std::string what = std::string(kind) + " violated: (" + expr + ")";
  if (!message.empty()) what += " — " + message;
  what += " at ";
  what += loc.file_name();
  what += ':';
  what += std::to_string(loc.line());
  notify_contract_failure(what.c_str());
  if (kind[0] == 'p') throw precondition_error(what);
  throw invariant_error(what);
}

}  // namespace detail

/// Check a precondition; throws precondition_error on failure.
inline void expects(bool condition, const char* expr,
                    const std::string& message = {},
                    const std::source_location& loc =
                        std::source_location::current()) {
  if (!condition) detail::contract_failure("precondition", expr, message, loc);
}

/// Check a postcondition/invariant; throws invariant_error on failure.
inline void ensures(bool condition, const char* expr,
                    const std::string& message = {},
                    const std::source_location& loc =
                        std::source_location::current()) {
  if (!condition) detail::contract_failure("invariant", expr, message, loc);
}

}  // namespace whart

#define WHART_EXPECTS(cond) ::whart::expects((cond), #cond)
#define WHART_EXPECTS_MSG(cond, msg) ::whart::expects((cond), #cond, (msg))
#define WHART_ENSURES(cond) ::whart::ensures((cond), #cond)
#define WHART_ENSURES_MSG(cond, msg) ::whart::ensures((cond), #cond, (msg))
