#include "whart/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::common {

ResolvedThreadCount resolve_thread_count_detailed(unsigned requested) {
  if (requested > 0)
    return {requested, ThreadCountSource::kArgument};
  if (const char* env = std::getenv("WHART_THREADS")) {
    unsigned parsed = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, parsed);
    if (ec == std::errc() && ptr == end)
      return {parsed > 0 ? parsed : 1, ThreadCountSource::kEnvironment};
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return {hardware > 0 ? hardware : 1, ThreadCountSource::kHardware};
}

unsigned resolve_thread_count(unsigned requested) {
  const ResolvedThreadCount resolved = resolve_thread_count_detailed(requested);
  WHART_GAUGE_SET("parallel.threads.resolved", resolved.threads);
  WHART_GAUGE_SET("parallel.threads.source",
                  static_cast<int>(resolved.source));
  return resolved.threads;
}

ThreadPool::ThreadPool(unsigned threads) {
  expects(threads >= 1, "at least one worker");
  WHART_GAUGE_SET("parallel.pool.size", threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  std::size_t queued = 0;
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
    queued = queue_.size() - next_task_;
  }
  if (queued > 0) {
    // Destruction with work still queued is a caller bug (parallel_for
    // always drains via wait_idle); the workers will still run every
    // queued task before joining, but flag it loudly.
    std::fprintf(stderr,
                 "whart: ThreadPool destroyed with %zu task(s) still "
                 "queued; draining before join\n",
                 queued);
    WHART_COUNT_N("parallel.pool.shutdown_queued_tasks", queued);
    assert(queued == 0 && "ThreadPool destroyed with tasks still queued");
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Capture the submitting thread's causality (span + request id) and
  // start a flow arrow; the wrapped task re-establishes it in the
  // worker.  Inert — and the task left unwrapped — when tracing is off.
  const obs::TaskLink link = obs::TaskLink::begin();
  WHART_EVENT(kTaskSubmit, "parallel.pool", link.flow_id(), 0);
  if (link.active()) {
    task = [link, inner = std::move(task)] {
      const obs::TaskScope scope(link);
      inner();
    };
  }
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  WHART_COUNT("parallel.tasks");
  WHART_GAUGE_ADD("parallel.queue.depth", 1);
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  // Reclaim the drained queue storage.
  queue_.clear();
  next_task_ = 0;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || next_task_ < queue_.size(); });
      if (next_task_ >= queue_.size()) return;  // stopping, queue drained
      task = std::move(queue_[next_task_++]);
    }
    // Depth counts submitted-but-not-yet-started tasks; the inc/dec
    // deltas are lock-free (Gauge::add) where the old set() needed the
    // queue size under the pool mutex.
    WHART_GAUGE_ADD("parallel.queue.depth", -1);
    WHART_EVENT(kTaskStart, "parallel.pool", 0, 0);
    {
      WHART_TIMER("parallel.task.ns");
      task();
    }
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace detail {

void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       unsigned threads) {
  WHART_SPAN("parallel_for");
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto drain = [&] {
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    // Worker utilization: total productive time across all drains vs
    // the pool's wall-clock is derivable from this counter.
    WHART_COUNT_N(
        "parallel.busy_ns",
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  {
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace whart::common
