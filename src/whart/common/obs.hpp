// Observability subsystem: a process-wide metrics registry (counters,
// gauges, log-bucketed histograms) plus scoped trace spans that record
// nested timings into per-thread buffers and merge into a Chrome
// trace_event dump.  The analysis engine's hot paths (path solves, the
// thread pool, the cache, the Monte-Carlo shards) report through the
// macros at the bottom of this header; `report/metrics_export` turns
// snapshots into JSON and `whart_cli --metrics/--trace` writes them.
//
// Cost model: metric handles are resolved once per call site (static
// reference behind a magic-static), so the hot path is a single relaxed
// atomic op per event.  Every macro first checks a runtime enable flag
// (one relaxed atomic load); metrics default ON, tracing defaults OFF
// because span buffers grow with the run.  Compiling a translation unit
// with WHART_OBS_DISABLED expands every macro to nothing, removing even
// the flag check.
//
// Naming convention (see DESIGN.md §9): `<layer>.<component>.<metric>`,
// lowercase, dot-separated; duration histograms end in `.ns` and record
// nanoseconds; counters are monotonic; gauges hold "current value".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace whart::common::obs {

// ---------------------------------------------------------------------
// Metric primitives.  All operations are safe to call concurrently.
// ---------------------------------------------------------------------

/// Monotonic counter; add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins current value.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed (base-2) histogram over unsigned 64-bit samples —
/// intended for nanosecond latencies and integer sizes.  Bucket 0 holds
/// exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].  The
/// hot path is a handful of relaxed atomic ops.
class Histogram {
 public:
  /// Bucket 0 plus one bucket per possible bit width of a 64-bit value.
  static constexpr std::size_t kBucketCount = 65;

  void record(std::uint64_t value) noexcept;

  /// Index of the bucket containing `value` (== bit width of value).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest / largest value landing in bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_lower_bound(
      std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_bound(
      std::size_t index) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest recorded sample (min() is 0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------
// Snapshots (plain values, safe to serialize without further locking).
// ---------------------------------------------------------------------

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  struct Bucket {
    std::uint64_t lower = 0;  // inclusive
    std::uint64_t upper = 0;  // inclusive
    std::uint64_t count = 0;
  };
  /// Non-empty buckets only, in ascending value order.
  std::vector<Bucket> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// Process-wide registry of named metrics.  Registration (first lookup
/// of a name) takes a mutex; the returned references stay valid for the
/// process lifetime — reset() zeroes values but never removes entries,
/// so call sites may cache references.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric (bench/test isolation); entries and
  /// outstanding references remain valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------
// Runtime enable flags (one relaxed atomic load per instrumented event).
// ---------------------------------------------------------------------

[[nodiscard]] bool metrics_enabled() noexcept;  // default: true
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;  // default: false
void set_trace_enabled(bool enabled) noexcept;

// ---------------------------------------------------------------------
// Scoped trace spans.
// ---------------------------------------------------------------------

/// One completed span.  `name` must be a string with static storage
/// duration (the macros pass literals), keeping the record trivially
/// copyable and the hot path allocation-free.
struct SpanRecord {
  const char* name = nullptr;
  std::uint32_t thread_id = 0;  // dense id in first-span order
  std::uint32_t depth = 0;      // nesting level on its thread
  std::uint64_t start_ns = 0;   // since the collector epoch
  std::uint64_t duration_ns = 0;
};

/// Flat per-name aggregate of the recorded spans.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Nanoseconds since the trace epoch (process start / last clear()).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Owns the per-thread span buffers.  Buffers outlive their threads
/// (shared ownership), so spans recorded by pool workers survive pool
/// destruction.
class TraceCollector {
 public:
  static TraceCollector& instance();

  /// All completed spans, merged across threads and sorted by start
  /// time (ties by thread id).
  [[nodiscard]] std::vector<SpanRecord> events() const;

  /// Per-name aggregates, sorted by descending total time.
  [[nodiscard]] std::vector<SpanAggregate> aggregate() const;

  /// Drop every recorded span and restart the epoch.  Do not call while
  /// spans are in flight on other threads.
  void clear();

 private:
  TraceCollector() = default;
  friend class ScopedSpan;
  struct ThreadBuffer;

  /// This thread's buffer, created and registered on first use.
  [[nodiscard]] ThreadBuffer& local_buffer();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_thread_id_ = 0;
};

/// RAII span: records [construction, destruction) on the calling thread
/// when tracing is enabled; a single relaxed load otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// RAII histogram timer: records the scope's duration (ns) into
/// `histogram` at destruction; pass nullptr to disable (the WHART_TIMER
/// macro does so when metrics are off).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace whart::common::obs

// ---------------------------------------------------------------------
// Instrumentation macros.  Compile to nothing under WHART_OBS_DISABLED;
// otherwise guard on the runtime flags and cache the metric handle in a
// function-local static, so the steady-state cost is one flag load plus
// one relaxed atomic op.
// ---------------------------------------------------------------------

#define WHART_OBS_CONCAT_INNER(a, b) a##b
#define WHART_OBS_CONCAT(a, b) WHART_OBS_CONCAT_INNER(a, b)

#if defined(WHART_OBS_DISABLED)

#define WHART_SPAN(name)
#define WHART_TIMER(name)
#define WHART_COUNT(name) \
  do {                    \
  } while (false)
#define WHART_COUNT_N(name, n) \
  do {                         \
    if (false) {               \
      (void)(n);               \
    }                          \
  } while (false)
#define WHART_GAUGE_SET(name, value) \
  do {                               \
    if (false) {                     \
      (void)(value);                 \
    }                                \
  } while (false)
#define WHART_OBSERVE(name, value) \
  do {                             \
    if (false) {                   \
      (void)(value);               \
    }                              \
  } while (false)

#else

/// Trace the enclosing scope as a span named `name` (string literal).
#define WHART_SPAN(name)                              \
  [[maybe_unused]] const ::whart::common::obs::ScopedSpan \
      WHART_OBS_CONCAT(whart_obs_span_, __LINE__)(name)

/// Record the enclosing scope's duration into histogram `name` (ns).
#define WHART_TIMER(name)                                                 \
  [[maybe_unused]] const ::whart::common::obs::ScopedTimer                \
      WHART_OBS_CONCAT(whart_obs_timer_, __LINE__)(                       \
          []() noexcept -> ::whart::common::obs::Histogram* {             \
            if (!::whart::common::obs::metrics_enabled()) return nullptr; \
            static ::whart::common::obs::Histogram& whart_obs_histogram = \
                ::whart::common::obs::Registry::instance().histogram(     \
                    name);                                                \
            return &whart_obs_histogram;                                  \
          }())

#define WHART_COUNT(name) WHART_COUNT_N(name, 1)

#define WHART_COUNT_N(name, n)                                          \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Counter& whart_obs_counter =         \
          ::whart::common::obs::Registry::instance().counter(name);     \
      whart_obs_counter.add(static_cast<std::uint64_t>(n));             \
    }                                                                   \
  } while (false)

#define WHART_GAUGE_SET(name, value)                                    \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Gauge& whart_obs_gauge =             \
          ::whart::common::obs::Registry::instance().gauge(name);       \
      whart_obs_gauge.set(static_cast<double>(value));                  \
    }                                                                   \
  } while (false)

#define WHART_OBSERVE(name, value)                                      \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Histogram& whart_obs_histogram =     \
          ::whart::common::obs::Registry::instance().histogram(name);   \
      whart_obs_histogram.record(static_cast<std::uint64_t>(value));    \
    }                                                                   \
  } while (false)

#endif  // WHART_OBS_DISABLED
