// Observability subsystem: a process-wide metrics registry (counters,
// gauges, log-bucketed histograms with quantile estimation), scoped
// trace spans with cross-thread causality (span ids, parent links, flow
// records across ThreadPool boundaries), a flight recorder (EventLog —
// fixed-size structured events in per-thread rings, dumped from the
// contracts.hpp failure path), and a background Sampler that turns the
// registry into a timestamped time series.  The analysis engine's hot
// paths (path solves, the thread pool, the cache, the Monte-Carlo
// shards) report through the macros at the bottom of this header;
// `report/metrics_export` turns snapshots into JSON / Chrome trace /
// Prometheus text / CSV and `whart_cli --obs-dir` writes the bundle.
//
// Cost model: metric handles are resolved once per call site (static
// reference behind a magic-static), so the hot path is a single relaxed
// atomic op per event.  Every macro first checks a runtime enable flag
// (one relaxed atomic load); metrics and the event log default ON,
// tracing defaults OFF because span buffers grow with the run (event
// rings are fixed-size, so the recorder can always be on).  Compiling a
// translation unit with WHART_OBS_DISABLED expands every macro to
// nothing, removing even the flag check.
//
// Naming convention (see DESIGN.md §9): `<layer>.<component>.<metric>`,
// lowercase, dot-separated; duration histograms end in `.ns` and record
// nanoseconds; counters are monotonic; gauges hold "current value";
// event kinds are snake_case verbs-in-the-past ("cache_hit",
// "request_begin") and event names reuse the metric namespace of the
// component that emitted them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace whart::common::obs {

// ---------------------------------------------------------------------
// Metric primitives.  All operations are safe to call concurrently.
// ---------------------------------------------------------------------

/// Monotonic counter; add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Current value: last-write-wins set() plus lock-free add() deltas (a
/// CAS loop on the double bits), so producers that only know "one more"
/// / "one less" (e.g. the thread-pool queue depth) need no lock.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed (base-2) histogram over unsigned 64-bit samples —
/// intended for nanosecond latencies and integer sizes.  Bucket 0 holds
/// exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].  The
/// hot path is a handful of relaxed atomic ops.
class Histogram {
 public:
  /// Bucket 0 plus one bucket per possible bit width of a 64-bit value.
  static constexpr std::size_t kBucketCount = 65;

  void record(std::uint64_t value) noexcept;

  /// Index of the bucket containing `value` (== bit width of value).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest / largest value landing in bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_lower_bound(
      std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_bound(
      std::size_t index) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest recorded sample (min() is 0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------
// Snapshots (plain values, safe to serialize without further locking).
// ---------------------------------------------------------------------

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  struct Bucket {
    std::uint64_t lower = 0;  // inclusive
    std::uint64_t upper = 0;  // inclusive
    std::uint64_t count = 0;
  };
  /// Non-empty buckets only, in ascending value order.
  std::vector<Bucket> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket where the cumulative count crosses q*count, clamped to the
  /// observed [min, max].  Exact when the bucket holds a single distinct
  /// value (bucket 0, or min == max within the bucket); 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// One registry snapshot with the trace-clock timestamp it was taken at
/// (what the Sampler accumulates; `report/metrics_export` renders a
/// vector of these as the time-series CSV).
struct TimedMetricsSnapshot {
  std::uint64_t t_ns = 0;  // trace_now_ns() at sampling time
  MetricsSnapshot metrics;
};

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// Process-wide registry of named metrics.  Registration (first lookup
/// of a name) takes a mutex; the returned references stay valid for the
/// process lifetime — reset() zeroes values but never removes entries,
/// so call sites may cache references.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric (bench/test isolation); entries and
  /// outstanding references remain valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------
// Runtime enable flags (one relaxed atomic load per instrumented event).
// ---------------------------------------------------------------------

[[nodiscard]] bool metrics_enabled() noexcept;  // default: true
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;  // default: false
void set_trace_enabled(bool enabled) noexcept;
[[nodiscard]] bool events_enabled() noexcept;  // default: true
void set_events_enabled(bool enabled) noexcept;

// ---------------------------------------------------------------------
// Flight recorder: fixed-size structured events in per-thread rings.
// ---------------------------------------------------------------------

/// What happened; the name identifies where.  Rendered in JSONL via
/// event_kind_name().  Extend at the end to keep dumps comparable.
enum class EventKind : std::uint16_t {
  kGeneric = 0,
  kRequestBegin,     // p0 = request id
  kRequestEnd,       // p0 = request id, p1 = duration ns
  kTaskSubmit,       // p0 = flow id
  kTaskStart,        // p0 = flow id
  kSolveDone,        // p0 = states, p1 = solve ns
  kCacheHit,         // p0 = cache size
  kCacheMiss,        // p0 = cache size
  kStage,            // p0 = stage ns
  kContractFailure,  // recorded just before the contract exception
  kSamplerTick,      // p0 = samples taken so far
  kTraceClear,
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// One flight-recorder record.  Fixed-size and trivially copyable:
/// names are interned to small ids so the ring never allocates.
struct EventRecord {
  std::uint64_t ts_ns = 0;  // trace clock (same epoch as spans)
  std::uint64_t payload0 = 0;
  std::uint64_t payload1 = 0;
  std::uint32_t thread_id = 0;
  EventKind kind = EventKind::kGeneric;
  std::uint16_t name_id = 0;
};

/// The flight recorder: per-thread fixed-capacity rings of EventRecord.
/// Recording is wait-free against other threads (per-thread mutex is
/// only contended during a drain); when a ring is full the oldest
/// record is overwritten and dropped() grows.  events() merges and
/// time-sorts; write_jsonl() renders one JSON object per line — the
/// contracts.hpp failure path dumps the last records this way so every
/// expects() violation ships its context.
class EventLog {
 public:
  static constexpr std::size_t kRingCapacity = 1024;

  static EventLog& instance();

  /// Intern a name with static storage duration (the macros pass
  /// literals); returns a stable small id.  Takes the registry mutex —
  /// call once per site and cache (WHART_EVENT does).
  std::uint16_t intern(const char* name);

  void record(EventKind kind, std::uint16_t name_id, std::uint64_t p0 = 0,
              std::uint64_t p1 = 0) noexcept;

  /// All surviving records, merged across threads, sorted by timestamp.
  [[nodiscard]] std::vector<EventRecord> events() const;

  /// The interned name for an id ("" when unknown).
  [[nodiscard]] std::string name(std::uint16_t id) const;

  /// Total records overwritten by ring wrap-around since clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// One JSON object per line; `last_n` == 0 means all surviving
  /// records, otherwise only the most recent `last_n`.
  void write_jsonl(std::ostream& out, std::size_t last_n = 0) const;

  void clear();

 private:
  EventLog() = default;
  struct ThreadRing;
  [[nodiscard]] ThreadRing& local_ring();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::uint32_t next_thread_id_ = 0;
  std::vector<const char*> names_;
  std::map<std::string_view, std::uint16_t> ids_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Where the contracts.hpp failure path dumps the flight recorder
/// (JSONL; the failure itself is the first line).  Empty disables the
/// dump; initialized from $WHART_EVENTS_DUMP on first failure when
/// never set explicitly.  `--obs-dir` points it into the bundle.
void set_contract_dump_path(std::string path);
[[nodiscard]] std::string contract_dump_path();

// ---------------------------------------------------------------------
// Scoped trace spans with cross-thread causality.
// ---------------------------------------------------------------------

/// One completed span.  `name` must be a string with static storage
/// duration (the macros pass literals), keeping the record trivially
/// copyable and the hot path allocation-free.
struct SpanRecord {
  const char* name = nullptr;
  std::uint32_t thread_id = 0;  // dense id in first-span order
  std::uint32_t depth = 0;      // nesting level on its thread
  std::uint64_t start_ns = 0;   // since the collector epoch
  std::uint64_t duration_ns = 0;
  std::uint64_t span_id = 0;     // unique per span; 0 = pre-causality
  std::uint64_t parent_id = 0;   // enclosing span (may live on another
                                 // thread via a TaskLink); 0 = root
  std::uint64_t request_id = 0;  // owning request span; 0 = none
  std::uint64_t flow_id = 0;     // nonzero on pool-task spans: the flow
                                 // tying this span to its submit site
};

/// One endpoint of a cross-thread flow arrow: `begin` is recorded on
/// the submitting thread at ThreadPool::submit, the matching end on the
/// worker when the task starts.  Exported as Chrome trace flow events
/// (ph "s"/"f" with the flow id).
struct FlowRecord {
  std::uint64_t flow_id = 0;
  std::uint64_t ts_ns = 0;
  std::uint32_t thread_id = 0;
  bool begin = false;
};

/// Flat per-name aggregate of the recorded spans.  The quantiles are
/// exact (computed from the full duration list, not bucketed).
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// The ambient causality on the current thread: the innermost open
/// span and the owning request.  Captured at ThreadPool::submit and
/// re-established inside the worker (TaskLink/TaskScope).
struct TraceContext {
  std::uint64_t span_id = 0;
  std::uint64_t request_id = 0;
};

[[nodiscard]] TraceContext current_trace_context() noexcept;

/// Nanoseconds since the trace epoch (process start / last clear()).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Generation counter bumped by TraceCollector::clear(); spans and task
/// links stamped with an older epoch discard themselves instead of
/// polluting the fresh buffers.
[[nodiscard]] std::uint64_t trace_epoch() noexcept;

/// Owns the per-thread span buffers.  Buffers outlive their threads
/// (shared ownership), so spans recorded by pool workers survive pool
/// destruction.
class TraceCollector {
 public:
  static TraceCollector& instance();

  /// All completed spans, merged across threads and sorted by start
  /// time (ties by thread id, then span id).
  [[nodiscard]] std::vector<SpanRecord> events() const;

  /// All flow endpoints, merged and sorted by timestamp.
  [[nodiscard]] std::vector<FlowRecord> flows() const;

  /// Per-name aggregates, sorted by descending total time.
  [[nodiscard]] std::vector<SpanAggregate> aggregate() const;

  /// Drop every recorded span/flow and restart the epoch.  Safe while
  /// spans are in flight on other threads: clear() advances the trace
  /// epoch, and a span (or pool-task link) created before the clear
  /// discards itself at completion instead of corrupting the buffers.
  void clear();

 private:
  TraceCollector() = default;
  friend class ScopedSpan;
  friend class TaskLink;
  friend class TaskScope;
  struct ThreadBuffer;

  /// This thread's buffer, created and registered on first use.
  [[nodiscard]] ThreadBuffer& local_buffer();

  void record_flow(std::uint64_t flow_id, std::uint64_t ts_ns, bool begin);

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_thread_id_ = 0;
};

/// RAII span: records [construction, destruction) on the calling thread
/// when tracing is enabled; a single relaxed load otherwise.  Allocates
/// a span id, links to the ambient parent span and request, and makes
/// itself the ambient parent for the scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  /// Internal: a pool-task span carrying the flow that delivered it.
  ScopedSpan(const char* name, std::uint64_t flow_id) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  TraceContext saved_{};
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint64_t flow_id_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t epoch_ = 0;
  bool active_ = false;
};

/// Root "request" span around an engine entry point (analyze_network,
/// a sweep, the optimizer): allocates a process-unique request id — the
/// future per-tenant request id — that every span and pool task under
/// it inherits, and marks request_begin/request_end in the flight
/// recorder.  Entering a nested instrumented entry point keeps the
/// outermost request id (the root owns the request).
class ScopedRequestSpan {
 public:
  explicit ScopedRequestSpan(const char* name) noexcept;
  ~ScopedRequestSpan();

  ScopedRequestSpan(const ScopedRequestSpan&) = delete;
  ScopedRequestSpan& operator=(const ScopedRequestSpan&) = delete;

  /// The ambient request id inside this scope (0 when both tracing and
  /// the event log are disabled).
  [[nodiscard]] std::uint64_t request_id() const noexcept {
    return request_.id;
  }

 private:
  struct RequestMark {
    explicit RequestMark(const char* name) noexcept;
    ~RequestMark();
    const char* name;
    std::uint64_t id = 0;
    std::uint64_t saved = 0;
    std::uint64_t start_ns = 0;
    bool root = false;
    bool marked = false;
  };
  RequestMark request_;
  ScopedSpan span_;
};

/// Causality captured at a ThreadPool::submit call site.  begin()
/// snapshots the submitting thread's TraceContext, allocates a flow id
/// and records the flow-begin endpoint; inert (all zeros) when tracing
/// is disabled, so the pool pays one relaxed load per submit.
class TaskLink {
 public:
  TaskLink() = default;
  [[nodiscard]] static TaskLink begin() noexcept;
  [[nodiscard]] bool active() const noexcept { return flow_id_ != 0; }
  [[nodiscard]] std::uint64_t flow_id() const noexcept { return flow_id_; }

 private:
  friend class TaskScope;
  TraceContext ctx_{};
  std::uint64_t flow_id_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Re-establishes a TaskLink inside the worker: restores the submitting
/// context as ambient, records the flow-end endpoint and traces the
/// task body as a "pool_task" span whose parent is the submitting span.
/// Inert when the link is inert or the trace epoch advanced since
/// submit (a clear() raced the task).
class TaskScope {
 public:
  explicit TaskScope(const TaskLink& link) noexcept;
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TraceContext saved_{};
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint64_t flow_id_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t epoch_ = 0;
  bool active_ = false;
};

/// RAII histogram timer: records the scope's duration (ns) into
/// `histogram` at destruction; pass nullptr to disable (the WHART_TIMER
/// macro does so when metrics are off).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

// ---------------------------------------------------------------------
// Continuous metrics surface.
// ---------------------------------------------------------------------

/// Background thread snapshotting the registry every `interval` into a
/// bounded timestamped ring (oldest samples dropped past `capacity`).
/// Samples once at start and once at stop, so even runs shorter than
/// one interval produce a two-point series.  The ring is rendered by
/// `report::write_timeseries_csv` and the final snapshot by
/// `report::write_prometheus_text`.
class Sampler {
 public:
  explicit Sampler(std::chrono::milliseconds interval,
                   std::size_t capacity = 512);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stop the background thread (idempotent) after one final sample.
  void stop();

  /// The accumulated series, oldest first.
  [[nodiscard]] std::vector<TimedMetricsSnapshot> series() const;

  /// Samples taken so far (monotonic; may exceed capacity).
  [[nodiscard]] std::size_t samples() const;

 private:
  void loop();
  void take_sample();

  std::chrono::milliseconds interval_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::size_t samples_ = 0;
  std::deque<TimedMetricsSnapshot> ring_;
  std::thread thread_;
};

}  // namespace whart::common::obs

// ---------------------------------------------------------------------
// Instrumentation macros.  Compile to nothing under WHART_OBS_DISABLED;
// otherwise guard on the runtime flags and cache the metric handle in a
// function-local static, so the steady-state cost is one flag load plus
// one relaxed atomic op.
// ---------------------------------------------------------------------

#define WHART_OBS_CONCAT_INNER(a, b) a##b
#define WHART_OBS_CONCAT(a, b) WHART_OBS_CONCAT_INNER(a, b)

#if defined(WHART_OBS_DISABLED)

#define WHART_SPAN(name)
#define WHART_REQUEST_SPAN(name)
#define WHART_TIMER(name)
#define WHART_COUNT(name) \
  do {                    \
  } while (false)
#define WHART_COUNT_N(name, n) \
  do {                         \
    if (false) {               \
      (void)(n);               \
    }                          \
  } while (false)
#define WHART_GAUGE_SET(name, value) \
  do {                               \
    if (false) {                     \
      (void)(value);                 \
    }                                \
  } while (false)
#define WHART_GAUGE_ADD(name, delta) \
  do {                               \
    if (false) {                     \
      (void)(delta);                 \
    }                                \
  } while (false)
#define WHART_OBSERVE(name, value) \
  do {                             \
    if (false) {                   \
      (void)(value);               \
    }                              \
  } while (false)
#define WHART_EVENT(kind, name, p0, p1) \
  do {                                  \
    if (false) {                        \
      (void)(p0);                       \
      (void)(p1);                       \
    }                                   \
  } while (false)

#else

/// Trace the enclosing scope as a span named `name` (string literal).
#define WHART_SPAN(name)                              \
  [[maybe_unused]] const ::whart::common::obs::ScopedSpan \
      WHART_OBS_CONCAT(whart_obs_span_, __LINE__)(name)

/// Trace the enclosing scope as a root request span (unique request id
/// inherited by every span/pool task underneath; request_begin/_end in
/// the flight recorder).
#define WHART_REQUEST_SPAN(name)                             \
  [[maybe_unused]] const ::whart::common::obs::ScopedRequestSpan \
      WHART_OBS_CONCAT(whart_obs_request_, __LINE__)(name)

/// Record the enclosing scope's duration into histogram `name` (ns).
#define WHART_TIMER(name)                                                 \
  [[maybe_unused]] const ::whart::common::obs::ScopedTimer                \
      WHART_OBS_CONCAT(whart_obs_timer_, __LINE__)(                       \
          []() noexcept -> ::whart::common::obs::Histogram* {             \
            if (!::whart::common::obs::metrics_enabled()) return nullptr; \
            static ::whart::common::obs::Histogram& whart_obs_histogram = \
                ::whart::common::obs::Registry::instance().histogram(     \
                    name);                                                \
            return &whart_obs_histogram;                                  \
          }())

#define WHART_COUNT(name) WHART_COUNT_N(name, 1)

#define WHART_COUNT_N(name, n)                                          \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Counter& whart_obs_counter =         \
          ::whart::common::obs::Registry::instance().counter(name);     \
      whart_obs_counter.add(static_cast<std::uint64_t>(n));             \
    }                                                                   \
  } while (false)

#define WHART_GAUGE_SET(name, value)                                    \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Gauge& whart_obs_gauge =             \
          ::whart::common::obs::Registry::instance().gauge(name);       \
      whart_obs_gauge.set(static_cast<double>(value));                  \
    }                                                                   \
  } while (false)

/// Apply a +/- delta to gauge `name` (lock-free CAS on the double).
#define WHART_GAUGE_ADD(name, delta)                                    \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Gauge& whart_obs_gauge =             \
          ::whart::common::obs::Registry::instance().gauge(name);       \
      whart_obs_gauge.add(static_cast<double>(delta));                  \
    }                                                                   \
  } while (false)

#define WHART_OBSERVE(name, value)                                      \
  do {                                                                  \
    if (::whart::common::obs::metrics_enabled()) {                      \
      static ::whart::common::obs::Histogram& whart_obs_histogram =     \
          ::whart::common::obs::Registry::instance().histogram(name);   \
      whart_obs_histogram.record(static_cast<std::uint64_t>(value));    \
    }                                                                   \
  } while (false)

/// Record a flight-recorder event: `kind` is a bare EventKind
/// enumerator (e.g. kCacheHit), `name` a string literal (interned once
/// per call site), p0/p1 the payload words.
#define WHART_EVENT(kind, name, p0, p1)                                    \
  do {                                                                     \
    if (::whart::common::obs::events_enabled()) {                          \
      static const std::uint16_t whart_obs_event_name =                    \
          ::whart::common::obs::EventLog::instance().intern(name);         \
      ::whart::common::obs::EventLog::instance().record(                   \
          ::whart::common::obs::EventKind::kind, whart_obs_event_name,     \
          static_cast<std::uint64_t>(p0), static_cast<std::uint64_t>(p1)); \
    }                                                                      \
  } while (false)

#endif  // WHART_OBS_DISABLED
