// Parallel execution subsystem: a small fixed-size thread pool plus
// parallel_for / parallel_map helpers used by every fan-out hot path
// (per-path network analysis, parameter sweeps, Monte-Carlo shards).
//
// Determinism contract: the helpers assign results by index, so a
// parallel run produces output bit-identical to the serial loop it
// replaces — threads only change wall-clock time, never results.  The
// worker count comes from an explicit argument when given, otherwise
// from the WHART_THREADS environment variable, otherwise from the
// hardware concurrency; `threads <= 1` (or fewer than two items) falls
// back to running serially on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::common {

/// Where a resolved thread count came from (exported as the gauge
/// `parallel.threads.source`: 0 = argument, 1 = environment, 2 =
/// hardware).
enum class ThreadCountSource : int {
  kArgument = 0,
  kEnvironment = 1,
  kHardware = 2,
};

struct ResolvedThreadCount {
  unsigned threads = 1;
  ThreadCountSource source = ThreadCountSource::kHardware;
};

/// Resolve an execution width with provenance: `requested` > 0 wins; 0
/// consults the WHART_THREADS environment variable (clamped to >= 1);
/// an unset or unparsable variable falls back to
/// std::thread::hardware_concurrency() (itself clamped to >= 1).
ResolvedThreadCount resolve_thread_count_detailed(unsigned requested = 0);

/// The width alone; also publishes the `parallel.threads.resolved` /
/// `parallel.threads.source` gauges.
unsigned resolve_thread_count(unsigned requested = 0);

/// A fixed-size pool of worker threads draining one task queue.  Tasks
/// must not throw; the parallel_for/parallel_map helpers wrap user
/// callables with exception capture before submitting.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);

  /// Joins all workers after the queue drains.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t next_task_ = 0;   // queue_ front (popped lazily)
  std::size_t in_flight_ = 0;   // queued + running tasks
  bool stopping_ = false;
};

namespace detail {

/// Runs fn(i) for i in [0, n) on `threads` resolved workers, pulling
/// indices from a shared atomic counter (dynamic scheduling — per-item
/// cost is uneven in every caller).  The first exception thrown by fn is
/// rethrown on the calling thread after all workers finish.
void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       unsigned threads);

}  // namespace detail

/// Invoke fn(i) for every i in [0, n); fn must be safe to call from
/// several threads at once.  Serial when the resolved width is 1 or
/// n < 2.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, unsigned threads = 0) {
  const unsigned width = resolve_thread_count(threads);
  if (width <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::parallel_for_impl(n, std::function<void(std::size_t)>(fn), width);
}

/// Map fn over items; result i is fn(items[i]), in input order regardless
/// of which thread computed it.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, unsigned threads = 0)
    -> std::vector<decltype(fn(items[std::size_t{0}]))> {
  std::vector<decltype(fn(items[std::size_t{0}]))> results(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      threads);
  return results;
}

/// A pool of reusable default-constructed workspaces, leased one per
/// task so warm scratch buffers survive across loop iterations instead
/// of being reallocated — the allocation-free half of the
/// symbolic/numeric split's hot sweep loop.  acquire() reuses an idle
/// workspace when one exists and creates a new one otherwise, so the
/// pool grows to the peak number of concurrent lessees (published as the
/// `parallel.workspace_pool.size` gauge) and never beyond.
template <typename T>
class WorkspacePool {
 public:
  /// RAII lease: returns the workspace to the pool on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          item_(std::move(other.item_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        item_ = std::move(other.item_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] T& operator*() noexcept { return *item_; }
    [[nodiscard]] T* operator->() noexcept { return item_.get(); }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<T> item) noexcept
        : pool_(pool), item_(std::move(item)) {}
    void release() noexcept {
      if (pool_ != nullptr && item_ != nullptr)
        pool_->release(std::move(item_));
      pool_ = nullptr;
    }

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<T> item_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  [[nodiscard]] Lease acquire() {
    std::unique_ptr<T> item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        item = std::move(idle_.back());
        idle_.pop_back();
      } else {
        ++created_;
        WHART_GAUGE_SET("parallel.workspace_pool.size", created_);
      }
    }
    if (item == nullptr) item = std::make_unique<T>();
    return Lease(this, std::move(item));
  }

  /// Workspaces ever created (== peak concurrent leases).
  [[nodiscard]] std::size_t created() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

 private:
  void release(std::unique_ptr<T> item) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(item));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> idle_;
  std::size_t created_ = 0;
};

}  // namespace whart::common
