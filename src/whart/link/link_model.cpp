#include "whart/link/link_model.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"
#include "whart/phy/modulation.hpp"

namespace whart::link {

LinkModel::LinkModel(double failure_probability, double recovery_probability)
    : pfl_(failure_probability), prc_(recovery_probability) {
  expects(pfl_ >= 0.0 && pfl_ <= 1.0, "0 <= pfl <= 1");
  expects(prc_ >= 0.0 && prc_ <= 1.0, "0 <= prc <= 1");
  expects(pfl_ + prc_ > 0.0, "pfl + prc > 0",
          "a chain with pfl = prc = 0 never changes state");
}

LinkModel LinkModel::from_ber(double bit_error_rate,
                              std::uint32_t message_bits,
                              double recovery_probability) {
  return LinkModel(
      phy::message_failure_probability(bit_error_rate, message_bits),
      recovery_probability);
}

LinkModel LinkModel::from_snr(phy::EbN0 ebn0, std::uint32_t message_bits,
                              double recovery_probability) {
  return from_ber(phy::oqpsk_ber(ebn0), message_bits, recovery_probability);
}

LinkModel LinkModel::from_availability(double availability,
                                       double recovery_probability) {
  expects(availability > 0.0 && availability <= 1.0, "0 < pi(up) <= 1");
  const double pfl =
      recovery_probability * (1.0 - availability) / availability;
  expects(pfl <= 1.0, "pfl <= 1",
          "availability too low for the given recovery probability");
  return LinkModel(pfl, recovery_probability);
}

LinkModel LinkModel::from_channel_failures(
    std::span<const double> channel_failure_probs) {
  expects(!channel_failure_probs.empty(), "at least one channel");
  const std::size_t n = channel_failure_probs.size();
  double mean = 0.0;
  for (double f : channel_failure_probs) {
    expects(f >= 0.0 && f <= 1.0, "0 <= channel failure prob <= 1");
    mean += f;
  }
  mean /= static_cast<double>(n);
  const double pfl = mean;

  if (n == 1) return LinkModel(pfl, 1.0 - channel_failure_probs[0]);

  // P(fail after the hop | current slot failed): the current channel i
  // is distributed proportionally to f_i; the hop lands uniformly on one
  // of the n-1 other channels.
  double total_fail = 0.0;
  double fail_after_hop = 0.0;
  const double sum_f = mean * static_cast<double>(n);
  for (double f : channel_failure_probs) {
    total_fail += f;
    fail_after_hop += f * (sum_f - f) / static_cast<double>(n - 1);
  }
  const double prc =
      total_fail > 0.0 ? 1.0 - fail_after_hop / total_fail : 1.0;
  return LinkModel(pfl, prc);
}

double LinkModel::steady_state_availability() const noexcept {
  return prc_ / (prc_ + pfl_);
}

double LinkModel::up_probability_after(double initial_up_probability,
                                       std::uint64_t slots) const {
  expects(initial_up_probability >= 0.0 && initial_up_probability <= 1.0,
          "0 <= p0 <= 1");
  const double pi = steady_state_availability();
  const double lambda = memory_eigenvalue();
  return pi + (initial_up_probability - pi) *
                  std::pow(lambda, static_cast<double>(slots));
}

double LinkModel::up_probability_after(LinkState initial,
                                       std::uint64_t slots) const {
  return up_probability_after(initial == LinkState::kUp ? 1.0 : 0.0, slots);
}

double LinkModel::memory_eigenvalue() const noexcept {
  return 1.0 - pfl_ - prc_;
}

std::uint64_t LinkModel::slots_to_steady_state(double tolerance) const {
  expects(tolerance > 0.0, "tolerance > 0");
  const double pi = steady_state_availability();
  const double worst_gap = std::max(pi, 1.0 - pi);
  if (worst_gap <= tolerance) return 0;
  const double lambda = std::abs(memory_eigenvalue());
  if (lambda == 0.0) return 1;
  // Smallest t with worst_gap * lambda^t <= tolerance.
  const double t = std::log(tolerance / worst_gap) / std::log(lambda);
  return static_cast<std::uint64_t>(std::ceil(t));
}

markov::Dtmc LinkModel::to_dtmc() const {
  using linalg::Triplet;
  std::vector<Triplet> transitions{
      {0, 0, 1.0 - pfl_}, {0, 1, pfl_}, {1, 0, prc_}, {1, 1, 1.0 - prc_}};
  return markov::Dtmc(2, std::move(transitions), {"UP", "DOWN"});
}

}  // namespace whart::link
