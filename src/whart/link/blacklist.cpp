#include "whart/link/blacklist.hpp"

#include "whart/common/contracts.hpp"

namespace whart::link {

ChannelBlacklist::ChannelBlacklist() : ChannelBlacklist(Config{}) {}

ChannelBlacklist::ChannelBlacklist(Config config)
    : config_(config),
      consecutive_failures_(config.channel_count, 0),
      blacklisted_(config.channel_count, false),
      active_count_(config.channel_count) {
  expects(config_.channel_count > 0, "channel_count > 0");
  expects(config_.failure_threshold > 0, "failure_threshold > 0");
  expects(config_.min_active_channels >= 1 &&
              config_.min_active_channels <= config_.channel_count,
          "1 <= min_active_channels <= channel_count");
}

void ChannelBlacklist::record_result(ChannelId channel, bool success) {
  expects(channel < config_.channel_count, "channel in range");
  if (success) {
    consecutive_failures_[channel] = 0;
    return;
  }
  if (blacklisted_[channel]) return;
  if (++consecutive_failures_[channel] >= config_.failure_threshold &&
      active_count_ > config_.min_active_channels) {
    blacklisted_[channel] = true;
    --active_count_;
  }
}

void ChannelBlacklist::reset() {
  std::fill(blacklisted_.begin(), blacklisted_.end(), false);
  std::fill(consecutive_failures_.begin(), consecutive_failures_.end(), 0u);
  active_count_ = config_.channel_count;
}

bool ChannelBlacklist::is_blacklisted(ChannelId channel) const {
  expects(channel < config_.channel_count, "channel in range");
  return blacklisted_[channel];
}

std::vector<ChannelId> ChannelBlacklist::active_channels() const {
  std::vector<ChannelId> result;
  result.reserve(active_count_);
  for (ChannelId c = 0; c < config_.channel_count; ++c)
    if (!blacklisted_[c]) result.push_back(c);
  return result;
}

std::size_t ChannelBlacklist::active_count() const noexcept {
  return active_count_;
}

ChannelHopper::ChannelHopper(std::uint64_t seed) : rng_(seed) {}

ChannelId ChannelHopper::next(const ChannelBlacklist& blacklist) {
  const std::vector<ChannelId> active = blacklist.active_channels();
  ensures(!active.empty(), "at least one active channel");
  if (active.size() == 1) {
    current_ = active.front();
    return current_;
  }
  // Hop to a uniformly random *different* active channel.
  for (;;) {
    const ChannelId candidate = active[rng_.below(active.size())];
    if (candidate != current_) {
      current_ = candidate;
      return current_;
    }
  }
}

}  // namespace whart::link
