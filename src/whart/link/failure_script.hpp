// Failure scripting for robustness studies (paper Section VI-C).  A link
// can be forced DOWN during given slot windows — e.g. a physical
// obstruction lasting one superframe cycle — after which it recovers
// according to its DTMC dynamics starting from the DOWN state.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/link/link_model.hpp"

namespace whart::link {

/// A half-open range of absolute slots [begin, end) during which the link
/// is forced DOWN.
struct FailureWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] bool contains(std::uint64_t slot) const noexcept {
    return slot >= begin && slot < end;
  }
  friend bool operator==(const FailureWindow&, const FailureWindow&) = default;
};

/// A link model overlaid with scripted failure windows.
///
/// Outside all windows the UP probability follows the base model: steady
/// state before the first window, and the transient recovery from DOWN
/// after the most recent window has ended.
class ScriptedLink {
 public:
  /// Windows must be sorted by begin and non-overlapping (checked).
  ScriptedLink(LinkModel base, std::vector<FailureWindow> windows);

  /// UP probability at the given absolute slot (0-based).
  [[nodiscard]] double up_probability(std::uint64_t slot) const;

  [[nodiscard]] const LinkModel& base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<FailureWindow>& windows() const noexcept {
    return windows_;
  }

 private:
  LinkModel base_;
  std::vector<FailureWindow> windows_;
};

/// Convenience: a window spanning `cycles` superframe cycles of
/// `slots_per_cycle` slots, starting at cycle `first_cycle` (0-based).
FailureWindow cycle_window(std::uint32_t first_cycle, std::uint32_t cycles,
                           std::uint32_t slots_per_cycle);

}  // namespace whart::link
