#include "whart/link/failure_script.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::link {

ScriptedLink::ScriptedLink(LinkModel base, std::vector<FailureWindow> windows)
    : base_(base), windows_(std::move(windows)) {
  for (const FailureWindow& w : windows_)
    expects(w.begin < w.end, "window is non-empty");
  expects(std::is_sorted(windows_.begin(), windows_.end(),
                         [](const FailureWindow& a, const FailureWindow& b) {
                           return a.begin < b.begin;
                         }),
          "windows sorted by begin");
  for (std::size_t i = 1; i < windows_.size(); ++i)
    expects(windows_[i - 1].end <= windows_[i].begin,
            "windows do not overlap");
}

double ScriptedLink::up_probability(std::uint64_t slot) const {
  // Find the last window that starts at or before `slot`.
  const FailureWindow* last_before = nullptr;
  for (const FailureWindow& w : windows_) {
    if (w.begin > slot) break;
    if (w.contains(slot)) return 0.0;
    last_before = &w;
  }
  if (last_before == nullptr) return base_.steady_state_availability();
  // The link exits the window in the DOWN state; recover transiently.
  // At slot == end the link has had one slot to hop to a fresh channel.
  return base_.up_probability_after(LinkState::kDown,
                                    slot - (last_before->end - 1));
}

FailureWindow cycle_window(std::uint32_t first_cycle, std::uint32_t cycles,
                           std::uint32_t slots_per_cycle) {
  expects(cycles > 0 && slots_per_cycle > 0,
          "cycles > 0 && slots_per_cycle > 0");
  const std::uint64_t begin =
      static_cast<std::uint64_t>(first_cycle) * slots_per_cycle;
  return FailureWindow{begin, begin + static_cast<std::uint64_t>(cycles) *
                                          slots_per_cycle};
}

}  // namespace whart::link
