// The paper's two-state link DTMC (Section III, Fig. 3): a link is UP or
// DOWN in each 10 ms slot; it fails with probability pfl and recovers with
// probability prc (close to 1 thanks to channel hopping + blacklisting).
#pragma once

#include <cstdint>
#include <span>

#include "whart/markov/dtmc.hpp"
#include "whart/phy/frame.hpp"
#include "whart/phy/snr.hpp"

namespace whart::link {

/// State of a link in a slot.
enum class LinkState : std::uint8_t { kUp = 0, kDown = 1 };

/// Two-state UP/DOWN link model.
///
/// Immutable value type.  All probabilities are per-slot.
class LinkModel {
 public:
  /// The paper's default recovery probability (Sections V-B, VI).
  static constexpr double kDefaultRecovery = 0.9;

  /// Construct from failure and recovery probabilities, both in [0, 1].
  /// pfl + prc must be positive (the chain must not be frozen in place).
  LinkModel(double failure_probability, double recovery_probability);

  /// From a bit error rate via paper Eq. 2: pfl = 1 - (1 - BER)^L.
  static LinkModel from_ber(double bit_error_rate,
                            std::uint32_t message_bits = phy::kMessageBits,
                            double recovery_probability = kDefaultRecovery);

  /// From a measured Eb/N0 via Eq. 1 (OQPSK over AWGN) and Eq. 2.
  static LinkModel from_snr(phy::EbN0 ebn0,
                            std::uint32_t message_bits = phy::kMessageBits,
                            double recovery_probability = kDefaultRecovery);

  /// The link whose stationary availability pi(up) equals `availability`
  /// given the recovery probability: pfl = prc (1 - pi) / pi.
  static LinkModel from_availability(
      double availability, double recovery_probability = kDefaultRecovery);

  /// Derive (pfl, prc) from per-channel message-failure probabilities
  /// under per-slot uniform pseudo-random hopping over the active
  /// channels — the mechanism the paper invokes for "prc very close to
  /// 1":
  ///   pfl = E_i[f_i]                       (a uniformly-chosen channel fails)
  ///   prc = 1 - E[f_j | hop j != i, weighted by P(current = i, failed)]
  /// Blacklisting the bad channels (dropping their entries) demonstrably
  /// pushes prc toward 1.  `channel_failure_probs` must be non-empty; a
  /// single channel means no hop is possible and prc = 1 - f_0.
  static LinkModel from_channel_failures(
      std::span<const double> channel_failure_probs);

  [[nodiscard]] double failure_probability() const noexcept { return pfl_; }
  [[nodiscard]] double recovery_probability() const noexcept { return prc_; }

  /// Stationary availability pi(up) = prc / (prc + pfl)  (paper Eq. 4).
  [[nodiscard]] double steady_state_availability() const noexcept;

  /// Transient UP probability after `slots` steps given the UP probability
  /// at slot 0 (paper Eq. 3, in closed form:
  /// p_up(t) = pi + (p0 - pi) (1 - pfl - prc)^t).
  [[nodiscard]] double up_probability_after(double initial_up_probability,
                                            std::uint64_t slots) const;

  /// Transient UP probability after `slots` steps from a known state.
  [[nodiscard]] double up_probability_after(LinkState initial,
                                            std::uint64_t slots) const;

  /// Second eigenvalue lambda = 1 - pfl - prc; |lambda| governs how fast
  /// the link forgets its initial state (Fig. 17's "almost immediately").
  [[nodiscard]] double memory_eigenvalue() const noexcept;

  /// Number of slots until |p_up(t) - pi| <= tolerance from the worst-case
  /// initial state (DOWN when pi >= 1/2).
  [[nodiscard]] std::uint64_t slots_to_steady_state(double tolerance) const;

  /// The link as an explicit 2-state DTMC (states "UP", "DOWN").
  [[nodiscard]] markov::Dtmc to_dtmc() const;

  friend bool operator==(const LinkModel&, const LinkModel&) = default;

 private:
  double pfl_;
  double prc_;
};

}  // namespace whart::link
