// Finite-state Markov channel models (burst-loss links).  The paper's
// path DTMC assumes per-slot-independent failures; real industrial
// channels are bursty, and finite-state Markov chains are the standard
// fix ("Learning Markov models of fading channels", PAPERS.md).  A
// ChannelModel is a k-state chain evolving every 10 ms slot — including
// the downlink half of each superframe — with a per-state message error
// rate; k = 1 recovers the per-slot-independent regime and k = 2 with
// (p_good->bad, p_bad->good) is the classic Gilbert-Elliott model.
//
// The path solver enlarges its DTMC state space so each hop carries its
// channel state (hart/path_model_channel.cpp); the Monte-Carlo simulator
// draws from the same chain (sim::LinkRegime::kChannel), which is the
// cross-validation target of the verify battery.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/markov/dtmc.hpp"

namespace whart::link {

/// A k-state Markov fading channel with per-state message error rates.
///
/// Immutable value type.  The transition matrix is row-stochastic; the
/// stationary distribution is solved at construction (closed form for
/// k <= 2, direct linear solve otherwise) and cached.
class ChannelModel {
 public:
  /// Per-slot-independent channel: one state, every attempt succeeds
  /// with `success_probability`.
  static ChannelModel iid(double success_probability = 1.0);

  /// Two-state Gilbert-Elliott channel: Good -> Bad with p_good_to_bad,
  /// Bad -> Good with p_bad_to_good; attempts fail with error_good in
  /// the Good state and error_bad in the Bad state.  State 0 is Good.
  static ChannelModel gilbert_elliott(double p_good_to_bad,
                                      double p_bad_to_good,
                                      double error_good, double error_bad);

  /// General k-state fading chain from a row-major k x k transition
  /// matrix and k per-state error rates.
  static ChannelModel chain(std::vector<double> transition_row_major,
                            std::vector<double> error_rates);

  /// The paper's UP/DOWN link DTMC as a channel: Gilbert-Elliott with
  /// (pfl, prc) transitions, error 0 when UP and 1 when DOWN.
  static ChannelModel from_link_model(const LinkModel& link);

  /// Parse a CLI spec: "iid" | "ge:pgb,pbg,eg,eb" | "chain:<file>".
  /// The chain file holds k on the first line, then k rows of k
  /// transition probabilities, then one line of k error rates
  /// (whitespace-separated; '#' starts a comment).  Throws
  /// whart::invariant_error on malformed specs.
  static ChannelModel parse(const std::string& spec);

  /// Number of channel states k (1 for iid, 2 for Gilbert-Elliott).
  [[nodiscard]] std::size_t state_count() const noexcept { return states_; }

  /// True when the channel carries no slot-to-slot memory (k == 1).
  [[nodiscard]] bool is_iid() const noexcept { return states_ == 1; }

  /// Transition probability from state `from` to state `to`.
  [[nodiscard]] double transition(std::size_t from, std::size_t to) const {
    return transition_[from * states_ + to];
  }

  /// Message error rate while the channel sits in `state`.
  [[nodiscard]] double error_rate(std::size_t state) const {
    return error_[state];
  }

  /// Per-attempt success probability in `state` (1 - error rate).
  [[nodiscard]] double success_in_state(std::size_t state) const {
    return 1.0 - error_[state];
  }

  /// Stationary distribution of the channel chain (size k).
  [[nodiscard]] const std::vector<double>& stationary() const noexcept {
    return stationary_;
  }

  /// Stationary per-attempt success probability
  /// sum_s pi(s) (1 - e_s) — the availability an engineer would measure
  /// on this channel, and the value a degenerate chain must reproduce
  /// through the i.i.d. solver.
  [[nodiscard]] double marginal_success() const noexcept;

  /// Expected sojourn length of `state` in slots: 1 / (1 - P(s, s)).
  [[nodiscard]] double mean_sojourn_slots(std::size_t state) const;

  /// Gilbert-Elliott mean burst length: expected consecutive slots in
  /// the Bad state, 1 / p_bad->good.  Requires k == 2.
  [[nodiscard]] double mean_bad_burst_length() const;

  /// The same burst structure rescaled so marginal_success() equals
  /// `availability`: error rates are multiplied by
  /// (1 - availability) / sum_s pi(s) e_s (clamped to [0, 1]); the
  /// transition matrix — hence the stationary distribution and burst
  /// lengths — is unchanged.  A channel with zero error everywhere and
  /// availability < 1 gets the uniform error rate 1 - availability.
  /// This is how a channel *template* (--channel) combines with each
  /// link's engineered availability.
  [[nodiscard]] ChannelModel with_marginal_success(double availability) const;

  /// The channel chain as an explicit DTMC (states "C0", "C1", ...).
  [[nodiscard]] markov::Dtmc to_dtmc() const;

  /// Round-trippable spec string ("iid" stays "iid" only at success 1;
  /// otherwise "ge:..." / "chain(k)[...]").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ChannelModel&, const ChannelModel&) = default;

 private:
  ChannelModel(std::size_t states, std::vector<double> transition_row_major,
               std::vector<double> error_rates);

  std::size_t states_;
  std::vector<double> transition_;  ///< k x k, row-major
  std::vector<double> error_;      ///< k
  std::vector<double> stationary_;  ///< k, solved at construction
};

}  // namespace whart::link
