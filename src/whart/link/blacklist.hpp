// Channel hopping and blacklisting (paper Section II / III).  The network
// manager maintains the list of active channels; channels that keep failing
// are banned to the blacklist after a period of time, which is what keeps
// the link recovery probability prc close to 1.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/numeric/rng.hpp"
#include "whart/phy/frame.hpp"

namespace whart::link {

/// Identifier of one of the 16 IEEE 802.15.4 channels (0-based index).
using ChannelId = std::uint32_t;

/// Tracks per-channel failures and maintains the active channel list.
class ChannelBlacklist {
 public:
  struct Config {
    std::uint32_t channel_count = phy::kChannelCount;
    /// Consecutive failures after which a channel is blacklisted.
    std::uint32_t failure_threshold = 4;
    /// Keep at least this many channels active (the standard requires a
    /// minimum hopping set); the worst offenders stay blacklisted first.
    std::uint32_t min_active_channels = 5;
  };

  /// Default configuration (16 channels, threshold 4, at least 5 active).
  ChannelBlacklist();

  explicit ChannelBlacklist(Config config);

  /// Record the outcome of a transmission on `channel`.  Successes reset
  /// the consecutive-failure counter; failures may blacklist the channel.
  void record_result(ChannelId channel, bool success);

  /// Re-admit every blacklisted channel (periodic maintenance by the
  /// network manager).
  void reset();

  [[nodiscard]] bool is_blacklisted(ChannelId channel) const;

  /// Channels currently allowed for hopping, ascending.
  [[nodiscard]] std::vector<ChannelId> active_channels() const;

  [[nodiscard]] std::size_t active_count() const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::vector<std::uint32_t> consecutive_failures_;
  std::vector<bool> blacklisted_;
  std::size_t active_count_;
};

/// Pseudo-random channel-hopping sequence over the active channels of a
/// blacklist, as used per-slot by the simulator.  Never returns the same
/// channel twice in a row when more than one channel is active ("whenever
/// the link suffers a bad frequency channel, it will hop to a new channel
/// in the next slot").
class ChannelHopper {
 public:
  explicit ChannelHopper(std::uint64_t seed);

  /// Next channel to use given the current blacklist state.
  ChannelId next(const ChannelBlacklist& blacklist);

  [[nodiscard]] ChannelId current() const noexcept { return current_; }

 private:
  numeric::Xoshiro256 rng_;
  ChannelId current_ = 0;
};

}  // namespace whart::link
