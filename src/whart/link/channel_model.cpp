#include "whart/link/channel_model.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "whart/common/contracts.hpp"
#include "whart/markov/steady_state.hpp"

namespace whart::link {

namespace {

constexpr double kRowTolerance = 1e-9;

std::vector<double> solve_stationary(std::size_t states,
                                     const std::vector<double>& transition) {
  if (states == 1) return {1.0};
  if (states == 2) {
    const double p01 = transition[1];
    const double p10 = transition[2];
    expects(p01 + p10 > 0.0, "channel chain must not be frozen in place");
    const double pi0 = p10 / (p01 + p10);
    return {pi0, 1.0 - pi0};
  }
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(states * states);
  for (std::size_t r = 0; r < states; ++r)
    for (std::size_t c = 0; c < states; ++c)
      if (transition[r * states + c] != 0.0)
        triplets.push_back({r, c, transition[r * states + c]});
  const linalg::Vector pi =
      markov::steady_state_direct(markov::Dtmc(states, std::move(triplets)));
  std::vector<double> result(states);
  for (std::size_t s = 0; s < states; ++s) result[s] = pi[s];
  return result;
}

}  // namespace

ChannelModel::ChannelModel(std::size_t states,
                           std::vector<double> transition_row_major,
                           std::vector<double> error_rates)
    : states_(states),
      transition_(std::move(transition_row_major)),
      error_(std::move(error_rates)) {
  expects(states_ >= 1, "at least one channel state");
  expects(transition_.size() == states_ * states_,
          "transition matrix is k x k");
  expects(error_.size() == states_, "one error rate per state");
  for (double e : error_)
    expects(e >= 0.0 && e <= 1.0, "0 <= error rate <= 1");
  for (std::size_t r = 0; r < states_; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < states_; ++c) {
      const double p = transition_[r * states_ + c];
      expects(p >= 0.0 && p <= 1.0, "0 <= transition probability <= 1");
      row += p;
    }
    expects(std::abs(row - 1.0) <= kRowTolerance,
            "channel transition rows must sum to 1");
  }
  stationary_ = solve_stationary(states_, transition_);
}

ChannelModel ChannelModel::iid(double success_probability) {
  expects(success_probability >= 0.0 && success_probability <= 1.0,
          "0 <= success probability <= 1");
  return ChannelModel(1, {1.0}, {1.0 - success_probability});
}

ChannelModel ChannelModel::gilbert_elliott(double p_good_to_bad,
                                           double p_bad_to_good,
                                           double error_good,
                                           double error_bad) {
  expects(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0, "0 <= p_gb <= 1");
  expects(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0, "0 <= p_bg <= 1");
  expects(p_good_to_bad + p_bad_to_good > 0.0,
          "channel chain must not be frozen in place");
  return ChannelModel(2,
                      {1.0 - p_good_to_bad, p_good_to_bad,  //
                       p_bad_to_good, 1.0 - p_bad_to_good},
                      {error_good, error_bad});
}

ChannelModel ChannelModel::chain(std::vector<double> transition_row_major,
                                 std::vector<double> error_rates) {
  const std::size_t states = error_rates.size();
  return ChannelModel(states, std::move(transition_row_major),
                      std::move(error_rates));
}

ChannelModel ChannelModel::from_link_model(const LinkModel& link) {
  return gilbert_elliott(link.failure_probability(),
                         link.recovery_probability(), 0.0, 1.0);
}

ChannelModel ChannelModel::parse(const std::string& spec) {
  if (spec == "iid") return iid();
  if (spec.starts_with("ge:")) {
    std::istringstream in(spec.substr(3));
    double v[4];
    char comma = ',';
    for (int i = 0; i < 4; ++i) {
      if (i > 0 && (!(in >> comma) || comma != ','))
        expects(false, "ge spec is ge:pgb,pbg,eg,eb");
      if (!(in >> v[i])) expects(false, "ge spec is ge:pgb,pbg,eg,eb");
    }
    char trailing = 0;
    expects(!(in >> trailing), "ge spec is ge:pgb,pbg,eg,eb",
            "trailing characters after the fourth parameter");
    return gilbert_elliott(v[0], v[1], v[2], v[3]);
  }
  if (spec.starts_with("chain:")) {
    const std::string path = spec.substr(6);
    std::ifstream file(path);
    expects(static_cast<bool>(file), "chain file must be readable", path);
    // Strip '#' comments, then read k, k*k transitions, k error rates.
    std::stringstream tokens;
    std::string line;
    while (std::getline(file, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      tokens << line << ' ';
    }
    std::size_t k = 0;
    expects(static_cast<bool>(tokens >> k) && k >= 1,
            "chain file starts with the state count k");
    std::vector<double> transition(k * k);
    for (double& p : transition)
      expects(static_cast<bool>(tokens >> p),
              "chain file needs k rows of k transition probabilities");
    std::vector<double> error(k);
    for (double& e : error)
      expects(static_cast<bool>(tokens >> e),
              "chain file ends with k error rates");
    return chain(std::move(transition), std::move(error));
  }
  expects(false, "channel spec is iid | ge:pgb,pbg,eg,eb | chain:<file>",
          spec);
  return iid();  // unreachable
}

double ChannelModel::marginal_success() const noexcept {
  double expected_error = 0.0;
  for (std::size_t s = 0; s < states_; ++s)
    expected_error += stationary_[s] * error_[s];
  return 1.0 - expected_error;
}

double ChannelModel::mean_sojourn_slots(std::size_t state) const {
  expects(state < states_, "state < k");
  const double stay = transition_[state * states_ + state];
  expects(stay < 1.0, "state must be leavable");
  return 1.0 / (1.0 - stay);
}

double ChannelModel::mean_bad_burst_length() const {
  expects(states_ == 2, "burst length is a Gilbert-Elliott notion (k = 2)");
  return mean_sojourn_slots(1);
}

ChannelModel ChannelModel::with_marginal_success(double availability) const {
  expects(availability >= 0.0 && availability <= 1.0,
          "0 <= availability <= 1");
  const double current_error = 1.0 - marginal_success();
  std::vector<double> error(states_);
  if (current_error <= 0.0) {
    // An error-free template carries burst structure in its transitions
    // only; give every state the uniform error that hits the target.
    for (double& e : error) e = 1.0 - availability;
  } else {
    const double scale = (1.0 - availability) / current_error;
    for (std::size_t s = 0; s < states_; ++s) {
      const double e = scale * error_[s];
      error[s] = e < 0.0 ? 0.0 : (e > 1.0 ? 1.0 : e);
    }
  }
  return ChannelModel(states_, transition_, std::move(error));
}

markov::Dtmc ChannelModel::to_dtmc() const {
  std::vector<linalg::Triplet> triplets;
  std::vector<std::string> names;
  triplets.reserve(states_ * states_);
  names.reserve(states_);
  for (std::size_t r = 0; r < states_; ++r) {
    names.push_back("C" + std::to_string(r));
    for (std::size_t c = 0; c < states_; ++c)
      if (transition_[r * states_ + c] != 0.0)
        triplets.push_back({r, c, transition_[r * states_ + c]});
  }
  return markov::Dtmc(states_, std::move(triplets), std::move(names));
}

std::string ChannelModel::to_string() const {
  std::ostringstream out;
  if (states_ == 1) {
    if (error_[0] == 0.0) return "iid";
    out << "iid(success=" << 1.0 - error_[0] << ")";
    return out.str();
  }
  if (states_ == 2) {
    out << "ge:" << transition_[1] << ',' << transition_[2] << ','
        << error_[0] << ',' << error_[1];
    return out.str();
  }
  out << "chain(" << states_ << ")[";
  for (std::size_t r = 0; r < states_; ++r) {
    if (r > 0) out << "; ";
    for (std::size_t c = 0; c < states_; ++c) {
      if (c > 0) out << ' ';
      out << transition_[r * states_ + c];
    }
  }
  out << " | e:";
  for (std::size_t s = 0; s < states_; ++s) out << ' ' << error_[s];
  out << ']';
  return out.str();
}

}  // namespace whart::link
