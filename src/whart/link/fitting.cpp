#include "whart/link/fitting.hpp"

#include "whart/common/contracts.hpp"

namespace whart::link {

LinkModel GilbertFit::to_model() const {
  expects(pfl.has_value() && prc.has_value(),
          "both states observed in the trace");
  return LinkModel(*pfl, *prc);
}

GilbertFit fit_gilbert_from_counts(std::uint64_t up_to_down,
                                   std::uint64_t up_to_up,
                                   std::uint64_t down_to_up,
                                   std::uint64_t down_to_down) {
  GilbertFit fit;
  fit.up_to_down = up_to_down;
  fit.down_to_up = down_to_up;
  fit.up_slots = up_to_down + up_to_up;
  fit.down_slots = down_to_up + down_to_down;
  const std::uint64_t total = fit.up_slots + fit.down_slots;
  expects(total > 0, "at least one observed transition");
  fit.availability =
      static_cast<double>(fit.up_slots) / static_cast<double>(total);
  if (fit.up_slots > 0) {
    fit.pfl = static_cast<double>(up_to_down) /
              static_cast<double>(fit.up_slots);
    fit.pfl_interval = sim::wilson_interval(up_to_down, fit.up_slots);
  }
  if (fit.down_slots > 0) {
    fit.prc = static_cast<double>(down_to_up) /
              static_cast<double>(fit.down_slots);
    fit.prc_interval = sim::wilson_interval(down_to_up, fit.down_slots);
  }
  return fit;
}

GilbertFit fit_gilbert(const std::vector<bool>& up_trace) {
  expects(up_trace.size() >= 2, "trace has at least two slots");
  std::uint64_t up_to_down = 0;
  std::uint64_t up_to_up = 0;
  std::uint64_t down_to_up = 0;
  std::uint64_t down_to_down = 0;
  for (std::size_t t = 0; t + 1 < up_trace.size(); ++t) {
    if (up_trace[t]) {
      if (up_trace[t + 1])
        ++up_to_up;
      else
        ++up_to_down;
    } else {
      if (up_trace[t + 1])
        ++down_to_up;
      else
        ++down_to_down;
    }
  }
  return fit_gilbert_from_counts(up_to_down, up_to_up, down_to_up,
                                 down_to_down);
}

}  // namespace whart::link
