// Fit the two-state link model to observed data.  The network manager
// sees, per slot, whether a link's transmission succeeded; the maximum-
// likelihood estimates of (pfl, prc) are simple transition frequencies
// of the observed UP/DOWN trace, with Wilson intervals for honesty.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/link/link_model.hpp"
#include "whart/sim/stats.hpp"

namespace whart::link {

/// MLE fit of a Gilbert chain from a binary trace (true = UP).
struct GilbertFit {
  /// Transition counts observed in the trace.
  std::uint64_t up_slots = 0;         ///< slots spent UP (with successor)
  std::uint64_t down_slots = 0;       ///< slots spent DOWN (with successor)
  std::uint64_t up_to_down = 0;
  std::uint64_t down_to_up = 0;

  /// Point estimates; nullopt when the trace never visits the state.
  std::optional<double> pfl;
  std::optional<double> prc;

  /// Wilson 95% intervals for the estimates (meaningful when set).
  sim::Interval pfl_interval;
  sim::Interval prc_interval;

  /// The fitted model; requires both estimates (throws otherwise).
  [[nodiscard]] LinkModel to_model() const;

  /// Empirical availability: fraction of UP slots over the whole trace.
  double availability = 0.0;
};

/// Fit from a slot-by-slot trace; needs at least two slots.
GilbertFit fit_gilbert(const std::vector<bool>& up_trace);

/// Fit from pre-aggregated transition counts (e.g. hardware registers).
GilbertFit fit_gilbert_from_counts(std::uint64_t up_to_down,
                                   std::uint64_t up_to_up,
                                   std::uint64_t down_to_up,
                                   std::uint64_t down_to_down);

}  // namespace whart::link
