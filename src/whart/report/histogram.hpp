// ASCII bar charts for pmfs — the text rendering of the paper's figures.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace whart::report {

/// Render a horizontal bar chart: one labeled bar per entry, scaled so the
/// largest value spans `width` characters.  Values must be non-negative.
void print_histogram(std::ostream& out, std::span<const std::string> labels,
                     std::span<const double> values, std::size_t width = 50);

/// Convenience: render to a string.
std::string histogram_to_string(std::span<const std::string> labels,
                                std::span<const double> values,
                                std::size_t width = 50);

}  // namespace whart::report
