// JSON export of the observability subsystem: metrics snapshots (with
// optional span aggregates and derived figures) and Chrome
// trace_event-format span dumps loadable in chrome://tracing / Perfetto.
// This is the writer behind `whart_cli --metrics=<file>` and
// `--trace=<file>`.
#pragma once

#include <iosfwd>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::report {

/// Serialize a metrics snapshot as a JSON object with "counters",
/// "gauges", "histograms", "derived" (figures computable from the
/// counters, e.g. the path-cache hit ratio) and, when `spans` is
/// non-empty, a "spans" array of flat per-name aggregates.
void write_metrics_json(std::ostream& out,
                        const common::obs::MetricsSnapshot& snapshot,
                        const std::vector<common::obs::SpanAggregate>& spans =
                            {});

/// Serialize completed spans in Chrome trace_event format: one complete
/// ("ph":"X") event per span, timestamps/durations in microseconds.
void write_chrome_trace_json(
    std::ostream& out, const std::vector<common::obs::SpanRecord>& events);

/// Human-readable aggregate table: name, count, total/mean/min/max ms.
void print_span_table(std::ostream& out,
                      const std::vector<common::obs::SpanAggregate>& spans);

}  // namespace whart::report
