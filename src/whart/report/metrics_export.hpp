// Export surface of the observability subsystem: metrics snapshots as
// JSON (with quantiles, span aggregates and derived figures), Chrome
// trace_event dumps (complete events plus cross-thread flow arrows),
// Prometheus text exposition, and the Sampler's time-series CSV.  These
// are the writers behind `whart_cli --metrics=<file>`, `--trace=<file>`
// and the `--obs-dir=<dir>` bundle.
#pragma once

#include <iosfwd>
#include <vector>

#include "whart/common/obs.hpp"

namespace whart::report {

/// Serialize a metrics snapshot as a JSON object with "counters",
/// "gauges", "histograms" (each with p50/p90/p99 estimates), "derived"
/// (figures computable from the counters, e.g. the path-cache hit
/// ratio) and, when `spans` is non-empty, a "spans" array of flat
/// per-name aggregates including exact quantiles.
void write_metrics_json(std::ostream& out,
                        const common::obs::MetricsSnapshot& snapshot,
                        const std::vector<common::obs::SpanAggregate>& spans =
                            {});

/// Serialize completed spans in Chrome trace_event format: one complete
/// ("ph":"X") event per span, timestamps/durations in microseconds,
/// causality ids in args, plus one flow-start ("ph":"s") / flow-finish
/// ("ph":"f") pair per ThreadPool task handoff when `flows` is given.
void write_chrome_trace_json(
    std::ostream& out, const std::vector<common::obs::SpanRecord>& events,
    const std::vector<common::obs::FlowRecord>& flows = {});

/// Prometheus text exposition format: counters (`_total` suffix),
/// gauges, and histograms rendered as summaries (quantile labels 0.5 /
/// 0.9 / 0.99 plus _sum/_count).  Names are prefixed `whart_` and
/// sanitized (non-alphanumerics become '_').
void write_prometheus_text(std::ostream& out,
                           const common::obs::MetricsSnapshot& snapshot);

/// The Sampler ring as long-format CSV: `t_ms,name,value`, one row per
/// counter/gauge per sample; histograms expand to `.count`, `.mean`,
/// `.p50`, `.p90`, `.p99` rows.
void write_timeseries_csv(
    std::ostream& out,
    const std::vector<common::obs::TimedMetricsSnapshot>& series);

/// Human-readable aggregate table: name, count, total/mean/p50/p99/
/// min/max ms.
void print_span_table(std::ostream& out,
                      const std::vector<common::obs::SpanAggregate>& spans);

}  // namespace whart::report
