// Minimal CSV output (RFC 4180 quoting) for exporting series to external
// plotting tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace whart::report {

/// Incremental CSV writer.
class CsvWriter {
 public:
  /// Write to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row; fields are quoted when they contain separators,
  /// quotes or newlines.
  void write_row(const std::vector<std::string>& fields);

  /// Quote a single field if needed (exposed for testing).
  static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
};

}  // namespace whart::report
