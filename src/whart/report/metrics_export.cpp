#include "whart/report/metrics_export.hpp"

#include <cctype>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

#include "whart/report/table.hpp"

namespace whart::report {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles rendered so the output stays valid JSON (no inf/nan tokens).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::string text = std::to_string(value);
  return text;
}

void write_histogram(std::ostream& out,
                     const common::obs::HistogramSnapshot& histogram) {
  out << "{\"count\": " << histogram.count << ", \"sum\": " << histogram.sum
      << ", \"min\": " << histogram.min << ", \"max\": " << histogram.max
      << ", \"mean\": " << json_number(histogram.mean())
      << ", \"p50\": " << json_number(histogram.p50())
      << ", \"p90\": " << json_number(histogram.p90())
      << ", \"p99\": " << json_number(histogram.p99())
      << ", \"buckets\": [";
  bool first = true;
  for (const auto& bucket : histogram.buckets) {
    if (!first) out << ", ";
    first = false;
    out << "{\"lower\": " << bucket.lower << ", \"upper\": " << bucket.upper
        << ", \"count\": " << bucket.count << "}";
  }
  out << "]}";
}

/// Prometheus metric-name sanitization: `whart_` prefix, every
/// character outside [a-zA-Z0-9_] becomes '_'.
std::string prom_name(std::string_view name) {
  std::string out = "whart_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out += (std::isalnum(uc) != 0) ? c : '_';
  }
  return out;
}

/// Prometheus sample values: text format spells non-finite values out.
std::string prom_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return std::to_string(value);
}

}  // namespace

void write_metrics_json(std::ostream& out,
                        const common::obs::MetricsSnapshot& snapshot,
                        const std::vector<common::obs::SpanAggregate>& spans) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    write_histogram(out, histogram);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"derived\": {";

  // Figures worth computing once instead of in every consumer.
  first = true;
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    const auto it = snapshot.counters.find(std::string(name));
    return it != snapshot.counters.end() ? it->second : 0;
  };
  const std::uint64_t hits = counter("hart.path_cache.hits");
  const std::uint64_t misses = counter("hart.path_cache.misses");
  if (hits + misses > 0) {
    out << "\n    \"cache_hit_ratio\": "
        << json_number(static_cast<double>(hits) /
                       static_cast<double>(hits + misses));
    first = false;
  }
  const std::uint64_t busy_ns = counter("parallel.busy_ns");
  const std::uint64_t tasks = counter("parallel.tasks");
  if (tasks > 0) {
    out << (first ? "\n" : ",\n")
        << "    \"parallel_mean_task_ns\": "
        << json_number(static_cast<double>(busy_ns) /
                       static_cast<double>(tasks));
    first = false;
  }
  // Skeleton reuse: refills per symbolic build.  A healthy reuse-heavy
  // run has a ratio near 1 (many numeric refills amortizing few
  // symbolic builds); a ratio near builds/(builds+refills) = 0.5 means
  // every solve rebuilt its skeleton.
  const std::uint64_t skeleton_builds = counter("hart.skeleton.builds");
  const std::uint64_t skeleton_refills = counter("hart.skeleton.refills");
  if (skeleton_builds + skeleton_refills > 0) {
    out << (first ? "\n" : ",\n")
        << "    \"skeleton_reuse_ratio\": "
        << json_number(static_cast<double>(skeleton_refills) /
                       static_cast<double>(skeleton_builds +
                                           skeleton_refills));
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  if (!spans.empty()) {
    out << ",\n  \"spans\": [";
    first = true;
    for (const auto& span : spans) {
      out << (first ? "\n" : ",\n") << "    {\"name\": \""
          << json_escape(span.name) << "\", \"count\": " << span.count
          << ", \"total_ns\": " << span.total_ns
          << ", \"min_ns\": " << span.min_ns
          << ", \"max_ns\": " << span.max_ns
          << ", \"p50_ns\": " << span.p50_ns
          << ", \"p90_ns\": " << span.p90_ns
          << ", \"p99_ns\": " << span.p99_ns << "}";
      first = false;
    }
    out << "\n  ]";
  }
  out << "\n}\n";
}

void write_chrome_trace_json(
    std::ostream& out, const std::vector<common::obs::SpanRecord>& events,
    const std::vector<common::obs::FlowRecord>& flows) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& event : events) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \""
        << json_escape(event.name)
        << "\", \"cat\": \"whart\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << event.thread_id << ", \"ts\": "
        << json_number(static_cast<double>(event.start_ns) / 1000.0)
        << ", \"dur\": "
        << json_number(static_cast<double>(event.duration_ns) / 1000.0)
        << ", \"args\": {\"depth\": " << event.depth;
    if (event.span_id != 0) out << ", \"span\": " << event.span_id;
    if (event.parent_id != 0) out << ", \"parent\": " << event.parent_id;
    if (event.request_id != 0) out << ", \"request\": " << event.request_id;
    if (event.flow_id != 0) out << ", \"flow\": " << event.flow_id;
    out << "}}";
    first = false;
  }
  // Cross-thread causality: one "s"/"f" pair per pool-task handoff; the
  // flow id ties the arrow to the destination span's "flow" arg.
  for (const auto& flow : flows) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"task\", \"cat\": "
        << "\"flow\", \"ph\": \"" << (flow.begin ? 's' : 'f')
        << "\", \"pid\": 1, \"tid\": " << flow.thread_id << ", \"ts\": "
        << json_number(static_cast<double>(flow.ts_ns) / 1000.0)
        << ", \"id\": " << flow.flow_id;
    if (!flow.begin) out << ", \"bp\": \"e\"";
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n") << "]}\n";
}

void write_prometheus_text(std::ostream& out,
                           const common::obs::MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prom_name(name) + "_total";
    out << "# HELP " << prom << " whart counter " << name << "\n";
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_name(name);
    out << "# HELP " << prom << " whart gauge " << name << "\n";
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << prom_number(value) << "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = prom_name(name);
    out << "# HELP " << prom << " whart histogram " << name << "\n";
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << prom_number(histogram.p50())
        << "\n";
    out << prom << "{quantile=\"0.9\"} " << prom_number(histogram.p90())
        << "\n";
    out << prom << "{quantile=\"0.99\"} " << prom_number(histogram.p99())
        << "\n";
    out << prom << "_sum " << histogram.sum << "\n";
    out << prom << "_count " << histogram.count << "\n";
  }
}

void write_timeseries_csv(
    std::ostream& out,
    const std::vector<common::obs::TimedMetricsSnapshot>& series) {
  out << "t_ms,name,value\n";
  for (const auto& sample : series) {
    const std::string t_ms =
        Table::fixed(static_cast<double>(sample.t_ns) / 1e6, 3);
    for (const auto& [name, value] : sample.metrics.counters)
      out << t_ms << "," << name << "," << value << "\n";
    for (const auto& [name, value] : sample.metrics.gauges)
      out << t_ms << "," << name << "," << json_number(value) << "\n";
    for (const auto& [name, histogram] : sample.metrics.histograms) {
      out << t_ms << "," << name << ".count," << histogram.count << "\n";
      out << t_ms << "," << name << ".mean,"
          << json_number(histogram.mean()) << "\n";
      out << t_ms << "," << name << ".p50," << json_number(histogram.p50())
          << "\n";
      out << t_ms << "," << name << ".p90," << json_number(histogram.p90())
          << "\n";
      out << t_ms << "," << name << ".p99," << json_number(histogram.p99())
          << "\n";
    }
  }
}

void print_span_table(std::ostream& out,
                      const std::vector<common::obs::SpanAggregate>& spans) {
  Table table({"span", "count", "total ms", "mean ms", "p50 ms", "p99 ms",
               "min ms", "max ms"});
  for (const auto& span : spans) {
    const double total_ms = static_cast<double>(span.total_ns) / 1e6;
    const double mean_ms =
        span.count > 0 ? total_ms / static_cast<double>(span.count) : 0.0;
    table.add_row({span.name, std::to_string(span.count),
                   Table::fixed(total_ms, 3), Table::fixed(mean_ms, 3),
                   Table::fixed(static_cast<double>(span.p50_ns) / 1e6, 3),
                   Table::fixed(static_cast<double>(span.p99_ns) / 1e6, 3),
                   Table::fixed(static_cast<double>(span.min_ns) / 1e6, 3),
                   Table::fixed(static_cast<double>(span.max_ns) / 1e6, 3)});
  }
  table.print(out);
}

}  // namespace whart::report
