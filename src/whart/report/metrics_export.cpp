#include "whart/report/metrics_export.hpp"

#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

#include "whart/report/table.hpp"

namespace whart::report {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles rendered so the output stays valid JSON (no inf/nan tokens).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::string text = std::to_string(value);
  return text;
}

void write_histogram(std::ostream& out,
                     const common::obs::HistogramSnapshot& histogram) {
  out << "{\"count\": " << histogram.count << ", \"sum\": " << histogram.sum
      << ", \"min\": " << histogram.min << ", \"max\": " << histogram.max
      << ", \"mean\": " << json_number(histogram.mean())
      << ", \"buckets\": [";
  bool first = true;
  for (const auto& bucket : histogram.buckets) {
    if (!first) out << ", ";
    first = false;
    out << "{\"lower\": " << bucket.lower << ", \"upper\": " << bucket.upper
        << ", \"count\": " << bucket.count << "}";
  }
  out << "]}";
}

}  // namespace

void write_metrics_json(std::ostream& out,
                        const common::obs::MetricsSnapshot& snapshot,
                        const std::vector<common::obs::SpanAggregate>& spans) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    write_histogram(out, histogram);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"derived\": {";

  // Figures worth computing once instead of in every consumer.
  first = true;
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    const auto it = snapshot.counters.find(std::string(name));
    return it != snapshot.counters.end() ? it->second : 0;
  };
  const std::uint64_t hits = counter("hart.path_cache.hits");
  const std::uint64_t misses = counter("hart.path_cache.misses");
  if (hits + misses > 0) {
    out << "\n    \"cache_hit_ratio\": "
        << json_number(static_cast<double>(hits) /
                       static_cast<double>(hits + misses));
    first = false;
  }
  const std::uint64_t busy_ns = counter("parallel.busy_ns");
  const std::uint64_t tasks = counter("parallel.tasks");
  if (tasks > 0) {
    out << (first ? "\n" : ",\n")
        << "    \"parallel_mean_task_ns\": "
        << json_number(static_cast<double>(busy_ns) /
                       static_cast<double>(tasks));
    first = false;
  }
  // Skeleton reuse: refills per symbolic build.  A healthy reuse-heavy
  // run has a ratio near 1 (many numeric refills amortizing few
  // symbolic builds); a ratio near builds/(builds+refills) = 0.5 means
  // every solve rebuilt its skeleton.
  const std::uint64_t skeleton_builds = counter("hart.skeleton.builds");
  const std::uint64_t skeleton_refills = counter("hart.skeleton.refills");
  if (skeleton_builds + skeleton_refills > 0) {
    out << (first ? "\n" : ",\n")
        << "    \"skeleton_reuse_ratio\": "
        << json_number(static_cast<double>(skeleton_refills) /
                       static_cast<double>(skeleton_builds +
                                           skeleton_refills));
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  if (!spans.empty()) {
    out << ",\n  \"spans\": [";
    first = true;
    for (const auto& span : spans) {
      out << (first ? "\n" : ",\n") << "    {\"name\": \""
          << json_escape(span.name) << "\", \"count\": " << span.count
          << ", \"total_ns\": " << span.total_ns
          << ", \"min_ns\": " << span.min_ns
          << ", \"max_ns\": " << span.max_ns << "}";
      first = false;
    }
    out << "\n  ]";
  }
  out << "\n}\n";
}

void write_chrome_trace_json(
    std::ostream& out, const std::vector<common::obs::SpanRecord>& events) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& event : events) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \""
        << json_escape(event.name)
        << "\", \"cat\": \"whart\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << event.thread_id << ", \"ts\": "
        << json_number(static_cast<double>(event.start_ns) / 1000.0)
        << ", \"dur\": "
        << json_number(static_cast<double>(event.duration_ns) / 1000.0)
        << ", \"args\": {\"depth\": " << event.depth << "}}";
    first = false;
  }
  out << (first ? "" : "\n") << "]}\n";
}

void print_span_table(std::ostream& out,
                      const std::vector<common::obs::SpanAggregate>& spans) {
  Table table({"span", "count", "total ms", "mean ms", "min ms", "max ms"});
  for (const auto& span : spans) {
    const double total_ms = static_cast<double>(span.total_ns) / 1e6;
    const double mean_ms =
        span.count > 0 ? total_ms / static_cast<double>(span.count) : 0.0;
    table.add_row({span.name, std::to_string(span.count),
                   Table::fixed(total_ms, 3), Table::fixed(mean_ms, 3),
                   Table::fixed(static_cast<double>(span.min_ns) / 1e6, 3),
                   Table::fixed(static_cast<double>(span.max_ns) / 1e6, 3)});
  }
  table.print(out);
}

}  // namespace whart::report
