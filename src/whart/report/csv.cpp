#include "whart/report/csv.hpp"

#include <ostream>

namespace whart::report {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

}  // namespace whart::report
