// The engine side of `--obs-dir=<dir>`: one RAII session that turns on
// every observability surface (metrics, tracing, the flight recorder,
// the background Sampler), points the contract-failure crash dump into
// the directory, and on finish() writes the five-artifact bundle:
//
//   metrics.json    registry snapshot + span aggregates + derived
//   trace.json      Chrome trace_event spans + cross-thread flow arrows
//   events.jsonl    flight-recorder drain, one JSON object per line
//   metrics.prom    Prometheus text exposition of the final snapshot
//   timeseries.csv  the Sampler ring as long-format CSV
//
// Both CLIs (whart_cli, whart_verify) and examples/typical_network
// drive their `--obs-dir` flag through this class so the bundle layout
// stays identical everywhere.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "whart/common/obs.hpp"

namespace whart::report {

class ObsDirSession {
 public:
  /// Creates `dir` (and parents), enables metrics/trace/events, clears
  /// the trace and event buffers, redirects the contract crash dump to
  /// `<dir>/events_crash.jsonl` and starts sampling every
  /// `sample_interval`.
  explicit ObsDirSession(
      std::string dir,
      std::chrono::milliseconds sample_interval =
          std::chrono::milliseconds(200));

  /// finish()es if the caller did not.
  ~ObsDirSession();

  ObsDirSession(const ObsDirSession&) = delete;
  ObsDirSession& operator=(const ObsDirSession&) = delete;

  /// Stop the sampler and write the five artifacts (idempotent).
  void finish();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
  std::unique_ptr<common::obs::Sampler> sampler_;
  bool finished_ = false;
};

}  // namespace whart::report
