#include "whart/report/histogram.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "whart/common/contracts.hpp"
#include "whart/report/table.hpp"

namespace whart::report {

void print_histogram(std::ostream& out, std::span<const std::string> labels,
                     std::span<const double> values, std::size_t width) {
  expects(labels.size() == values.size(), "one label per value");
  expects(width >= 1, "width >= 1");
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    expects(values[i] >= 0.0, "values are non-negative");
    max_value = std::max(max_value, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << labels[i];
    for (std::size_t pad = labels[i].size(); pad < label_width; ++pad)
      out << ' ';
    out << " |";
    const std::size_t bar =
        max_value > 0.0 ? static_cast<std::size_t>(
                              values[i] / max_value * width + 0.5)
                        : 0;
    out << std::string(bar, '#');
    out << ' ' << Table::fixed(values[i], 4) << '\n';
  }
}

std::string histogram_to_string(std::span<const std::string> labels,
                                std::span<const double> values,
                                std::size_t width) {
  std::ostringstream out;
  print_histogram(out, labels, values, width);
  return out.str();
}

}  // namespace whart::report
