#include "whart/report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "whart/common/contracts.hpp"

namespace whart::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  expects(!headers_.empty(), "at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "row width matches header");
  rows_.push_back(std::move(cells));
}

std::string Table::fixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string Table::percent(double probability, int decimals) {
  return fixed(probability * 100.0, decimals) + "%";
}

std::string Table::scientific(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(decimals);
  out << value;
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad)
        out << ' ';
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace whart::report
