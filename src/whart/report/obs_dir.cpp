#include "whart/report/obs_dir.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "whart/report/metrics_export.hpp"

namespace whart::report {

namespace obs = common::obs;

namespace {

std::ofstream open_artifact(const std::filesystem::path& dir,
                            const char* name) {
  const std::filesystem::path path = dir / name;
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("cannot write '" + path.string() + "'");
  return file;
}

}  // namespace

ObsDirSession::ObsDirSession(std::string dir,
                             std::chrono::milliseconds sample_interval)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::set_events_enabled(true);
  obs::TraceCollector::instance().clear();
  obs::EventLog::instance().clear();
  obs::set_contract_dump_path(
      (std::filesystem::path(dir_) / "events_crash.jsonl").string());
  sampler_ = std::make_unique<obs::Sampler>(sample_interval);
}

ObsDirSession::~ObsDirSession() {
  try {
    finish();
  } catch (...) {
    // Destructor path: the bundle is best-effort; the analysis result
    // already reached the caller.
  }
}

void ObsDirSession::finish() {
  if (finished_) return;
  finished_ = true;
  sampler_->stop();

  const std::filesystem::path dir(dir_);
  obs::TraceCollector& collector = obs::TraceCollector::instance();
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();

  {
    std::ofstream file = open_artifact(dir, "metrics.json");
    write_metrics_json(file, snapshot, collector.aggregate());
  }
  {
    std::ofstream file = open_artifact(dir, "trace.json");
    write_chrome_trace_json(file, collector.events(), collector.flows());
  }
  {
    std::ofstream file = open_artifact(dir, "events.jsonl");
    obs::EventLog::instance().write_jsonl(file);
  }
  {
    std::ofstream file = open_artifact(dir, "metrics.prom");
    write_prometheus_text(file, snapshot);
  }
  {
    std::ofstream file = open_artifact(dir, "timeseries.csv");
    write_timeseries_csv(file, sampler_->series());
  }
  std::cout << "wrote observability bundle (metrics.json, trace.json, "
               "events.jsonl, metrics.prom, timeseries.csv) to "
            << dir_ << "\n";
}

}  // namespace whart::report
