// Plain-text table rendering used by the benchmark harness and the CLI to
// print paper-style tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace whart::report {

/// A simple column-aligned text table.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row of preformatted cells (must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers.
  static std::string fixed(double value, int decimals);
  static std::string percent(double probability, int decimals = 2);
  static std::string scientific(double value, int decimals = 2);

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Render with a header separator and 2-space column gaps.
  void print(std::ostream& out) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace whart::report
