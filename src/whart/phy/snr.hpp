// Strong types for signal-to-noise quantities.  The paper's link model is
// parameterized by Eb/N0, the energy-per-bit to noise-power-spectral-density
// ratio ("SNR per bit"), measured in practice with pilot packages.
#pragma once

namespace whart::phy {

/// Eb/N0 as a linear (dimensionless) ratio with dB conversions.
class EbN0 {
 public:
  /// From a linear ratio; must be >= 0.
  static EbN0 from_linear(double ratio);

  /// From decibels: ratio = 10^(db/10).
  static EbN0 from_db(double db);

  [[nodiscard]] double linear() const noexcept { return linear_; }
  [[nodiscard]] double db() const noexcept;

  friend bool operator==(const EbN0&, const EbN0&) = default;
  friend auto operator<=>(const EbN0&, const EbN0&) = default;

 private:
  explicit EbN0(double linear) noexcept : linear_(linear) {}
  double linear_ = 0.0;
};

/// Received signal strength indicator in dBm (used by the simulator's
/// synthetic channel-quality assignment).
struct Rssi {
  double dbm = 0.0;
  friend bool operator==(const Rssi&, const Rssi&) = default;
  friend auto operator<=>(const Rssi&, const Rssi&) = default;
};

}  // namespace whart::phy
