// Bit-error-rate curves over an AWGN channel for the modulation schemes
// relevant to WirelessHART.  The standard's radio (IEEE 802.15.4, 2.4 GHz)
// uses OQPSK; the others are provided for comparison studies.
//
// Paper Eq. 1: BER_OQPSK = 1/2 erfc(sqrt(Eb/N0)).
#pragma once

#include <string_view>

#include "whart/phy/snr.hpp"

namespace whart::phy {

/// Supported modulation schemes.
enum class Modulation {
  kOqpsk,  ///< Offset QPSK — WirelessHART / IEEE 802.15.4 (coherent)
  kBpsk,   ///< Binary PSK (same AWGN BER as coherent OQPSK)
  kQpsk,   ///< Quadrature PSK (per-bit BER equals BPSK with Gray coding)
  kDbpsk,  ///< Differentially-coherent BPSK: 1/2 e^{-Eb/N0}
  kNcfsk,  ///< Non-coherent binary FSK: 1/2 e^{-Eb/(2 N0)}
};

/// Human-readable scheme name ("OQPSK", ...).
std::string_view name(Modulation scheme) noexcept;

/// Gaussian Q-function Q(x) = 1/2 erfc(x / sqrt(2)).
double q_function(double x) noexcept;

/// Bit error rate of `scheme` over AWGN at the given Eb/N0.
double bit_error_rate(Modulation scheme, EbN0 ebn0) noexcept;

/// The paper's Eq. 1 specialized to WirelessHART's OQPSK radio.
double oqpsk_ber(EbN0 ebn0) noexcept;

/// Invert the OQPSK BER curve: the Eb/N0 (linear) that yields `ber`.
/// ber must lie in (0, 0.5); solved by bisection to ~1e-12 relative error.
EbN0 oqpsk_required_ebn0(double ber);

}  // namespace whart::phy
