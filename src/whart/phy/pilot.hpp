// Pilot-package channel estimation (paper Sections III and VI-E: "the
// received SNR can be measured using pilot packages that are transmitted
// from one node to the other").  A burst of known pilot words is sent
// through the channel; the receiver counts bit errors, estimates the
// BER with a confidence interval, and inverts the OQPSK curve to report
// the Eb/N0 the link model needs.
#pragma once

#include <cstdint>
#include <optional>

#include "whart/numeric/rng.hpp"
#include "whart/phy/snr.hpp"

namespace whart::phy {

/// Configuration of a pilot measurement campaign.
struct PilotCampaign {
  /// Number of pilot words exchanged.
  std::uint32_t packages = 200;

  /// Bits per pilot word.
  std::uint32_t bits_per_package = 128;

  /// z-score of the reported confidence interval (1.96 = 95%).
  double confidence_z = 1.96;

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return static_cast<std::uint64_t>(packages) * bits_per_package;
  }
};

/// Result of a pilot campaign.
struct ChannelEstimate {
  std::uint64_t bits_sent = 0;
  std::uint64_t bit_errors = 0;

  /// Point estimate of the BER (bit_errors / bits_sent); when no errors
  /// were observed, the Wilson upper bound stands in so downstream
  /// planning stays conservative.
  double ber = 0.0;

  /// Wilson confidence bounds on the BER.
  double ber_low = 0.0;
  double ber_high = 0.0;

  /// Eb/N0 obtained by inverting the OQPSK curve at `ber`; nullopt when
  /// the estimate is 0 (channel better than the campaign can resolve) or
  /// >= 0.5 (no meaningful SNR).
  std::optional<EbN0> ebn0;

  /// Conservative Eb/N0 from `ber_high` — what a cautious network
  /// manager should provision for.
  std::optional<EbN0> ebn0_conservative;
};

/// Run a synthetic campaign against a channel with true bit error rate
/// `true_ber` (Monte Carlo over the BSC).  Deterministic in `rng`.
ChannelEstimate measure_channel(double true_ber,
                                const PilotCampaign& campaign,
                                numeric::Xoshiro256& rng);

/// Build an estimate from an observed error count (e.g. from real
/// hardware counters) without simulation.
ChannelEstimate estimate_from_counts(std::uint64_t bits_sent,
                                     std::uint64_t bit_errors,
                                     double confidence_z = 1.96);

}  // namespace whart::phy
