// WirelessHART framing constants (IEC 62591 / IEEE 802.15.4) and the
// message-failure mapping of paper Eq. 2.
#pragma once

#include <cstdint>

#include "whart/phy/modulation.hpp"
#include "whart/phy/snr.hpp"

namespace whart::phy {

/// Duration of one TDMA slot: the standard fixes 10 ms slots.
inline constexpr std::uint32_t kSlotMilliseconds = 10;

/// Number of non-overlapping 2.4 GHz frequency channels (IEEE 802.15.4
/// channels 11-26) available to channel hopping.
inline constexpr std::uint32_t kChannelCount = 16;

/// Maximum MAC-layer payload: 127 bytes — the "typical WirelessHART
/// message" the paper uses for Eq. 2.
inline constexpr std::uint32_t kMaxPayloadBytes = 127;

/// Message length in bits: L = 127 * 8 = 1016 (paper Section V-B).
inline constexpr std::uint32_t kMessageBits = kMaxPayloadBytes * 8;

/// Paper Eq. 2: probability that an L-bit message fails on a channel with
/// the given bit error rate: pfl = 1 - (1 - BER)^L.
double message_failure_probability(double bit_error_rate,
                                   std::uint32_t message_bits = kMessageBits);

/// Composition of Eq. 1 and Eq. 2: message failure probability of the
/// OQPSK radio at the given Eb/N0.
double message_failure_from_snr(EbN0 ebn0,
                                std::uint32_t message_bits = kMessageBits);

}  // namespace whart::phy
