#include "whart/phy/frame.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::phy {

double message_failure_probability(double bit_error_rate,
                                   std::uint32_t message_bits) {
  expects(bit_error_rate >= 0.0 && bit_error_rate <= 1.0, "0 <= BER <= 1");
  expects(message_bits > 0, "message_bits > 0");
  return 1.0 -
         std::pow(1.0 - bit_error_rate, static_cast<double>(message_bits));
}

double message_failure_from_snr(EbN0 ebn0, std::uint32_t message_bits) {
  return message_failure_probability(oqpsk_ber(ebn0), message_bits);
}

}  // namespace whart::phy
