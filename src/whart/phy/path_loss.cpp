#include "whart/phy/path_loss.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::phy {

namespace {

/// Standard-normal draw (Box-Muller; one value per call is fine here).
double standard_normal(numeric::Xoshiro256& rng) {
  // Avoid log(0).
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

double PathLossModel::path_loss_db(double distance_m) const {
  expects(distance_m > 0.0, "distance > 0");
  expects(reference_distance_m > 0.0, "reference distance > 0");
  const double clamped = std::max(distance_m, reference_distance_m);
  return reference_loss_db +
         10.0 * exponent * std::log10(clamped / reference_distance_m);
}

double PathLossModel::sampled_path_loss_db(double distance_m,
                                           numeric::Xoshiro256& rng) const {
  return path_loss_db(distance_m) +
         shadowing_sigma_db * standard_normal(rng);
}

double LinkBudget::received_power_dbm(double path_loss_db) const {
  return tx_power_dbm - path_loss_db;
}

EbN0 LinkBudget::ebn0_for_loss(double path_loss_db) const {
  const double snr_db =
      received_power_dbm(path_loss_db) - noise_floor_dbm +
      processing_gain_db;
  // Eb/N0 can never be negative in linear terms; from_db handles any dB.
  return EbN0::from_db(snr_db);
}

EbN0 LinkBudget::ebn0_at(double distance_m,
                         const PathLossModel& propagation) const {
  return ebn0_for_loss(propagation.path_loss_db(distance_m));
}

double range_for_ebn0(const LinkBudget& budget,
                      const PathLossModel& propagation, EbN0 required) {
  expects(required.linear() > 0.0, "required Eb/N0 > 0");
  // Solve: tx - PL(d) - noise + gain = required_db for d.
  const double allowed_loss = budget.tx_power_dbm -
                              budget.noise_floor_dbm +
                              budget.processing_gain_db - required.db();
  const double excess = allowed_loss - propagation.reference_loss_db;
  if (excess <= 0.0) return propagation.reference_distance_m;
  return propagation.reference_distance_m *
         std::pow(10.0, excess / (10.0 * propagation.exponent));
}

}  // namespace whart::phy
