// Binary Symmetric Channel (paper Section III, Fig. 2): each transmitted bit
// is flipped independently with the crossover probability (the BER).
#pragma once

#include <cstdint>
#include <vector>

#include "whart/numeric/rng.hpp"

namespace whart::phy {

/// Memoryless binary symmetric channel with crossover probability p.
class BinarySymmetricChannel {
 public:
  /// p must lie in [0, 1].
  explicit BinarySymmetricChannel(double crossover_probability);

  [[nodiscard]] double crossover_probability() const noexcept { return p_; }

  /// Probability that a word of `bits` bits is delivered without any error:
  /// (1 - p)^bits.  This is the paper's Eq. 2 complement.
  [[nodiscard]] double word_success_probability(
      std::uint32_t bits) const noexcept;

  /// Probability that a word of `bits` bits suffers at least one bit error:
  /// pfl = 1 - (1 - p)^bits (paper Eq. 2).
  [[nodiscard]] double word_failure_probability(
      std::uint32_t bits) const noexcept;

  /// Transmit one bit through the channel (Monte Carlo).
  [[nodiscard]] bool transmit_bit(bool bit, numeric::Xoshiro256& rng) const;

  /// Transmit a word; returns the (possibly corrupted) received word.
  [[nodiscard]] std::vector<bool> transmit_word(
      const std::vector<bool>& word, numeric::Xoshiro256& rng) const;

  /// Monte-Carlo estimate of the word failure probability over `trials`
  /// transmissions of `bits`-bit words; used to cross-validate Eq. 2.
  [[nodiscard]] double simulate_word_failure_rate(
      std::uint32_t bits, std::uint32_t trials,
      numeric::Xoshiro256& rng) const;

 private:
  double p_;
};

}  // namespace whart::phy
