#include "whart/phy/modulation.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::phy {

std::string_view name(Modulation scheme) noexcept {
  switch (scheme) {
    case Modulation::kOqpsk:
      return "OQPSK";
    case Modulation::kBpsk:
      return "BPSK";
    case Modulation::kQpsk:
      return "QPSK";
    case Modulation::kDbpsk:
      return "DBPSK";
    case Modulation::kNcfsk:
      return "NCFSK";
  }
  return "unknown";
}

double q_function(double x) noexcept {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double oqpsk_ber(EbN0 ebn0) noexcept {
  return 0.5 * std::erfc(std::sqrt(ebn0.linear()));
}

double bit_error_rate(Modulation scheme, EbN0 ebn0) noexcept {
  const double ratio = ebn0.linear();
  switch (scheme) {
    case Modulation::kOqpsk:
    case Modulation::kBpsk:
    case Modulation::kQpsk:
      // Coherent (O)QPSK/BPSK with Gray mapping share the per-bit curve.
      return 0.5 * std::erfc(std::sqrt(ratio));
    case Modulation::kDbpsk:
      return 0.5 * std::exp(-ratio);
    case Modulation::kNcfsk:
      return 0.5 * std::exp(-ratio / 2.0);
  }
  return 0.5;
}

EbN0 oqpsk_required_ebn0(double ber) {
  expects(ber > 0.0 && ber < 0.5, "0 < BER < 0.5");
  // BER is strictly decreasing in Eb/N0; bisection on the linear ratio.
  double lo = 0.0;
  double hi = 1.0;
  while (oqpsk_ber(EbN0::from_linear(hi)) > ber) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (oqpsk_ber(EbN0::from_linear(mid)) > ber)
      lo = mid;
    else
      hi = mid;
  }
  return EbN0::from_linear(0.5 * (lo + hi));
}

}  // namespace whart::phy
