#include "whart/phy/snr.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::phy {

EbN0 EbN0::from_linear(double ratio) {
  expects(ratio >= 0.0, "Eb/N0 >= 0");
  return EbN0(ratio);
}

EbN0 EbN0::from_db(double db) {
  return EbN0(std::pow(10.0, db / 10.0));
}

double EbN0::db() const noexcept { return 10.0 * std::log10(linear_); }

}  // namespace whart::phy
