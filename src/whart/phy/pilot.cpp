#include "whart/phy/pilot.hpp"

#include "whart/common/contracts.hpp"
#include "whart/phy/modulation.hpp"
#include "whart/sim/stats.hpp"

namespace whart::phy {

namespace {

std::optional<EbN0> invert_ber(double ber) {
  if (ber <= 0.0 || ber >= 0.5) return std::nullopt;
  return oqpsk_required_ebn0(ber);
}

}  // namespace

ChannelEstimate estimate_from_counts(std::uint64_t bits_sent,
                                     std::uint64_t bit_errors,
                                     double confidence_z) {
  expects(bits_sent > 0, "bits_sent > 0");
  expects(bit_errors <= bits_sent, "errors <= bits");
  ChannelEstimate estimate;
  estimate.bits_sent = bits_sent;
  estimate.bit_errors = bit_errors;
  const sim::Interval ci =
      sim::wilson_interval(bit_errors, bits_sent, confidence_z);
  estimate.ber_low = ci.low;
  estimate.ber_high = ci.high;
  estimate.ber = bit_errors > 0
                     ? static_cast<double>(bit_errors) /
                           static_cast<double>(bits_sent)
                     : ci.high;  // zero errors: report the upper bound
  estimate.ebn0 = invert_ber(estimate.ber);
  estimate.ebn0_conservative = invert_ber(estimate.ber_high);
  return estimate;
}

ChannelEstimate measure_channel(double true_ber,
                                const PilotCampaign& campaign,
                                numeric::Xoshiro256& rng) {
  expects(true_ber >= 0.0 && true_ber <= 1.0, "0 <= BER <= 1");
  expects(campaign.packages > 0 && campaign.bits_per_package > 0,
          "non-empty campaign");
  std::uint64_t errors = 0;
  for (std::uint64_t bit = 0; bit < campaign.total_bits(); ++bit)
    if (rng.bernoulli(true_ber)) ++errors;
  return estimate_from_counts(campaign.total_bits(), errors,
                              campaign.confidence_z);
}

}  // namespace whart::phy
