// Radio propagation for synthetic plant layouts: log-distance path loss
// with optional log-normal shadowing, and the link budget that turns a
// transmit power and a distance into the Eb/N0 the link model consumes
// (the paper measures Eb/N0 with pilot packages; this module generates
// physically-plausible values when no measurement exists).
#pragma once

#include <cstdint>

#include "whart/numeric/rng.hpp"
#include "whart/phy/snr.hpp"

namespace whart::phy {

/// Log-distance path loss PL(d) = PL(d0) + 10 n log10(d / d0) dB.
struct PathLossModel {
  /// Path-loss exponent; ~2 free space, 2.5-3.5 cluttered industrial.
  double exponent = 2.8;

  /// Loss at the reference distance, dB.  40 dB at 1 m is the standard
  /// 2.4 GHz free-space figure.
  double reference_loss_db = 40.0;

  /// Reference distance, meters.
  double reference_distance_m = 1.0;

  /// Standard deviation of log-normal shadowing, dB (0 = deterministic).
  double shadowing_sigma_db = 0.0;

  /// Deterministic path loss at `distance_m` (> 0) in dB.
  [[nodiscard]] double path_loss_db(double distance_m) const;

  /// Path loss with one shadowing draw.
  [[nodiscard]] double sampled_path_loss_db(double distance_m,
                                            numeric::Xoshiro256& rng) const;
};

/// Link budget of an IEEE 802.15.4 radio.
struct LinkBudget {
  /// Transmit power, dBm (0 dBm = 1 mW, the 802.15.4 default).
  double tx_power_dbm = 0.0;

  /// Thermal noise floor over the 2 MHz channel plus receiver noise
  /// figure, dBm.
  double noise_floor_dbm = -95.0;

  /// Spreading/processing gain of the DSSS PHY, dB (2 Mchip/s over
  /// 250 kbit/s gives 10 log10(8) ~ 9 dB).
  double processing_gain_db = 9.0;

  /// Received power after `path_loss_db` of attenuation, dBm.
  [[nodiscard]] double received_power_dbm(double path_loss_db) const;

  /// Eb/N0 delivered to the demodulator for the given path loss.
  [[nodiscard]] EbN0 ebn0_for_loss(double path_loss_db) const;

  /// Convenience: Eb/N0 at a distance under a propagation model
  /// (deterministic part only).
  [[nodiscard]] EbN0 ebn0_at(double distance_m,
                             const PathLossModel& propagation) const;
};

/// The distance at which the budget still delivers `required` Eb/N0
/// (deterministic propagation) — the nominal radio range.  Solved in
/// closed form from the log-distance model.
double range_for_ebn0(const LinkBudget& budget,
                      const PathLossModel& propagation, EbN0 required);

}  // namespace whart::phy
