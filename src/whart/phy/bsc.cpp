#include "whart/phy/bsc.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::phy {

BinarySymmetricChannel::BinarySymmetricChannel(double crossover_probability)
    : p_(crossover_probability) {
  expects(p_ >= 0.0 && p_ <= 1.0, "0 <= p <= 1");
}

double BinarySymmetricChannel::word_success_probability(
    std::uint32_t bits) const noexcept {
  return std::pow(1.0 - p_, static_cast<double>(bits));
}

double BinarySymmetricChannel::word_failure_probability(
    std::uint32_t bits) const noexcept {
  return 1.0 - word_success_probability(bits);
}

bool BinarySymmetricChannel::transmit_bit(bool bit,
                                          numeric::Xoshiro256& rng) const {
  return rng.bernoulli(p_) ? !bit : bit;
}

std::vector<bool> BinarySymmetricChannel::transmit_word(
    const std::vector<bool>& word, numeric::Xoshiro256& rng) const {
  std::vector<bool> received(word.size());
  for (std::size_t i = 0; i < word.size(); ++i)
    received[i] = transmit_bit(word[i], rng);
  return received;
}

double BinarySymmetricChannel::simulate_word_failure_rate(
    std::uint32_t bits, std::uint32_t trials, numeric::Xoshiro256& rng) const {
  expects(trials > 0, "trials > 0");
  std::uint32_t failures = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    bool corrupted = false;
    for (std::uint32_t b = 0; b < bits && !corrupted; ++b)
      corrupted = rng.bernoulli(p_);
    if (corrupted) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace whart::phy
