// whart — WirelessHART modeling and performance evaluation.
//
// A C++20 reproduction of "WirelessHART Modeling and Performance
// Evaluation" (Remke & Wu, DSN 2013): a hierarchical DTMC model of
// message delivery over TDMA-scheduled multi-hop uplink paths, with
// reachability / delay / utilization measures, path composition for
// routing prediction, failure-robustness analysis, and a slot-level
// Monte-Carlo simulator for validation.
//
// Umbrella header: includes the whole public API.  Prefer the individual
// headers in translation units that only need a slice.
//
// Layer map (bottom to top):
//   whart/common/*    contracts, thread pool, observability (metrics/spans)
//   whart/numeric/*   probability, combinatorics, distributions, RNG
//   whart/linalg/*    dense/sparse matrices, LU, convolution
//   whart/phy/*       SNR, modulation BER curves, BSC, HART framing
//   whart/markov/*    general DTMC machinery
//   whart/link/*      two-state link model, failure scripts, blacklist
//   whart/net/*       topology, paths, routing, TDMA schedules
//   whart/hart/*      the paper's contribution: path/network analysis
//   whart/sim/*       Monte-Carlo simulator
//   whart/report/*    tables, histograms, CSV
//   whart/cli/*       network-spec parser for the whart_cli tool
#pragma once

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"

#include "whart/numeric/combinatorics.hpp"
#include "whart/numeric/distributions.hpp"
#include "whart/numeric/probability.hpp"
#include "whart/numeric/rng.hpp"

#include "whart/linalg/convolution.hpp"
#include "whart/linalg/lu.hpp"
#include "whart/linalg/matrix.hpp"
#include "whart/linalg/sparse.hpp"
#include "whart/linalg/vector.hpp"

#include "whart/phy/bsc.hpp"
#include "whart/phy/frame.hpp"
#include "whart/phy/modulation.hpp"
#include "whart/phy/path_loss.hpp"
#include "whart/phy/pilot.hpp"
#include "whart/phy/snr.hpp"

#include "whart/markov/absorbing.hpp"
#include "whart/markov/export.hpp"
#include "whart/markov/dtmc.hpp"
#include "whart/markov/hitting.hpp"
#include "whart/markov/limiting.hpp"
#include "whart/markov/simulate.hpp"
#include "whart/markov/steady_state.hpp"
#include "whart/markov/structure.hpp"
#include "whart/markov/transient.hpp"

#include "whart/link/blacklist.hpp"
#include "whart/link/failure_script.hpp"
#include "whart/link/fitting.hpp"
#include "whart/link/link_model.hpp"

#include "whart/net/downlink.hpp"
#include "whart/net/export.hpp"
#include "whart/net/ids.hpp"
#include "whart/net/path.hpp"
#include "whart/net/plant_generator.hpp"
#include "whart/net/routing.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/spatial_plant.hpp"
#include "whart/net/schedule_builder.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"
#include "whart/net/typical_network.hpp"

#include "whart/hart/analytic.hpp"
#include "whart/hart/composition.hpp"
#include "whart/hart/control_loop.hpp"
#include "whart/hart/energy.hpp"
#include "whart/hart/failure.hpp"
#include "whart/hart/fast_control.hpp"
#include "whart/hart/link_probability.hpp"
#include "whart/hart/network_analysis.hpp"
#include "whart/hart/path_analysis.hpp"
#include "whart/hart/path_cache.hpp"
#include "whart/hart/path_model.hpp"
#include "whart/hart/schedule_optimizer.hpp"
#include "whart/hart/sensitivity.hpp"
#include "whart/hart/stability.hpp"
#include "whart/hart/sweep.hpp"
#include "whart/hart/validation.hpp"

#include "whart/sim/link_trace.hpp"
#include "whart/sim/simulator.hpp"
#include "whart/sim/stats.hpp"

#include "whart/report/csv.hpp"
#include "whart/report/histogram.hpp"
#include "whart/report/metrics_export.hpp"
#include "whart/report/table.hpp"
