// Explicit-SIMD lane primitives of the structure-of-arrays batch solve
// path (DESIGN.md §13).  A "lane array" is the contiguous block of N
// doubles holding one value per batched evaluation point; every helper
// below applies one elementwise operation across such a block.
//
// Backend selection is a compile-time dispatch: AVX2 (4 doubles per
// vector) when the TU is built with -mavx2, NEON (2 doubles) on AArch64,
// and a plain scalar loop otherwise — which GCC/Clang auto-vectorize to
// the baseline ISA (SSE2 on x86-64), so the fallback is portable, not
// slow.  Each helper walks the lane array in full hardware vectors and
// finishes the remainder (< vector width) with the scalar loop; the
// per-lane arithmetic order is identical in all three backends, and
// fused multiply-add is used exactly where the compiler would contract
// the scalar expression (`acc += a * b` under the default
// -ffp-contract), keeping batched lanes within rounding of the scalar
// refill they mirror.
#pragma once

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace whart::linalg::simd {

#if defined(__AVX2__)

/// Doubles per hardware vector of the selected backend.
inline constexpr std::size_t kWidth = 4;

[[nodiscard]] inline const char* backend_name() noexcept { return "avx2"; }

/// out[i] = a[i] * b[i]
inline void mul(double* out, const double* a, const double* b,
                std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

/// acc[i] += a[i] * b[i]
inline void mul_add(double* acc, const double* a, const double* b,
                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    __m256d vc = _mm256_loadu_pd(acc + i);
#if defined(__FMA__)
    vc = _mm256_fmadd_pd(va, vb, vc);
#else
    vc = _mm256_add_pd(vc, _mm256_mul_pd(va, vb));
#endif
    _mm256_storeu_pd(acc + i, vc);
  }
  for (; i < n; ++i) acc[i] += a[i] * b[i];
}

/// acc[i] += a[i]
inline void add(double* acc, const double* a, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                               _mm256_loadu_pd(a + i)));
  for (; i < n; ++i) acc[i] += a[i];
}

#elif defined(__ARM_NEON) && defined(__aarch64__)

inline constexpr std::size_t kWidth = 2;

[[nodiscard]] inline const char* backend_name() noexcept { return "neon"; }

inline void mul(double* out, const double* a, const double* b,
                std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void mul_add(double* acc, const double* a, const double* b,
                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    vst1q_f64(acc + i, vfmaq_f64(vld1q_f64(acc + i), vld1q_f64(a + i),
                                 vld1q_f64(b + i)));
  for (; i < n; ++i) acc[i] += a[i] * b[i];
}

inline void add(double* acc, const double* a, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vld1q_f64(a + i)));
  for (; i < n; ++i) acc[i] += a[i];
}

#else

inline constexpr std::size_t kWidth = 1;

[[nodiscard]] inline const char* backend_name() noexcept { return "scalar"; }

// The lane arrays of a batched solve never alias (accumulators, inputs
// and pattern values live in distinct workspace buffers), so the scalar
// fallback declares it: without `__restrict` the auto-vectorizer guards
// every call with runtime overlap checks, and at typical lane counts
// (8-16 doubles) the checks cost more than the loop.
inline void mul(double* __restrict out, const double* __restrict a,
                const double* __restrict b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

inline void mul_add(double* __restrict acc, const double* __restrict a,
                    const double* __restrict b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += a[i] * b[i];
}

inline void add(double* __restrict acc, const double* __restrict a,
                std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) acc[i] += a[i];
}

#endif

/// out[i] = value
inline void fill(double* out, double value, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = value;
}

/// out[i] = a[i].  Callers copy between distinct workspace buffers, so
/// the pointers are declared non-aliasing (see the scalar fallback note
/// above).
inline void copy(double* __restrict out, const double* __restrict a,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i];
}

}  // namespace whart::linalg::simd
