// Dense double-precision vector for the DTMC computations.  This module
// replaces the Eigen dependency the original authors' tooling would have
// used; the chains in this library are small enough that a straightforward
// dense implementation is both sufficient and easy to audit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace whart::linalg {

/// Dense vector of doubles with value semantics.
class Vector {
 public:
  Vector() = default;

  /// A vector of `size` zeros.
  explicit Vector(std::size_t size) : data_(size, 0.0) {}

  /// A vector of `size` copies of `fill`.
  Vector(std::size_t size, double fill) : data_(size, fill) {}

  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopt an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bounds-checked access; throws whart::precondition_error.
  double& at(std::size_t i);
  [[nodiscard]] double at(std::size_t i) const;

  [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
  [[nodiscard]] std::span<double> span() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar) noexcept;

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double scalar) { return lhs *= scalar; }
  friend Vector operator*(double scalar, Vector rhs) { return rhs *= scalar; }

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Sum of entries.
double sum(const Vector& v) noexcept;

/// L1 norm (sum of absolute values).
double norm1(const Vector& v) noexcept;

/// L-infinity norm (max absolute value); 0 for the empty vector.
double norm_inf(const Vector& v) noexcept;

/// Euclidean norm.
double norm2(const Vector& v) noexcept;

/// Largest absolute difference between two vectors of equal size.
double max_abs_diff(const Vector& a, const Vector& b);

/// e_i: unit vector of length `size` with a 1 at `index`.
Vector unit(std::size_t size, std::size_t index);

}  // namespace whart::linalg
