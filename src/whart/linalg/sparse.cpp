#include "whart/linalg/sparse.hpp"

#include <algorithm>

#include "whart/common/contracts.hpp"

namespace whart::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : entries) {
    expects(t.row < rows_ && t.col < cols_, "triplet indices in range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_start_.assign(rows_ + 1, 0);
  col_index_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    // Merge duplicates by summation.
    std::size_t j = i + 1;
    double value = entries[i].value;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      value += entries[j].value;
      ++j;
    }
    col_index_.push_back(entries[i].col);
    values_.push_back(value);
    ++row_start_[entries[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  expects(row < rows_ && col < cols_, "indices in range");
  const auto begin = col_index_.begin() + static_cast<std::ptrdiff_t>(row_start_[row]);
  const auto end = col_index_.begin() + static_cast<std::ptrdiff_t>(row_start_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_index_.begin())];
}

Vector CsrMatrix::left_multiply(const Vector& x) const {
  expects(x.size() == rows_, "dimensions agree");
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k)
      y[col_index_[k]] += xr * values_[k];
  }
  return y;
}

Vector CsrMatrix::right_multiply(const Vector& x) const {
  expects(x.size() == cols_, "dimensions agree");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k)
      acc += values_[k] * x[col_index_[k]];
    y[r] = acc;
  }
  return y;
}

double CsrMatrix::row_sum(std::size_t row) const {
  expects(row < rows_, "row in range");
  double acc = 0.0;
  for (std::size_t k = row_start_[row]; k < row_start_[row + 1]; ++k)
    acc += values_[k];
  return acc;
}

}  // namespace whart::linalg
