#include "whart/linalg/sparse.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/linalg/matrix.hpp"

namespace whart::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : entries) {
    expects(t.row < rows_ && t.col < cols_, "triplet indices in range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_start_.assign(rows_ + 1, 0);
  col_index_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    // Merge duplicates by summation.
    std::size_t j = i + 1;
    double value = entries[i].value;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      value += entries[j].value;
      ++j;
    }
    col_index_.push_back(entries[i].col);
    values_.push_back(value);
    ++row_start_[entries[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_start,
                                std::vector<std::size_t> col_index,
                                std::vector<double> values) {
  expects(row_start.size() == rows + 1, "row_start has rows + 1 entries");
  expects(row_start.front() == 0, "row_start begins at 0");
  expects(row_start.back() == col_index.size(),
          "row_start ends at the nonzero count");
  expects(col_index.size() == values.size(),
          "one value per column index");
  for (std::size_t r = 0; r < rows; ++r) {
    expects(row_start[r] <= row_start[r + 1], "row_start is monotone");
    for (std::size_t k = row_start[r]; k < row_start[r + 1]; ++k) {
      expects(col_index[k] < cols, "column indices in range");
      expects(k == row_start[r] || col_index[k - 1] < col_index[k],
              "columns strictly increasing within each row");
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_start_ = std::move(row_start);
  m.col_index_ = std::move(col_index);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::identity(std::size_t order) {
  std::vector<std::size_t> row_start(order + 1);
  std::vector<std::size_t> col_index(order);
  for (std::size_t i = 0; i < order; ++i) {
    row_start[i + 1] = i + 1;
    col_index[i] = i;
  }
  return from_parts(order, order, std::move(row_start), std::move(col_index),
                    std::vector<double>(order, 1.0));
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  expects(row < rows_ && col < cols_, "indices in range");
  const auto begin = col_index_.begin() + static_cast<std::ptrdiff_t>(row_start_[row]);
  const auto end = col_index_.begin() + static_cast<std::ptrdiff_t>(row_start_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_index_.begin())];
}

Vector CsrMatrix::left_multiply(const Vector& x) const {
  expects(x.size() == rows_, "dimensions agree");
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k)
      y[col_index_[k]] += xr * values_[k];
  }
  return y;
}

Vector CsrMatrix::right_multiply(const Vector& x) const {
  expects(x.size() == cols_, "dimensions agree");
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k)
      acc += values_[k] * x[col_index_[k]];
    y[r] = acc;
  }
  return y;
}

double CsrMatrix::row_sum(std::size_t row) const {
  expects(row < rows_, "row in range");
  double acc = 0.0;
  for (std::size_t k = row_start_[row]; k < row_start_[row + 1]; ++k)
    acc += values_[k];
  return acc;
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b,
                   SparseProductArena& arena) {
  expects(a.cols() == b.rows(), "inner dimensions agree");
  const std::size_t rows = a.rows();
  const std::size_t cols = b.cols();
  constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();

  arena.accumulator.assign(cols, 0.0);
  arena.marker.assign(cols, kNoRow);
  arena.scratch_cols.clear();
  arena.row_start.assign(rows + 1, 0);

  // Symbolic pass: nnz of each output row, then prefix-sum the counts
  // into row_start.  The marker array distinguishes rows without a clear
  // between them (row index as tag), so the pass is O(flops), not
  // O(rows * cols).
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t count = 0;
    a.for_each_in_row(r, [&](std::size_t ac, double) {
      b.for_each_in_row(ac, [&](std::size_t bc, double) {
        if (arena.marker[bc] != r) {
          arena.marker[bc] = r;
          ++count;
        }
      });
    });
    arena.row_start[r + 1] = count;
  }
  for (std::size_t r = 0; r < rows; ++r)
    arena.row_start[r + 1] += arena.row_start[r];

  const std::size_t nnz = arena.row_start[rows];
  arena.col_index.assign(nnz, 0);
  arena.values.assign(nnz, 0.0);
  std::fill(arena.marker.begin(), arena.marker.end(), kNoRow);

  // Numeric pass: scatter each row of the product into the dense
  // accumulator, then gather the live columns in sorted order straight
  // into the slot the prefix sum reserved.
  for (std::size_t r = 0; r < rows; ++r) {
    arena.scratch_cols.clear();
    a.for_each_in_row(r, [&](std::size_t ac, double av) {
      b.for_each_in_row(ac, [&](std::size_t bc, double bv) {
        if (arena.marker[bc] != r) {
          arena.marker[bc] = r;
          arena.accumulator[bc] = av * bv;
          arena.scratch_cols.push_back(bc);
        } else {
          arena.accumulator[bc] += av * bv;
        }
      });
    });
    std::sort(arena.scratch_cols.begin(), arena.scratch_cols.end());
    std::size_t k = arena.row_start[r];
    for (std::size_t c : arena.scratch_cols) {
      arena.col_index[k] = c;
      arena.values[k] = arena.accumulator[c];
      ++k;
    }
    ensures(k == arena.row_start[r + 1],
            "numeric pass fills exactly the symbolic count");
  }

  return CsrMatrix::from_parts(rows, cols, std::move(arena.row_start),
                               std::move(arena.col_index),
                               std::move(arena.values));
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b) {
  SparseProductArena arena;
  return multiply(a, b, arena);
}

Matrix left_multiply_batch(const Matrix& x, const CsrMatrix& a,
                           std::size_t block_rows) {
  Matrix y(x.rows(), a.cols());
  left_multiply_batch_into(x, a, y, block_rows);
  return y;
}

void left_multiply_batch_into(const Matrix& x, const CsrMatrix& a, Matrix& y,
                              std::size_t block_rows) {
  expects(x.cols() == a.rows(), "dimensions agree");
  expects(block_rows >= 1, "at least one row per block");
  expects(y.rows() == x.rows() && y.cols() == a.cols(),
          "output shape matches the product");
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c) y(r, c) = 0.0;
  for (std::size_t begin = 0; begin < x.rows(); begin += block_rows) {
    const std::size_t end = std::min(begin + block_rows, x.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      a.for_each_in_row(r, [&](std::size_t c, double v) {
        for (std::size_t i = begin; i < end; ++i) y(i, c) += x(i, r) * v;
      });
    }
  }
}

}  // namespace whart::linalg
