#include "whart/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    expects(row.size() == cols_, "all rows have equal width");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t order) {
  Matrix m(order, order);
  for (std::size_t i = 0; i < order; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  expects(r < rows_ && c < cols_, "indices in range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  expects(r < rows_ && c < cols_, "indices in range");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  expects(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shapes match");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  expects(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shapes match");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  expects(a.cols() == b.rows(), "inner dimensions agree");
  Matrix result(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j)
        result(i, j) += aik * b(k, j);
    }
  }
  return result;
}

Vector multiply(const Matrix& a, const Vector& x) {
  expects(a.cols() == x.size(), "dimensions agree");
  Vector result(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    result[i] = acc;
  }
  return result;
}

Vector multiply(const Vector& x, const Matrix& a) {
  expects(a.rows() == x.size(), "dimensions agree");
  Vector result(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) result[j] += xi * a(i, j);
  }
  return result;
}

Matrix transpose(const Matrix& a) {
  Matrix result(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) result(j, i) = a(i, j);
  return result;
}

Matrix power(const Matrix& a, std::uint64_t exponent) {
  expects(a.square(), "matrix is square");
  Matrix result = Matrix::identity(a.rows());
  Matrix base = a;
  while (exponent > 0) {
    if (exponent & 1ULL) result = multiply(result, base);
    exponent >>= 1;
    if (exponent > 0) base = multiply(base, base);
  }
  return result;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  expects(a.rows() == b.rows() && a.cols() == b.cols(),
          "matrix shapes match");
  double result = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      result = std::max(result, std::abs(a(i, j) - b(i, j)));
  return result;
}

}  // namespace whart::linalg
