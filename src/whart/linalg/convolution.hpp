// Discrete convolution of (sub-)probability sequences — the operation behind
// the paper's path-composition result (Eq. 12).
#pragma once

#include <span>
#include <vector>

namespace whart::linalg {

/// Full discrete convolution: result[k] = sum_i a[i] * b[k - i].
/// The result has size a.size() + b.size() - 1 (empty if either is empty).
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

/// Convolution truncated (or zero-padded) to exactly `size` leading terms.
std::vector<double> convolve_truncated(std::span<const double> a,
                                       std::span<const double> b,
                                       std::size_t size);

}  // namespace whart::linalg
