#include "whart/linalg/vector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "whart/common/contracts.hpp"

namespace whart::linalg {

double& Vector::at(std::size_t i) {
  expects(i < data_.size(), "index < size");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  expects(i < data_.size(), "index < size");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  expects(size() == rhs.size(), "vector sizes match");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  expects(size() == rhs.size(), "vector sizes match");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

double dot(const Vector& a, const Vector& b) {
  expects(a.size() == b.size(), "vector sizes match");
  double result = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) result += a[i] * b[i];
  return result;
}

double sum(const Vector& v) noexcept {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double norm1(const Vector& v) noexcept {
  double result = 0.0;
  for (double x : v) result += std::abs(x);
  return result;
}

double norm_inf(const Vector& v) noexcept {
  double result = 0.0;
  for (double x : v) result = std::max(result, std::abs(x));
  return result;
}

double norm2(const Vector& v) noexcept { return std::sqrt(dot(v, v)); }

double max_abs_diff(const Vector& a, const Vector& b) {
  expects(a.size() == b.size(), "vector sizes match");
  double result = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    result = std::max(result, std::abs(a[i] - b[i]));
  return result;
}

Vector unit(std::size_t size, std::size_t index) {
  expects(index < size, "index < size");
  Vector v(size);
  v[index] = 1.0;
  return v;
}

}  // namespace whart::linalg
