// LU decomposition with partial pivoting.  Used to solve the linear systems
// of steady-state analysis (pi P = pi) and absorbing-chain analysis
// (N = (I - Q)^{-1}).
#pragma once

#include <vector>

#include "whart/linalg/matrix.hpp"
#include "whart/linalg/vector.hpp"

namespace whart::linalg {

/// Factorization P A = L U of a square matrix with partial (row) pivoting.
///
/// Construction throws whart::precondition_error for non-square input and
/// whart::invariant_error for (numerically) singular matrices.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Determinant of A (product of U diagonal, sign-adjusted for pivoting).
  [[nodiscard]] double determinant() const noexcept;

  [[nodiscard]] std::size_t order() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                       // packed L (unit diagonal) and U
  std::vector<std::size_t> pivot_;  // row permutation
  int pivot_sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
Vector solve(const Matrix& a, const Vector& b);

/// Matrix inverse via LU; throws for singular input.
Matrix inverse(const Matrix& a);

}  // namespace whart::linalg
