// Compressed sparse row (CSR) matrix.  Path DTMCs are tree-like (at most two
// successors per transient state), so sparse storage and sparse
// distribution updates are the natural representation.
#pragma once

#include <cstddef>
#include <vector>

#include "whart/linalg/vector.hpp"

namespace whart::linalg {

/// One (row, col, value) entry used to assemble a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Immutable CSR sparse matrix.  Duplicate (row, col) triplets are summed
/// during assembly.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assemble from triplets.  Entries outside [0, rows) x [0, cols) throw.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Value at (row, col); 0 if not stored.  O(log nnz(row)).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// y = x^T * A — one DTMC distribution step when A is a transition matrix.
  [[nodiscard]] Vector left_multiply(const Vector& x) const;

  /// y = A * x.
  [[nodiscard]] Vector right_multiply(const Vector& x) const;

  /// Sum of the entries in `row`.
  [[nodiscard]] double row_sum(std::size_t row) const;

  /// Visit nonzeros of `row` as (col, value) pairs.
  template <typename Visitor>
  void for_each_in_row(std::size_t row, Visitor&& visit) const {
    for (std::size_t k = row_start_[row]; k < row_start_[row + 1]; ++k)
      visit(col_index_[k], values_[k]);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;  // size rows_ + 1
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace whart::linalg
