// Compressed sparse row (CSR) matrix.  Path DTMCs are tree-like (at most two
// successors per transient state), so sparse storage and sparse
// distribution updates are the natural representation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "whart/linalg/vector.hpp"

namespace whart::linalg {

class Matrix;  // dense counterpart (matrix.hpp); used by the batched kernels

/// One (row, col, value) entry used to assemble a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Immutable CSR sparse matrix.  Duplicate (row, col) triplets are summed
/// during assembly.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assemble from triplets.  Entries outside [0, rows) x [0, cols) throw.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  /// Assemble from prebuilt CSR arrays (the output shape of the
  /// sparse-sparse product).  `row_start` must be monotone with
  /// row_start[0] == 0 and row_start[rows] == col_index.size(); columns
  /// must be strictly increasing within each row.  Empty rows (an
  /// absorbing Discard row with its self-loop pruned, say) are legal and
  /// preserved exactly.
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_start,
                              std::vector<std::size_t> col_index,
                              std::vector<double> values);

  /// Sparse identity of the given order.
  static CsrMatrix identity(std::size_t order);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Value at (row, col); 0 if not stored.  O(log nnz(row)).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// y = x^T * A — one DTMC distribution step when A is a transition matrix.
  [[nodiscard]] Vector left_multiply(const Vector& x) const;

  /// y = A * x.
  [[nodiscard]] Vector right_multiply(const Vector& x) const;

  /// Sum of the entries in `row`.
  [[nodiscard]] double row_sum(std::size_t row) const;

  /// Visit nonzeros of `row` as (col, value) pairs.
  template <typename Visitor>
  void for_each_in_row(std::size_t row, Visitor&& visit) const {
    for (std::size_t k = row_start_[row]; k < row_start_[row + 1]; ++k)
      visit(col_index_[k], values_[k]);
  }

  /// The stored values in CSR order.  The mutable overload is the
  /// numeric-refill hook of the symbolic/numeric split: a skeleton that
  /// captured this matrix's sparsity pattern may overwrite values in
  /// place (same pattern, new probabilities) without reassembly.
  [[nodiscard]] std::span<double> values() noexcept { return values_; }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;  // size rows_ + 1
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

/// Reusable workspace for the sparse-sparse product.  One arena can be
/// shared across any number of multiplies (e.g. the Fup+Fdown-1 products
/// of a superframe cycle collapse) so the dense accumulator, the column
/// marker and the output arrays are allocated once and recycled.
struct SparseProductArena {
  /// Dense per-column accumulator of the current output row.
  std::vector<double> accumulator;
  /// marker[c] == current row tag when column c is live in this row.
  std::vector<std::size_t> marker;
  /// Unsorted live columns of the current output row.
  std::vector<std::size_t> scratch_cols;
  /// Output CSR under construction (moved into the result).
  std::vector<std::size_t> row_start;
  std::vector<std::size_t> col_index;
  std::vector<double> values;
};

/// Sparse-sparse product A * B (Gustavson's row-by-row algorithm):
/// a symbolic pass counts the nonzeros of every output row, a prefix sum
/// over those counts lays out `row_start`, and the numeric pass scatters
/// each row into the arena's dense accumulator before gathering it in
/// column order.  Numerically-zero fill-in is kept (the structure is the
/// product structure, not a drop-tolerance one) so row-stochastic inputs
/// yield row-stochastic outputs entry-for-entry.  Empty rows of A stay
/// empty rows of the product.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b,
                   SparseProductArena& arena);

/// Convenience overload with a throwaway arena.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b);

/// Batched distribution step Y = X * A for a dense row-major batch of
/// row distributions X (one initial state per row).  The CSR matrix is
/// traversed once per block of `block_rows` batch rows, so its
/// row_start/col_index/value streams are amortized over the whole block
/// while the active slices of X and Y stay cache-resident — the
/// cache-blocked kernel behind SuperframeKernel's batched solves.
Matrix left_multiply_batch(const Matrix& x, const CsrMatrix& a,
                           std::size_t block_rows = 32);

/// Allocation-free variant: writes X * A into a caller-owned `y` (which
/// must already have shape x.rows() x a.cols(); it is zeroed first).
/// Identical arithmetic to left_multiply_batch, so results are bitwise
/// equal — this is the ping-pong kernel of the refill solve path.
void left_multiply_batch_into(const Matrix& x, const CsrMatrix& a, Matrix& y,
                              std::size_t block_rows = 32);

}  // namespace whart::linalg
