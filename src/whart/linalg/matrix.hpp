// Dense row-major matrix used for small DTMC transition matrices and the
// absorbing-chain (fundamental matrix) computations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "whart/linalg/vector.hpp"

namespace whart::linalg {

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Construct from nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of the given order.
  static Matrix identity(std::size_t order);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws whart::precondition_error.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scalar) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double scalar) { return lhs *= scalar; }
  friend Matrix operator*(double scalar, Matrix rhs) { return rhs *= scalar; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product A * B; inner dimensions must agree.
Matrix multiply(const Matrix& a, const Matrix& b);

/// Matrix-vector product A * x.
Vector multiply(const Matrix& a, const Vector& x);

/// Row-vector-matrix product x^T * A — the DTMC distribution update.
Vector multiply(const Vector& x, const Matrix& a);

/// Transpose.
Matrix transpose(const Matrix& a);

/// A^power via exponentiation by squaring; A must be square, power >= 0.
Matrix power(const Matrix& a, std::uint64_t exponent);

/// Largest absolute entry-wise difference; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace whart::linalg
