#include "whart/linalg/convolution.hpp"

namespace whart::linalg {

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> result(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) result[i + j] += a[i] * b[j];
  }
  return result;
}

std::vector<double> convolve_truncated(std::span<const double> a,
                                       std::span<const double> b,
                                       std::size_t size) {
  std::vector<double> full = convolve(a, b);
  full.resize(size, 0.0);
  return full;
}

}  // namespace whart::linalg
