#include "whart/linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"

namespace whart::linalg {

namespace {
constexpr double kSingularTolerance = 1e-13;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  expects(lu_.square(), "matrix is square");
  const std::size_t n = lu_.rows();
  WHART_COUNT("linalg.lu.factorizations");
  WHART_OBSERVE("linalg.lu.order", n);
  pivot_.resize(n);
  std::iota(pivot_.begin(), pivot_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest remaining entry in column k.
    std::size_t pivot_row = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double candidate = std::abs(lu_(i, k));
      if (candidate > best) {
        best = candidate;
        pivot_row = i;
      }
    }
    ensures(best > kSingularTolerance, "matrix is nonsingular");
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(k, j), lu_(pivot_row, j));
      std::swap(pivot_[k], pivot_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / diag;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j)
        lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = order();
  expects(b.size() == n, "right-hand side matches matrix order");

  // Apply the permutation, then forward substitution (L has unit diagonal).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[pivot_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  expects(b.rows() == order(), "right-hand side matches matrix order");
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  expects(a.square(), "matrix is square");
  return LuDecomposition(a).solve(Matrix::identity(a.rows()));
}

}  // namespace whart::linalg
