// Slot-level Monte-Carlo simulator of a WirelessHART network.  The paper
// itself presents no simulator; we add one as an independent check that
// the DTMC analytics are right (empirical reachability/delay/utilization
// must match the model within sampling error) and as a place where the
// lower-layer machinery — Gilbert links, channel hopping, blacklisting,
// BSC word transmission — is exercised end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "whart/link/channel_model.hpp"
#include "whart/link/failure_script.hpp"
#include "whart/net/path.hpp"
#include "whart/net/schedule.hpp"
#include "whart/net/superframe.hpp"
#include "whart/net/topology.hpp"
#include "whart/numeric/rng.hpp"
#include "whart/sim/stats.hpp"

namespace whart::sim {

/// How link successes are decided.
enum class LinkRegime {
  /// Each link is the two-state Gilbert chain of its LinkModel.  Note
  /// that retransmissions of the *same* message see a correlated link
  /// (after a failure the link is known DOWN), which the steady-state
  /// analytics deliberately ignore — with prc near 1 the bias is tiny,
  /// but it is not exactly the analytic model.
  kGilbert,
  /// Every attempt succeeds independently with the link's stationary
  /// availability pi(up) — exactly the regime of hart::SteadyStateLinks
  /// (paper Eq. 4).  This is the sound leg of the statistical
  /// cross-validation oracle: empirical frequencies converge to the
  /// analytic probabilities, so confidence bounds apply without a
  /// correlation correction.
  kIndependent,
  /// Physical pipeline: per-slot pseudo-random channel hopping over 16
  /// channels with per-channel bit error rates, BSC word transmission and
  /// network-manager blacklisting.  Demonstrates the full stack; not
  /// expected to match the Gilbert analytics bit-for-bit.
  kPhysical,
  /// Every link is a k-state channel chain (SimulatorConfig::channel
  /// rescaled to the link's stationary availability) stepped once per
  /// slot, with a fresh stationary draw at the start of every reporting
  /// interval.  This is the exact regime of the enlarged-state-space
  /// analytics (hart::ChannelLinks): independent per-link chains started
  /// stationary, so empirical frequencies converge to the analytic
  /// channel solver and confidence bounds apply directly.
  kChannel,
};

/// Parameters of the physical regime.
struct PhysicalChannelConfig {
  /// BER on a clean channel.
  double good_ber = 1e-5;
  /// BER on an interfered channel (e.g. Wi-Fi overlap).
  double bad_ber = 3e-3;
  /// Number of interfered channels out of the 16.
  std::uint32_t bad_channels = 3;
};

/// Scripted failure of one link, repeated in every reporting interval
/// (for robustness studies matching hart::ScriptedLinks): the link is
/// forced DOWN during the window, whose slots are relative to the start
/// of each interval.
struct ScriptedLinkFailure {
  net::LinkId link;
  link::FailureWindow window_per_interval;
};

struct SimulatorConfig {
  net::SuperframeConfig superframe;
  std::uint32_t reporting_interval = 4;
  /// Number of reporting intervals to simulate.
  std::uint64_t intervals = 100000;
  std::uint64_t seed = 42;
  /// Message TTL in uplink slots (matching PathModelConfig::ttl): the
  /// transmission in uplink slot ttl still fires, later slots carry
  /// nothing and the message is discarded.  Unset = full horizon.
  std::optional<std::uint32_t> ttl;
  LinkRegime regime = LinkRegime::kGilbert;
  PhysicalChannelConfig physical;
  /// Channel-chain template for LinkRegime::kChannel: each link runs
  /// `channel.with_marginal_success(availability)` where availability is
  /// the link's stationary availability, mirroring how the analytics
  /// build hart::ChannelLinks.  Required when regime == kChannel.
  std::optional<link::ChannelModel> channel;
  /// Forced-DOWN windows applied in every interval (Gilbert regime only).
  std::vector<ScriptedLinkFailure> scripted_failures;

  /// Number of independent interval shards.  Shard s simulates its
  /// chunk of the intervals with its own Xoshiro256 stream (seed +
  /// shard index) and fresh steady-state link states, and the per-path
  /// statistics are merged in shard order — so the report is
  /// deterministic in (seed, shards), and shards = 1 reproduces the
  /// original serial implementation bit for bit.  Different shard
  /// counts are different (equally valid) sample draws.
  std::uint32_t shards = 1;

  /// Worker threads running the shards (as in common::parallel_for:
  /// 0 = WHART_THREADS/hardware).  Only changes wall-clock time, never
  /// the report — results depend on (seed, shards) alone.
  unsigned threads = 0;
};

/// Empirical per-path statistics.
struct PathStatistics {
  std::uint64_t messages = 0;
  /// delivered_per_cycle[i]: messages delivered in cycle i (0-based).
  std::vector<std::uint64_t> delivered_per_cycle;
  std::uint64_t discarded = 0;
  std::uint64_t transmissions = 0;
  RunningStat delay_ms;

  /// Fold another path's statistics (from a different shard of the same
  /// run) into this one; both must cover the same reporting interval.
  void merge(const PathStatistics& other);

  [[nodiscard]] double reachability() const noexcept;
  [[nodiscard]] std::vector<double> cycle_frequencies() const;
  [[nodiscard]] Interval reachability_interval(double z = 1.96) const;
  /// Fraction of the path's Is * Fup schedule slots used, per interval.
  [[nodiscard]] double utilization(std::uint32_t uplink_slots,
                                   std::uint32_t reporting_interval) const;
};

struct SimulationReport {
  std::vector<PathStatistics> per_path;
  std::uint64_t total_slots_simulated = 0;
};

/// The simulator.  Construct once; `run()` produces a report
/// deterministic in (config.seed, config.shards) and is repeatable —
/// every call re-derives its RNG streams from the seed.  With
/// config.shards > 1 the intervals are split across independent shards
/// that may execute on config.threads workers.
class NetworkSimulator {
 public:
  NetworkSimulator(const net::Network& network, std::vector<net::Path> paths,
                   const net::Schedule& schedule, SimulatorConfig config);
  ~NetworkSimulator();

  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  [[nodiscard]] SimulationReport run() const;

 private:
  struct LinkRuntime;
  struct ShardState;

  /// True when the transmission on `link_index` at `absolute_slot`
  /// succeeds, advancing that link's lazily-evolved state in `shard`.
  bool attempt(ShardState& shard, std::size_t link_index,
               std::uint64_t absolute_slot) const;

  /// Simulate `intervals` reporting intervals on the RNG stream
  /// `seed` (one shard's share of the run).
  [[nodiscard]] SimulationReport run_shard(std::uint64_t seed,
                                           std::uint64_t intervals) const;

  const net::Network& network_;
  std::vector<net::Path> paths_;
  const net::Schedule& schedule_;
  SimulatorConfig config_;
  /// hop_links_[p][h]: index of the network link used by hop h of path p.
  std::vector<std::vector<std::size_t>> hop_links_;
  /// Channel regime only: per-network-link chain, the config template
  /// rescaled to each link's stationary availability.
  std::vector<link::ChannelModel> link_channels_;
};

}  // namespace whart::sim
