#include "whart/sim/stats.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"

namespace whart::sim {

void RunningStat::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::standard_error() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  expects(trials > 0, "trials > 0");
  expects(successes <= trials, "successes <= trials");
  expects(z > 0.0, "z > 0");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return Interval{center - margin, center + margin};
}

}  // namespace whart::sim
