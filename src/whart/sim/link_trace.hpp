// Per-slot simulation of a single wireless link under pseudo-random
// channel hopping, per-channel bit error rates, network-manager
// blacklisting and (optionally) bursty interference on each channel.
// The resulting UP/DOWN trace is what link::fit_gilbert consumes — the
// full loop physical channels -> observed trace -> fitted two-state
// model -> analytic prediction is validated in the integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "whart/link/blacklist.hpp"
#include "whart/phy/frame.hpp"

namespace whart::sim {

/// Configuration of the traced link.
struct LinkTraceConfig {
  /// Nominal BER per channel (quiet conditions).  Size fixes the
  /// channel count.
  std::vector<double> channel_ber =
      std::vector<double>(phy::kChannelCount, 1e-4);

  /// Message length used for the per-slot word transmission.
  std::uint32_t message_bits = phy::kMessageBits;

  /// Blacklisting by the network manager (set `use_blacklist` to false
  /// to measure the raw hopping behaviour).
  bool use_blacklist = true;
  link::ChannelBlacklist::Config blacklist;

  /// Bursty interference: each channel independently toggles between
  /// quiet and jammed with these per-slot probabilities (0 = static
  /// channels).  While jammed a channel transmits at `jammed_ber`.
  double jam_probability = 0.0;
  double clear_probability = 0.1;
  double jammed_ber = 5e-3;
};

/// Simulate `slots` consecutive transmission slots; trace[t] = true when
/// the slot's message went through error-free.  Deterministic in `seed`.
std::vector<bool> simulate_link_trace(const LinkTraceConfig& config,
                                      std::uint64_t slots,
                                      std::uint64_t seed);

}  // namespace whart::sim
