#include "whart/sim/link_trace.hpp"

#include <cmath>

#include "whart/common/contracts.hpp"
#include "whart/numeric/rng.hpp"

namespace whart::sim {

std::vector<bool> simulate_link_trace(const LinkTraceConfig& config,
                                      std::uint64_t slots,
                                      std::uint64_t seed) {
  expects(!config.channel_ber.empty(), "at least one channel");
  expects(slots > 0, "at least one slot");
  for (double ber : config.channel_ber)
    expects(ber >= 0.0 && ber <= 1.0, "0 <= BER <= 1");
  expects(config.jam_probability >= 0.0 && config.jam_probability <= 1.0 &&
              config.clear_probability >= 0.0 &&
              config.clear_probability <= 1.0,
          "interference probabilities in [0, 1]");

  numeric::Xoshiro256 rng(seed);
  const auto channel_count =
      static_cast<std::uint32_t>(config.channel_ber.size());
  link::ChannelBlacklist::Config blacklist_config = config.blacklist;
  blacklist_config.channel_count = channel_count;
  blacklist_config.min_active_channels =
      std::min(blacklist_config.min_active_channels, channel_count);
  link::ChannelBlacklist blacklist(blacklist_config);
  link::ChannelHopper hopper(rng.next());

  // Precompute per-channel word failure probabilities for both states.
  std::vector<double> quiet_fail(channel_count);
  for (std::uint32_t c = 0; c < channel_count; ++c)
    quiet_fail[c] = 1.0 - std::pow(1.0 - config.channel_ber[c],
                                   static_cast<double>(config.message_bits));
  const double jammed_fail =
      1.0 - std::pow(1.0 - config.jammed_ber,
                     static_cast<double>(config.message_bits));

  std::vector<bool> jammed(channel_count, false);
  std::vector<bool> trace;
  trace.reserve(slots);

  for (std::uint64_t t = 0; t < slots; ++t) {
    // Interference evolves on every channel every slot.
    if (config.jam_probability > 0.0) {
      for (std::uint32_t c = 0; c < channel_count; ++c) {
        if (jammed[c])
          jammed[c] = !rng.bernoulli(config.clear_probability);
        else
          jammed[c] = rng.bernoulli(config.jam_probability);
      }
    }

    const link::ChannelId channel = hopper.next(blacklist);
    const double fail_probability =
        jammed[channel] ? jammed_fail : quiet_fail[channel];
    const bool success = !rng.bernoulli(fail_probability);
    if (config.use_blacklist) blacklist.record_result(channel, success);
    trace.push_back(success);
  }
  return trace;
}

}  // namespace whart::sim
