// Small statistics utilities for the Monte-Carlo simulator: online
// mean/variance (Welford) and binomial confidence intervals for empirical
// probabilities.
#pragma once

#include <cstdint>

namespace whart::sim {

/// Online mean and variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double value) noexcept;

  /// Fold another accumulator into this one (Chan et al. pairwise
  /// combine), as if this accumulator had also seen every sample of
  /// `other`.  Used to merge per-shard Monte-Carlo statistics.
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 with fewer than two samples.
  [[nodiscard]] double standard_error() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// A two-sided confidence interval.
struct Interval {
  double low = 0.0;
  double high = 0.0;

  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= low && value <= high;
  }
};

/// Wilson score interval for a binomial proportion at z standard
/// deviations (z = 1.96 for 95%, 3.29 for 99.9%).
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96);

}  // namespace whart::sim
