#include "whart/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "whart/common/contracts.hpp"
#include "whart/common/obs.hpp"
#include "whart/common/parallel.hpp"
#include "whart/link/blacklist.hpp"
#include "whart/phy/frame.hpp"

namespace whart::sim {

double PathStatistics::reachability() const noexcept {
  if (messages == 0) return 0.0;
  std::uint64_t delivered = 0;
  for (std::uint64_t d : delivered_per_cycle) delivered += d;
  return static_cast<double>(delivered) / static_cast<double>(messages);
}

std::vector<double> PathStatistics::cycle_frequencies() const {
  std::vector<double> result(delivered_per_cycle.size(), 0.0);
  if (messages == 0) return result;
  for (std::size_t i = 0; i < result.size(); ++i)
    result[i] = static_cast<double>(delivered_per_cycle[i]) /
                static_cast<double>(messages);
  return result;
}

Interval PathStatistics::reachability_interval(double z) const {
  std::uint64_t delivered = 0;
  for (std::uint64_t d : delivered_per_cycle) delivered += d;
  return wilson_interval(delivered, messages, z);
}

double PathStatistics::utilization(std::uint32_t uplink_slots,
                                   std::uint32_t reporting_interval) const {
  if (messages == 0) return 0.0;
  return static_cast<double>(transmissions) /
         (static_cast<double>(messages) * reporting_interval * uplink_slots);
}

void PathStatistics::merge(const PathStatistics& other) {
  expects(delivered_per_cycle.size() == other.delivered_per_cycle.size(),
          "same reporting interval");
  messages += other.messages;
  for (std::size_t i = 0; i < delivered_per_cycle.size(); ++i)
    delivered_per_cycle[i] += other.delivered_per_cycle[i];
  discarded += other.discarded;
  transmissions += other.transmissions;
  delay_ms.merge(other.delay_ms);
}

/// Lazily-evolved per-link simulation state.  Between uses the Gilbert
/// chain is advanced analytically: the state after t slots given the
/// current state follows the closed-form transient probability, so we
/// sample it directly instead of stepping slot by slot.
struct NetworkSimulator::LinkRuntime {
  link::LinkModel model{0.5, 0.5};
  bool up = true;
  std::uint64_t last_slot = 0;
  /// Channel regime: current state of the per-link channel chain.
  std::size_t channel_state = 0;

  // Physical-regime companions.
  link::ChannelBlacklist blacklist;
  link::ChannelHopper hopper{0};

  explicit LinkRuntime(link::LinkModel m, std::uint64_t hopper_seed)
      : model(m), hopper(hopper_seed) {}
};

/// One shard's mutable world: its RNG stream and its own copy of every
/// link's lazily-evolved state.
struct NetworkSimulator::ShardState {
  numeric::Xoshiro256 rng;
  std::vector<LinkRuntime> links;

  /// Reproduces the draw order of the original serial implementation:
  /// per link, one raw draw for the hopper seed, then one Bernoulli
  /// sample of the steady-state availability.
  ShardState(const net::Network& network, std::uint64_t seed) : rng(seed) {
    links.reserve(network.link_count());
    for (net::LinkId id : network.links()) {
      links.emplace_back(network.link(id).model, rng.next());
      links.back().up = rng.bernoulli(
          network.link(id).model.steady_state_availability());
    }
  }
};

namespace {

/// Draw an index from the distribution `p(0..k-1)` (assumed to sum to 1;
/// the last index absorbs any rounding remainder).
template <typename Prob>
std::size_t sample_state(numeric::Xoshiro256& rng, std::size_t k, Prob&& p) {
  const double u = rng.uniform();
  double mass = 0.0;
  for (std::size_t s = 0; s + 1 < k; ++s) {
    mass += p(s);
    if (u < mass) return s;
  }
  return k - 1;
}

}  // namespace

NetworkSimulator::~NetworkSimulator() = default;

NetworkSimulator::NetworkSimulator(const net::Network& network,
                                   std::vector<net::Path> paths,
                                   const net::Schedule& schedule,
                                   SimulatorConfig config)
    : network_(network),
      paths_(std::move(paths)),
      schedule_(schedule),
      config_(config) {
  expects(!paths_.empty(), "at least one path");
  expects(config_.reporting_interval >= 1, "Is >= 1");
  expects(config_.intervals >= 1, "at least one interval");
  expects(config_.shards >= 1, "at least one shard");
  expects(schedule_.uplink_slots() == config_.superframe.uplink_slots,
          "schedule length matches the superframe uplink size");
  expects(config_.physical.bad_channels < phy::kChannelCount,
          "some channels must be clean");
  if (config_.regime == LinkRegime::kChannel) {
    expects(config_.channel.has_value(),
            "channel regime needs a channel template");
    expects(config_.scripted_failures.empty(),
            "scripted failures are a Gilbert-regime feature");
    link_channels_.reserve(network_.link_count());
    for (net::LinkId id : network_.links())
      link_channels_.push_back(config_.channel->with_marginal_success(
          network_.link(id).model.steady_state_availability()));
  }

  hop_links_.reserve(paths_.size());
  for (const net::Path& path : paths_) {
    std::vector<std::size_t> links;
    for (net::LinkId id : path.resolve_links(network_))
      links.push_back(id.value);
    hop_links_.push_back(std::move(links));
  }
}

bool NetworkSimulator::attempt(ShardState& shard, std::size_t link_index,
                               std::uint64_t absolute_slot) const {
  LinkRuntime& rt = shard.links[link_index];

  // Scripted failures: the link is deterministically DOWN inside its
  // per-interval window; the Gilbert chain then recovers from DOWN.
  // Windows the link slept through (no attempt inside them) still pin
  // the state: the latest forced-DOWN slot not later than `absolute_slot`
  // becomes the evolution anchor.
  const std::uint64_t interval_slots =
      static_cast<std::uint64_t>(config_.reporting_interval) *
      config_.superframe.cycle_slots();
  const std::uint64_t slot_in_interval = absolute_slot % interval_slots;
  const std::uint64_t interval_base = absolute_slot - slot_in_interval;
  for (const ScriptedLinkFailure& failure : config_.scripted_failures) {
    if (failure.link.value != link_index) continue;
    const link::FailureWindow& window = failure.window_per_interval;
    if (window.contains(slot_in_interval)) {
      rt.up = false;
      rt.last_slot = absolute_slot;
      return false;
    }
    // Latest forced-DOWN slot at or before absolute_slot.
    std::uint64_t last_down = 0;
    bool have_down = false;
    if (slot_in_interval >= window.end) {
      last_down = interval_base + window.end - 1;
      have_down = true;
    } else if (interval_base >= interval_slots) {
      last_down = interval_base - interval_slots + window.end - 1;
      have_down = true;
    }
    if (have_down && last_down > rt.last_slot) {
      rt.up = false;
      rt.last_slot = last_down;
    }
  }

  if (config_.regime == LinkRegime::kPhysical) {
    // Hop to a fresh channel, transmit the 1016-bit message as a BSC
    // word, and report the outcome to the network manager's blacklist.
    const link::ChannelId channel = rt.hopper.next(rt.blacklist);
    const double ber = channel < config_.physical.bad_channels
                           ? config_.physical.bad_ber
                           : config_.physical.good_ber;
    const double success_probability =
        std::pow(1.0 - ber, static_cast<double>(phy::kMessageBits));
    const bool success = shard.rng.bernoulli(success_probability);
    rt.blacklist.record_result(channel, success);
    return success;
  }

  if (config_.regime == LinkRegime::kChannel) {
    // Step the channel chain one slot at a time up to this slot.  The
    // attempt sees the state at the start of `absolute_slot`; the
    // transition out of this slot happens lazily before the next use,
    // exactly like the enlarged analytic matrices where the firing slot
    // both decides success on the entry state and then mixes the chain.
    const link::ChannelModel& channel = link_channels_[link_index];
    ensures(absolute_slot >= rt.last_slot, "time moves forward");
    for (std::uint64_t t = rt.last_slot; t < absolute_slot; ++t)
      rt.channel_state = sample_state(
          shard.rng, channel.state_count(),
          [&](std::size_t s) { return channel.transition(rt.channel_state, s); });
    rt.last_slot = absolute_slot;
    return shard.rng.bernoulli(channel.success_in_state(rt.channel_state));
  }

  if (config_.regime == LinkRegime::kIndependent) {
    // Every attempt is an independent Bernoulli trial at the stationary
    // availability — the exact regime of the steady-state analytics.
    return shard.rng.bernoulli(rt.model.steady_state_availability());
  }

  // Gilbert regime: advance the chain analytically to this slot.
  ensures(absolute_slot >= rt.last_slot, "time moves forward");
  const std::uint64_t elapsed = absolute_slot - rt.last_slot;
  if (elapsed > 0) {
    const double p_up = rt.model.up_probability_after(
        rt.up ? link::LinkState::kUp : link::LinkState::kDown, elapsed);
    rt.up = shard.rng.bernoulli(p_up);
    rt.last_slot = absolute_slot;
  }
  return rt.up;
}

SimulationReport NetworkSimulator::run_shard(std::uint64_t seed,
                                             std::uint64_t intervals) const {
  WHART_SPAN("sim_shard");
  WHART_TIMER("sim.shard.ns");
  ShardState shard(network_, seed);

  SimulationReport report;
  report.per_path.resize(paths_.size());
  for (PathStatistics& stats : report.per_path)
    stats.delivered_per_cycle.assign(config_.reporting_interval, 0);

  const std::uint32_t fup = config_.superframe.uplink_slots;
  const std::uint32_t cycle_slots = config_.superframe.cycle_slots();
  const std::uint32_t cycles = config_.reporting_interval;

  // Per-path in-flight message: current hop, or delivered/discarded.
  struct Message {
    std::size_t hop = 0;
    bool in_flight = true;
  };
  std::vector<Message> messages(paths_.size());

  std::uint64_t interval_base_slot = 0;
  for (std::uint64_t interval = 0; interval < intervals; ++interval) {
    for (std::size_t p = 0; p < paths_.size(); ++p) {
      messages[p] = Message{};
      ++report.per_path[p].messages;
    }
    if (config_.regime == LinkRegime::kChannel) {
      // Fresh stationary draw per link at the start of every interval
      // (link index order), matching the analytic assumption that each
      // message arrival sees an independent stationary chain.
      for (std::size_t l = 0; l < shard.links.size(); ++l) {
        const std::vector<double>& pi = link_channels_[l].stationary();
        shard.links[l].channel_state = sample_state(
            shard.rng, pi.size(), [&](std::size_t s) { return pi[s]; });
        shard.links[l].last_slot = interval_base_slot;
      }
    }
    for (std::uint32_t cycle = 0; cycle < cycles; ++cycle) {
      for (std::uint32_t slot = 1; slot <= fup; ++slot) {
        // TTL: the transmission in uplink slot ttl still fires; later
        // slots carry nothing (the message counts as discarded at the
        // end of the interval, matching the analytic Discard state).
        if (config_.ttl.has_value() &&
            static_cast<std::uint64_t>(cycle) * fup + slot > *config_.ttl)
          break;
        const auto& entry = schedule_.entry(slot);
        if (!entry.has_value()) continue;
        Message& msg = messages[entry->path_index];
        if (!msg.in_flight || msg.hop != entry->hop) continue;
        const std::uint64_t absolute_slot =
            interval_base_slot + cycle * cycle_slots + (slot - 1);
        PathStatistics& stats = report.per_path[entry->path_index];
        ++stats.transmissions;
        if (attempt(shard, hop_links_[entry->path_index][entry->hop],
                    absolute_slot)) {
          ++msg.hop;
          if (msg.hop == hop_links_[entry->path_index].size()) {
            msg.in_flight = false;
            ++stats.delivered_per_cycle[cycle];
            const double delay_ms =
                (static_cast<double>(slot) + cycle * cycle_slots) *
                phy::kSlotMilliseconds;
            stats.delay_ms.add(delay_ms);
          }
        }
      }
      // The downlink half of the cycle: links keep evolving (they are
      // advanced lazily), uplink messages sleep.
    }
    for (std::size_t p = 0; p < paths_.size(); ++p)
      if (messages[p].in_flight) ++report.per_path[p].discarded;
    interval_base_slot += static_cast<std::uint64_t>(cycles) * cycle_slots;
  }
  report.total_slots_simulated = interval_base_slot;
  WHART_COUNT_N("sim.slots", report.total_slots_simulated);
  return report;
}

SimulationReport NetworkSimulator::run() const {
  WHART_REQUEST_SPAN("simulate");
  WHART_COUNT("sim.runs");
  WHART_COUNT_N("sim.intervals", config_.intervals);
  const std::uint64_t shards =
      std::min<std::uint64_t>(config_.shards, config_.intervals);
  if (shards <= 1) return run_shard(config_.seed, config_.intervals);

  // Shard s gets the RNG stream seed + s and an equal share of the
  // intervals (the remainder spread over the first shards).  Shards are
  // merged in index order, so the report is a pure function of
  // (seed, shards) no matter how many threads execute them.
  const std::uint64_t base = config_.intervals / shards;
  const std::uint64_t remainder = config_.intervals % shards;
  std::vector<SimulationReport> shard_reports(shards);
  common::parallel_for(
      shards,
      [&](std::size_t s) {
        const std::uint64_t intervals = base + (s < remainder ? 1 : 0);
        shard_reports[s] = run_shard(config_.seed + s, intervals);
      },
      config_.threads);

  SimulationReport merged = std::move(shard_reports[0]);
  for (std::size_t s = 1; s < shard_reports.size(); ++s) {
    for (std::size_t p = 0; p < merged.per_path.size(); ++p)
      merged.per_path[p].merge(shard_reports[s].per_path[p]);
    merged.total_slots_simulated += shard_reports[s].total_slots_simulated;
  }
  return merged;
}

}  // namespace whart::sim
