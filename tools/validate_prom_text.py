#!/usr/bin/env python3
"""Validate the Prometheus text exposition written by --obs-dir.

Usage: validate_prom_text.py <metrics.prom>

Implements the subset of the text-format grammar the exporter emits:
`# HELP` / `# TYPE` comment lines, metric names matching
[a-zA-Z_:][a-zA-Z0-9_:]*, optional {label="value"} sets and a numeric
sample value (including +Inf/-Inf/NaN).  Cross-checks structure: every
sample belongs to a typed family, counters end in _total, summaries
carry quantile samples plus _sum/_count, and every family name starts
with the whart_ prefix.  Exits non-zero on the first violation.
"""
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def fail(message: str) -> None:
    print(f"validate_prom_text: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparsable sample value '{text}'")
        raise AssertionError  # unreachable


def family_of(sample_name: str) -> str:
    """The family a sample belongs to (strips summary suffixes)."""
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_prom_text.py <metrics.prom>")
    path = sys.argv[1]

    types: dict[str, str] = {}
    helps: set[str] = set()
    samples: dict[str, list[tuple[dict, float]]] = {}

    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            where = f"{path}:{lineno}"
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) < 4:
                    fail(f"{where}: malformed HELP line")
                if not NAME_RE.match(parts[2]):
                    fail(f"{where}: bad metric name '{parts[2]}' in HELP")
                helps.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4:
                    fail(f"{where}: malformed TYPE line")
                name, kind = parts[2], parts[3]
                if not NAME_RE.match(name):
                    fail(f"{where}: bad metric name '{name}' in TYPE")
                if kind not in TYPES:
                    fail(f"{where}: unknown type '{kind}'")
                if name in types:
                    fail(f"{where}: duplicate TYPE for '{name}'")
                types[name] = kind
                continue
            if line.startswith("#"):
                continue  # other comments are legal
            match = SAMPLE_RE.match(line)
            if not match:
                fail(f"{where}: unparsable sample line '{line}'")
            labels = {}
            if match.group("labels"):
                for pair in match.group("labels").split(","):
                    if not LABEL_RE.match(pair.strip()):
                        fail(f"{where}: malformed label '{pair}'")
                    key, value = pair.strip().split("=", 1)
                    labels[key] = value.strip('"')
            value = parse_value(match.group("value"), where)
            samples.setdefault(match.group("name"), []).append(
                (labels, value)
            )

    if not samples:
        fail(f"{path}: no samples")

    for name in samples:
        family = family_of(name)
        if family not in types:
            fail(f"{path}: sample '{name}' has no TYPE declaration")
        if not family.startswith("whart_"):
            fail(f"{path}: family '{family}' lacks the whart_ prefix")
        if types[family] == "counter" and not name.endswith("_total"):
            fail(f"{path}: counter sample '{name}' must end in _total")

    for family, kind in types.items():
        if family not in helps:
            fail(f"{path}: family '{family}' has TYPE but no HELP")
        if kind == "summary":
            quantiles = [
                labels["quantile"]
                for labels, _ in samples.get(family, [])
                if "quantile" in labels
            ]
            if not quantiles:
                fail(f"{path}: summary '{family}' has no quantile samples")
            for required in (f"{family}_sum", f"{family}_count"):
                if required not in samples:
                    fail(f"{path}: summary '{family}' missing {required}")
        elif kind in ("counter", "gauge"):
            sample_name = (
                family if kind == "gauge" else family
            )
            if sample_name not in samples:
                fail(f"{path}: family '{family}' declared but never sampled")
            for _, value in samples[sample_name]:
                if kind == "counter" and not math.isnan(value) and value < 0:
                    fail(f"{path}: counter '{family}' is negative ({value})")

    counters = sum(1 for k in types.values() if k == "counter")
    summaries = sum(1 for k in types.values() if k == "summary")
    print(
        f"validate_prom_text: {path}: OK ({len(types)} families: "
        f"{counters} counters, {summaries} summaries, "
        f"{sum(len(v) for v in samples.values())} samples)"
    )


if __name__ == "__main__":
    main()
