#!/usr/bin/env python3
"""Aggregate every committed BENCH_*.json baseline into one markdown
performance-trajectory table.

Each baseline file is a google-benchmark JSON document committed at the
PR that introduced its gate (see the bench-regression job in
.github/workflows/ci.yml).  This tool renders them all into a single
markdown report — one section per suite, one row per benchmark — so the
repo's performance story is readable in one place instead of spread
across JSON blobs:

    tools/bench_summary.py                      # markdown to stdout
    tools/bench_summary.py --output summary.md  # ... or to a file
    tools/bench_summary.py --dir path/to/repo   # baselines elsewhere

For suites run with repetitions, only the `_mean` aggregate is reported
(suffix stripped), matching how check_bench_regression.py reads them.
User counters are listed inline per row.

Stdlib only; no third-party packages.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Keys of the google-benchmark JSON entry that are run metadata, not
#: user counters.
_NON_COUNTER_KEYS = frozenset(
    {
        "name",
        "run_name",
        "run_type",
        "repetitions",
        "repetition_index",
        "threads",
        "iterations",
        "real_time",
        "cpu_time",
        "time_unit",
        "aggregate_name",
        "aggregate_unit",
        "family_index",
        "per_family_instance_index",
    }
)


def format_time(ns: float) -> str:
    """Render a nanosecond cpu time with a human unit."""
    if ns < 1e3:
        return f"{ns:.1f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.2f} s"


def format_counter(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"


def load_rows(path: str) -> list[dict]:
    """Benchmark rows of one baseline: iteration runs, or the `_mean`
    aggregates (suffix stripped) when the suite ran with repetitions."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    rows: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("cpu_time") is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "mean" and name.endswith("_mean"):
                rows[name[: -len("_mean")]] = bench
        else:
            rows.setdefault(name, bench)
    out = []
    for name, bench in rows.items():
        counters = {
            key: value
            for key, value in bench.items()
            if key not in _NON_COUNTER_KEYS and isinstance(value, (int, float))
        }
        out.append(
            {
                "name": name,
                "cpu_time": float(bench["cpu_time"]),
                "counters": counters,
            }
        )
    return out


def context_line(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        context = json.load(handle).get("context", {})
    date = str(context.get("date", "?")).split("T")[0]
    cpus = context.get("num_cpus", "?")
    mhz = context.get("mhz_per_cpu", "?")
    return f"recorded {date} on {cpus} cpu(s) @ {mhz} MHz"


def render(directory: str) -> str:
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise SystemExit(f"no BENCH_*.json baselines under {directory}")
    lines = [
        "# Benchmark baseline summary",
        "",
        "Committed google-benchmark baselines, one section per suite.",
        "Regenerate any suite with its `bench_*` binary and",
        "`--benchmark_format=json --benchmark_out=BENCH_<suite>.json`;",
        "the bench-regression CI job gates fresh runs against these",
        "files via tools/check_bench_regression.py.",
        "",
    ]
    for path in paths:
        suite = os.path.basename(path)[len("BENCH_") : -len(".json")]
        rows = sorted(load_rows(path), key=lambda row: row["name"])
        lines.append(f"## {suite}")
        lines.append("")
        lines.append(f"`{os.path.basename(path)}` — {context_line(path)}")
        lines.append("")
        lines.append("| benchmark | cpu time | counters |")
        lines.append("| --- | ---: | --- |")
        for row in rows:
            counters = ", ".join(
                f"{key}={format_counter(value)}"
                for key, value in sorted(row["counters"].items())
            )
            lines.append(
                f"| `{row['name']}` | {format_time(row['cpu_time'])} "
                f"| {counters} |"
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding the BENCH_*.json baselines (default: .)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the markdown here instead of stdout",
    )
    args = parser.parse_args(argv)
    report = render(args.dir)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        try:
            print(report)
        except BrokenPipeError:  # `bench_summary.py | head` is fine
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
