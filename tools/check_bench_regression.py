#!/usr/bin/env python3
"""Performance-regression gate over google-benchmark JSON output.

Compares a fresh benchmark run against a committed baseline and fails
(exit 1) when any tracked benchmark slowed down by more than the
threshold (default 20%).  Because baseline and current runs usually come
from different machines (a developer box vs a CI runner), the comparison
can be normalized by a calibration benchmark present in both files: each
run's times are divided by its calibration time, so only *relative*
regressions against the rest of the suite count.

It can also assert speedup invariants within a single run — e.g. that
the superframe-product kernel beats the per-slot recursion by at least
5x on the tagged workload:

    tools/check_bench_regression.py --current out.json \
        --require-speedup 'BM_TypicalNetworkSolve/64/0:BM_TypicalNetworkSolve/64/1:5.0'

and bound a benchmark's user counter — e.g. that the skeleton refill
steady state allocates zero bytes:

    tools/check_bench_regression.py --current out.json \
        --require-counter-max 'BM_RefillSteadyState:steady_state_bytes:0'

Stdlib only; no third-party packages.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, float]:
    """Map benchmark name -> cpu_time (ns) for aggregate-free runs.

    For runs with repetitions, prefers the `_mean` aggregate and strips
    its suffix, so names line up across runs with different repetition
    settings.
    """
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    times: dict[str, float] = {}
    aggregates: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        cpu = bench.get("cpu_time")
        if cpu is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "mean" and name.endswith("_mean"):
                aggregates[name[: -len("_mean")]] = float(cpu)
        else:
            times.setdefault(name, float(cpu))
    times.update(aggregates)
    return times


def load_counter(path: str, bench_name: str, counter: str) -> float | None:
    """A user counter of one benchmark (google-benchmark emits user
    counters as top-level keys of each benchmark entry).  Prefers the
    non-aggregate entry; falls back to the `_mean` aggregate."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    fallback = None
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if name == bench_name and counter in bench:
            if bench.get("run_type") != "aggregate":
                return float(bench[counter])
        if name == bench_name + "_mean" and counter in bench:
            fallback = float(bench[counter])
    return fallback


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed google-benchmark JSON")
    parser.add_argument("--current", required=True,
                        help="fresh google-benchmark JSON")
    parser.add_argument("--threshold", type=float, default=1.20,
                        help="max allowed current/baseline time ratio "
                             "(default 1.20 = 20%% slowdown)")
    parser.add_argument("--calibrate", metavar="NAME",
                        help="benchmark used to normalize machine speed; "
                             "must exist in both files")
    parser.add_argument("--only-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="restrict the regression check to benchmarks "
                             "whose name starts with PREFIX (repeatable)")
    parser.add_argument("--require-speedup", action="append", default=[],
                        metavar="SLOW:FAST:RATIO",
                        help="assert cpu_time(SLOW)/cpu_time(FAST) >= RATIO "
                             "within the current run (repeatable)")
    parser.add_argument("--require-counter-max", action="append", default=[],
                        metavar="NAME:COUNTER:MAX",
                        help="assert user counter COUNTER of benchmark NAME "
                             "is <= MAX in the current run (repeatable)")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    failures: list[str] = []

    for spec in args.require_speedup:
        try:
            slow_name, fast_name, ratio_text = spec.rsplit(":", 2)
            required = float(ratio_text)
        except ValueError:
            parser.error(f"bad --require-speedup spec: {spec!r}")
        slow = current.get(slow_name)
        fast = current.get(fast_name)
        if slow is None or fast is None or fast <= 0.0:
            failures.append(f"speedup {spec}: benchmark missing from "
                            f"{args.current}")
            continue
        achieved = slow / fast
        line = (f"speedup {slow_name} / {fast_name}: {achieved:.2f}x "
                f"(required {required:.2f}x)")
        if achieved < required:
            failures.append(line)
        else:
            print(f"ok: {line}")

    for spec in args.require_counter_max:
        try:
            bench_name, counter, max_text = spec.rsplit(":", 2)
            maximum = float(max_text)
        except ValueError:
            parser.error(f"bad --require-counter-max spec: {spec!r}")
        value = load_counter(args.current, bench_name, counter)
        if value is None:
            failures.append(f"counter {spec}: benchmark or counter missing "
                            f"from {args.current}")
            continue
        line = (f"counter {bench_name}[{counter}] = {value:g} "
                f"(max {maximum:g})")
        if value > maximum:
            failures.append(line)
        else:
            print(f"ok: {line}")

    if args.baseline:
        baseline = load_benchmarks(args.baseline)
        scale = 1.0
        if args.calibrate:
            base_cal = baseline.get(args.calibrate)
            cur_cal = current.get(args.calibrate)
            if not base_cal or not cur_cal:
                failures.append(f"calibration benchmark {args.calibrate!r} "
                                "missing from baseline or current run")
            else:
                scale = base_cal / cur_cal
                print(f"calibration: current machine runs "
                      f"{args.calibrate} at {1.0 / scale:.2f}x "
                      "the baseline machine's time")
        checked = 0
        for name, base_time in sorted(baseline.items()):
            if args.only_prefix and not any(
                    name.startswith(p) for p in args.only_prefix):
                continue
            cur_time = current.get(name)
            if cur_time is None:
                failures.append(f"{name}: present in baseline, missing from "
                                "current run")
                continue
            checked += 1
            ratio = (cur_time * scale) / base_time
            line = f"{name}: {ratio:.3f}x baseline"
            if ratio > args.threshold:
                failures.append(f"{line} (threshold {args.threshold:.2f}x)")
            else:
                print(f"ok: {line}")
        if checked == 0 and not failures:
            failures.append("no benchmarks matched the regression check")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
