#!/usr/bin/env python3
"""Summarize an --obs-dir observability bundle on the terminal.

Usage: obs_report.py <obs-dir>

Reads the five artifacts written by `whart_cli --obs-dir=<dir>` (only
metrics.json is required; the rest enrich the report when present) and
prints:

  * the top spans by total wall time, with exact p50/p99,
  * stage-level latency attribution (the hart.stage.* histograms, as a
    share of their combined time),
  * histogram quantile estimates for the busiest duration metrics,
  * cross-thread traffic (pool tasks, flow arrows, request count),
  * flight-recorder summary (event counts by kind, drops if any).

Read-only; never mutates the bundle.  Exits 1 if the bundle looks
structurally wrong (missing metrics.json).
"""
import json
import os
import sys
from collections import Counter


def fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def report_spans(metrics: dict) -> None:
    spans = metrics.get("spans") or []
    if not spans:
        return
    print("top spans by total time:")
    ranked = sorted(spans, key=lambda s: s["total_ns"], reverse=True)
    width = max(len(s["name"]) for s in ranked[:10])
    for span in ranked[:10]:
        mean = span["total_ns"] / span["count"] if span["count"] else 0
        print(
            f"  {span['name']:<{width}}  x{span['count']:<5} "
            f"total {fmt_ns(span['total_ns']):>10}  "
            f"mean {fmt_ns(mean):>10}  "
            f"p50 {fmt_ns(span['p50_ns']):>10}  "
            f"p99 {fmt_ns(span['p99_ns']):>10}"
        )
    print()


def report_stages(metrics: dict) -> None:
    histograms = metrics.get("histograms", {})
    stages = {
        name: hist
        for name, hist in histograms.items()
        if name.startswith("hart.stage.")
    }
    if not stages:
        return
    total = sum(h["sum"] for h in stages.values())
    print("stage-level latency attribution:")
    width = max(len(n) for n in stages)
    for name, hist in sorted(
        stages.items(), key=lambda kv: kv[1]["sum"], reverse=True
    ):
        share = 100.0 * hist["sum"] / total if total else 0.0
        mean = hist["sum"] / hist["count"] if hist["count"] else 0
        print(
            f"  {name:<{width}}  {share:5.1f}%  x{hist['count']:<6} "
            f"total {fmt_ns(hist['sum']):>10}  mean {fmt_ns(mean):>10}  "
            f"p99 {fmt_ns(hist.get('p99') or 0):>10}"
        )
    print()


def report_quantiles(metrics: dict) -> None:
    histograms = {
        name: hist
        for name, hist in metrics.get("histograms", {}).items()
        if name.endswith(".ns") and not name.startswith("hart.stage.")
    }
    if not histograms:
        return
    print("duration quantiles (log-bucket estimates):")
    ranked = sorted(
        histograms.items(), key=lambda kv: kv[1]["sum"], reverse=True
    )[:8]
    width = max(len(n) for n, _ in ranked)
    for name, hist in ranked:
        print(
            f"  {name:<{width}}  x{hist['count']:<6} "
            f"p50 {fmt_ns(hist.get('p50') or 0):>10}  "
            f"p90 {fmt_ns(hist.get('p90') or 0):>10}  "
            f"p99 {fmt_ns(hist.get('p99') or 0):>10}"
        )
    print()


def report_trace(trace: dict) -> None:
    events = trace.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    flows = [e for e in events if e.get("ph") in ("s", "f")]
    pool_tasks = [e for e in spans if e.get("name") == "pool_task"]
    requests = {
        e["args"]["request"]
        for e in spans
        if e.get("args", {}).get("request")
    }
    threads = {e.get("tid") for e in spans}
    print(
        f"trace: {len(spans)} spans on {len(threads)} threads, "
        f"{len(pool_tasks)} pool tasks, {len(flows) // 2} flow arrows, "
        f"{len(requests)} request(s)"
    )


def report_events(path: str) -> None:
    kinds: Counter = Counter()
    count = 0
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    kinds[json.loads(line).get("kind", "?")] += 1
                except json.JSONDecodeError:
                    kinds["<unparsable>"] += 1
                count += 1
    except OSError:
        return
    summary = ", ".join(f"{k}: {n}" for k, n in kinds.most_common())
    print(f"flight recorder: {count} events ({summary})")


def report_timeseries(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        return
    rows = [line for line in lines[1:] if line]
    if not rows:
        return
    t_values = sorted({row.split(",", 1)[0] for row in rows})
    print(
        f"timeseries: {len(rows)} points across {len(t_values)} samples "
        f"({t_values[0]} ms .. {t_values[-1]} ms)"
    )


def main() -> None:
    if len(sys.argv) != 2:
        print("usage: obs_report.py <obs-dir>", file=sys.stderr)
        sys.exit(2)
    obs_dir = sys.argv[1]
    metrics = load_json(os.path.join(obs_dir, "metrics.json"))
    if metrics is None:
        print(
            f"obs_report: {obs_dir}/metrics.json missing or invalid",
            file=sys.stderr,
        )
        sys.exit(1)

    print(f"observability report for {obs_dir}\n")
    report_spans(metrics)
    report_stages(metrics)
    report_quantiles(metrics)

    derived = metrics.get("derived", {})
    if derived:
        parts = [f"{k} = {v:.4g}" for k, v in sorted(derived.items())]
        print(f"derived: {', '.join(parts)}")

    trace = load_json(os.path.join(obs_dir, "trace.json"))
    if trace is not None:
        report_trace(trace)
    report_events(os.path.join(obs_dir, "events.jsonl"))
    report_timeseries(os.path.join(obs_dir, "timeseries.csv"))


if __name__ == "__main__":
    main()
